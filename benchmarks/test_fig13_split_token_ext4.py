"""Figure 13: Split-Token isolation on ext4.

Paper: A's standard deviation across B's workloads drops to ~7 MB,
about 6x better than SCS-Token's 41 MB.
"""

from repro.experiments import fig06_scs_isolation, fig13_split_token_ext4
from repro.units import KB, MB

RUN_SIZES = (4 * KB, 64 * KB, 1 * MB, 16 * MB)


def test_fig13_split_token_ext4(once):
    def both():
        scs = fig06_scs_isolation.run(run_sizes=RUN_SIZES, duration=15.0)
        split = fig13_split_token_ext4.run(run_sizes=RUN_SIZES, duration=15.0)
        return scs, split

    scs, split = once(both)

    print("\nFigure 13 — Split-Token isolation (vs Figure 6's SCS)")
    print(f"{'B run size':>10} {'A | B reads':>12} {'A | B writes':>13}")
    for i, size in enumerate(split["run_sizes"]):
        print(f"{size // KB:>8}KB {split['a_mbps']['read'][i]:>11.1f} "
              f"{split['a_mbps']['write'][i]:>12.1f}")
    print(f"A stdev: split {split['a_stdev_mb']:.1f} MB vs SCS {scs['a_stdev_mb']:.1f} MB "
          "(paper: 7 vs 41)")

    # Split-Token's spread is several times smaller than SCS's.
    assert split["a_stdev_mb"] < scs["a_stdev_mb"] / 2.5
    assert split["a_stdev_mb"] < 15
