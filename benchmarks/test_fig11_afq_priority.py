"""Figure 11: AFQ vs CFQ across four priority workloads.

Paper: (a) reads — both fair; (b) async writes — CFQ deviates 82%,
AFQ 16% (5x better); (c) sync random writes + fsync — CFQ 86%, AFQ 3%
(28x); (d) memory overwrites — both fast, no fairness goal.
"""


from repro.experiments import fig11_afq_priority


def _show(panel, results):
    print(f"\nFigure 11({panel}) — throughput share by priority")
    print(f"{'prio':>4} {'CFQ %':>7} {'AFQ %':>7} {'ideal %':>8}")
    ideal_total = sum(fig11_afq_priority.IDEAL.values())
    for p in range(8):
        print(f"{p:>4} {results['cfq']['shares_pct'][p]:>7.1f} "
              f"{results['afq']['shares_pct'][p]:>7.1f} "
              f"{100 * fig11_afq_priority.IDEAL[p] / ideal_total:>8.1f}")
    for name in ("cfq", "afq"):
        dev = results[name]["deviation_pct"]
        total = results[name]["total_mbps"]
        dev_str = f"{dev:.0f}%" if dev is not None else "n/a"
        print(f"{name}: total {total:.1f} MB/s, deviation {dev_str}")


def test_fig11a_read(once):
    results = once(
        lambda: {s: fig11_afq_priority.run_read(s, duration=15.0) for s in ("cfq", "afq")}
    )
    _show("a: sequential read", results)
    # Both respect priorities for reads.
    assert results["cfq"]["deviation_pct"] < 25
    assert results["afq"]["deviation_pct"] < 25
    # Comparable total throughput.
    ratio = results["afq"]["total_mbps"] / results["cfq"]["total_mbps"]
    assert 0.75 < ratio < 1.25


def test_fig11b_async_write(once):
    results = once(
        lambda: {s: fig11_afq_priority.run_async_write(s, duration=20.0) for s in ("cfq", "afq")}
    )
    _show("b: async write", results)
    # CFQ is priority-blind for buffered writes; AFQ is not.
    assert results["cfq"]["deviation_pct"] > 60
    assert results["afq"]["deviation_pct"] < 20
    assert results["cfq"]["deviation_pct"] > 4 * results["afq"]["deviation_pct"]


def test_fig11c_sync_write(once):
    results = once(
        lambda: {
            s: fig11_afq_priority.run_sync_write(s, duration=20.0, threads_per_priority=2)
            for s in ("cfq", "afq")
        }
    )
    _show("c: sync random write + fsync", results)
    # fsync entanglement blinds CFQ; AFQ schedules the fsyncs themselves.
    assert results["cfq"]["deviation_pct"] > 60
    assert results["afq"]["deviation_pct"] < 30
    assert results["cfq"]["deviation_pct"] > 2 * results["afq"]["deviation_pct"]


def test_fig11d_memory(once):
    results = once(
        lambda: {s: fig11_afq_priority.run_memory(s, duration=3.0) for s in ("cfq", "afq")}
    )
    _show("d: memory overwrite", results)
    # Both run at memory speed, far above disk rate (~110 MB/s).
    assert results["cfq"]["total_mbps"] > 500
    assert results["afq"]["total_mbps"] > 500
    # AFQ may be slightly slower (per-write bookkeeping) but comparable.
    assert results["afq"]["total_mbps"] > 0.5 * results["cfq"]["total_mbps"]
