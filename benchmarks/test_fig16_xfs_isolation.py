"""Figure 16: Split-Token isolation on partially-integrated XFS.

Paper: data-intensive isolation still holds (A's deviation 12.8 MB) —
generic buffer tagging alone covers data-dominated workloads.
"""

from repro.experiments import fig16_xfs_isolation
from repro.units import KB, MB

RUN_SIZES = (4 * KB, 64 * KB, 1 * MB, 16 * MB)


def test_fig16_xfs_isolation(once):
    result = once(fig16_xfs_isolation.run, run_sizes=RUN_SIZES, duration=15.0)

    print("\nFigure 16 — Split-Token on XFS (data-intensive)")
    print(f"{'B run size':>10} {'A | B reads':>12} {'A | B writes':>13}")
    for i, size in enumerate(result["run_sizes"]):
        print(f"{size // KB:>8}KB {result['a_mbps']['read'][i]:>11.1f} "
              f"{result['a_mbps']['write'][i]:>12.1f}")
    print(f"A stdev: {result['a_stdev_mb']:.1f} MB (paper: 12.8 MB)")

    assert result["a_stdev_mb"] < 16
