"""Figure 15: Split-Token scalability with B's thread count.

Paper: A's throughput is steady regardless of B's thread count for
disk workloads; memory-bound B threads (and a pure spin loop) slow A
through the CPU once there are enough of them — I/O scheduling cannot
fix CPU interference.
"""

from repro.experiments import fig15_scalability

THREADS = (1, 32, 256)


def test_fig15_scalability(once):
    result = once(
        fig15_scalability.run, thread_counts=THREADS, duration=6.0, cores=2
    )

    print("\nFigure 15 — A's MB/s vs B thread count")
    header = " ".join(f"{t:>7}" for t in result["threads"])
    print(f"{'workload':>10} {header}")
    for workload in ("read-seq", "read-mem", "write-mem", "spin"):
        row = " ".join(f"{v:>7.1f}" for v in result[workload])
        print(f"{workload:>10} {row}")

    # Disk workload: flat within 15% across thread counts.
    seq = result["read-seq"]
    assert max(seq) < 1.15 * min(seq)

    # CPU-bound B hurts A even with perfect I/O throttling; a pure spin
    # loop (no I/O at all) hurts most — the paper's closing point that
    # CPU schedulers are still needed.
    for workload in ("read-mem", "write-mem"):
        series = result[workload]
        assert series[-1] < 0.95 * series[0], f"{workload} should degrade A at scale"
    spin = result["spin"]
    assert spin[-1] < 0.4 * spin[0]
