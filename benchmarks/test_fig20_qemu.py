"""Figure 20: whole-VM isolation, QEMU over SCS vs Split-Token.

Paper: isolation mirrors Figure 14 (Split always isolates VM A; SCS
slips on random I/O), but B's memory-bound workloads are now fast
under BOTH schedulers — the guest page cache sits above the host's
scheduling layer.
"""

import statistics

from repro.experiments import fig20_qemu

WORKLOADS = ("read-mem", "read-rand", "write-mem", "write-rand")


def test_fig20_qemu(once):
    result = once(fig20_qemu.run, workloads=WORKLOADS, duration=10.0)

    print("\nFigure 20 — VM isolation (A) and throttled-VM throughput (B)")
    print(f"{'B workload':>11} | {'A scs':>7} {'A split':>8} | {'B scs':>8} {'B split':>9}")
    for i, workload in enumerate(result["workloads"]):
        print(f"{workload:>11} | {result['scs_a_mbps'][i]:>7.1f} "
              f"{result['split_a_mbps'][i]:>8.1f} | {result['scs_b_mbps'][i]:>8.2f} "
              f"{result['split_b_mbps'][i]:>9.2f}")

    # Split keeps VM A's throughput tighter than SCS does.
    scs_spread = statistics.pstdev(result["scs_a_mbps"])
    split_spread = statistics.pstdev(result["split_a_mbps"])
    assert split_spread <= scs_spread

    # The headline change vs Figure 14: B's memory workloads are fast
    # under SCS too, because the guest cache is above the throttle.
    for workload in ("read-mem", "write-mem"):
        i = result["workloads"].index(workload)
        assert result["scs_b_mbps"][i] > 20, "guest cache should absorb memory workloads"
        assert result["split_b_mbps"][i] > 20
