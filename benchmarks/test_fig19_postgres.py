"""Figure 19: PostgreSQL latency distribution (the fsync freeze).

Paper: with Block-Deadline, 4% of transactions miss the 15 ms target
and >1% exceed 500 ms (checkpoint-end stalls).  Split-Pdflush is
intermediate; Split-Deadline (owning writeback) removes the tail while
keeping the median low.
"""

from repro.experiments import fig19_postgres


def test_fig19_postgres(once):
    results = once(
        fig19_postgres.run, duration=45.0, checkpoint_interval=10.0
    )

    print("\nFigure 19 — pgbench transaction latencies")
    print(f"{'config':>14} {'txns':>6} {'median ms':>10} {'p99 ms':>8} "
          f"{'>15ms':>7} {'>500ms':>7}")
    for name, r in results.items():
        print(f"{name:>14} {r['transactions']:>6} {r['median_ms']:>10.2f} "
              f"{r['p99_ms']:>8.1f} {r['frac_over_15ms']:>7.2%} {r['frac_over_500ms']:>7.2%}")

    block = results["block"]
    split = results["split"]
    # Block-Deadline shows the freeze: a visible miss fraction.
    assert block["frac_over_15ms"] > 0.005
    # Split-Deadline eliminates (nearly all of) the tail.
    assert split["frac_over_15ms"] < block["frac_over_15ms"] / 2
    assert split["frac_over_500ms"] <= block["frac_over_500ms"]
    # Median stays low: no throughput sacrifice.
    assert split["median_ms"] < 3 * block["median_ms"]
