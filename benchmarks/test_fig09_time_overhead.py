"""Figure 9: split-framework time overhead vs the block framework.

Paper: no noticeable overhead, even at 100 concurrent threads on SSD.
"""

from repro.experiments import fig09_time_overhead


def test_fig09_time_overhead(once):
    result = once(fig09_time_overhead.run, thread_counts=(1, 10, 100), duration=5.0)

    print("\nFigure 9 — no-op scheduler throughput, block vs split framework")
    print(f"{'threads':>7} {'block MB/s':>11} {'split MB/s':>11} {'overhead':>9}")
    for i, threads in enumerate(result["threads"]):
        print(f"{threads:>7} {result['block_mbps'][i]:>11.1f} "
              f"{result['split_mbps'][i]:>11.1f} {result['relative_overhead'][i]:>8.1%}")

    # Under 5% overhead at every thread count.
    assert all(abs(overhead) < 0.05 for overhead in result["relative_overhead"])
