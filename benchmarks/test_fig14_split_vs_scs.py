"""Figure 14: Split-Token vs SCS-Token, six B workloads.

Paper: Split is near the isolation target all six times; SCS misses
badly on random patterns.  For B itself, Split is 2.3x faster on
"read-mem" and ~837x on "write-mem" (SCS bills cache hits and buffer
overwrites as if they were disk I/O).
"""

from repro.experiments import fig14_split_vs_scs


def test_fig14_split_vs_scs(once):
    result = once(fig14_split_vs_scs.run, duration=10.0)

    print("\nFigure 14 — A isolation (left) and B throughput (right)")
    print(f"{'B workload':>11} | {'A scs':>7} {'A split':>8} | {'B scs':>8} {'B split':>9}")
    for i, workload in enumerate(result["workloads"]):
        print(f"{workload:>11} | {result['scs_a_mbps'][i]:>7.1f} "
              f"{result['split_a_mbps'][i]:>8.1f} | {result['scs_b_mbps'][i]:>8.2f} "
              f"{result['split_b_mbps'][i]:>9.2f}")
    print(f"B speedups under split: read-mem {result['read_mem_speedup']:.1f}x, "
          f"write-mem {result['write_mem_speedup']:.0f}x (paper: 2.3x, 837x)")

    # Split isolates A better than SCS across the workloads.
    import statistics

    scs_spread = statistics.pstdev(result["scs_a_mbps"])
    split_spread = statistics.pstdev(result["split_a_mbps"])
    assert split_spread < scs_spread

    # Memory-bound B workloads are dramatically faster under split.
    assert result["read_mem_speedup"] > 1.5
    assert result["write_mem_speedup"] > 50
