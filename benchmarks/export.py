"""Standalone benchmark exporter: the simulator's performance trajectory.

Times the same hot paths as ``test_simulator_microbench.py`` with plain
``time.perf_counter`` (no pytest-benchmark dependency) and writes a
machine-readable snapshot — ``BENCH_simulator.json`` — that is committed
alongside the code.  Each PR that touches the kernel refreshes the file,
so the repo carries its own performance history.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/export.py                  # write BENCH_simulator.json
    PYTHONPATH=src python benchmarks/export.py --out bench.json
    PYTHONPATH=src python benchmarks/export.py --check BENCH_simulator.json

``--check`` reruns the microbenchmarks and fails (exit 1) if event-loop
throughput regressed more than ``--tolerance`` (default 30%) against the
baseline file — the CI smoke gate.  Absolute numbers are host-dependent;
the committed baseline is only comparable on similar hardware, which is
why the gate watches the relative trajectory, not the raw figure.

Methodology: each microbench reports the *minimum* over ``--repeats``
timed runs (default 25).  Minimum-of-N is the standard estimator for
deterministic CPU-bound work — noise is strictly additive, so the
minimum converges on the true cost.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import KB, MB, OS, SSD, Environment  # noqa: E402
from repro.block import BlockQueue, BlockRequest  # noqa: E402
from repro.block.request import READ  # noqa: E402
from repro.cache import PageCache, PageKey  # noqa: E402
from repro.core.tags import TagManager  # noqa: E402
from repro.devices import HDD  # noqa: E402
from repro.proc import ProcessTable, Task  # noqa: E402
from repro.schedulers import Noop  # noqa: E402

#: Simulated events per timing run of the event-loop bench.
EVENT_LOOP_TICKS = 10_000


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of *fn* over *repeats* runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def bench_event_loop(repeats: int) -> dict:
    """Schedule-and-dispatch cost of bare timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(EVENT_LOOP_TICKS):
                yield env.timeout(0.001)

        env.process(ticker())
        env.run()

    run()  # warm-up
    best = _best_of(run, repeats)
    return {
        "events": EVENT_LOOP_TICKS,
        "us_per_event": round(best * 1e6 / EVENT_LOOP_TICKS, 4),
        "events_per_sec": round(EVENT_LOOP_TICKS / best),
    }


def bench_event_cohort(repeats: int) -> dict:
    """Same-instant event fan-out: 50 processes ticking in lock-step.

    Every tick lands 50 timeouts on one timestamp, so the run loop
    dispatches them as cohorts (one heap drain per instant instead of
    one pop per event).  The per-event cost here tracks the cohort
    machinery the multi-tenant experiments lean on.
    """
    workers = 50
    ticks = 200

    def run():
        env = Environment()

        def ticker():
            for _ in range(ticks):
                yield env.timeout(0.001)

        for _ in range(workers):
            env.process(ticker())
        env.run()

    run()  # warm-up
    best = _best_of(run, repeats)
    events = workers * ticks
    return {
        "events": events,
        "cohort_size": workers,
        "us_per_event": round(best * 1e6 / events, 4),
        "events_per_sec": round(events / best),
    }


def bench_fast_forward(repeats: int) -> dict:
    """Steady-state replay: a wrapping sequential reader, off vs on.

    The stream is disk-bound (the file does not fit in memory), so
    event-accurate execution prices every read through readahead, the
    cache, and the block layer; with ``fast_forward`` the stream is
    measured for a few calls per pass and replayed in closed form for
    the rest.  ``speedup`` is the gated metric — it is host-independent
    in a way the raw per-read times are not.
    """
    reads = 64
    chunk = 1 * MB
    size = 32 * MB

    def run(fast_forward: bool) -> float:
        """Host seconds of the read phase only (setup excluded)."""
        env = Environment()
        machine = OS(
            env, device=HDD(), scheduler=Noop(), memory_bytes=16 * MB,
            fast_forward=fast_forward,
        )
        task = machine.spawn("reader")

        def prefill():
            handle = yield from machine.creat(task, "/f")
            written = 0
            while written < size:
                written += yield from handle.append(chunk)
            return handle

        proc = env.process(prefill())
        env.run(until=proc)
        handle = proc.value

        def stream():
            offset = 0
            for _ in range(reads):
                n = yield from handle.pread(offset, chunk)
                offset = (offset + n) % size

        proc = env.process(stream())
        t0 = time.perf_counter()
        env.run(until=proc)
        return time.perf_counter() - t0

    run(True)  # warm-up
    best_off = min(run(False) for _ in range(repeats))
    best_on = min(run(True) for _ in range(repeats))
    return {
        "reads": reads,
        "us_per_read_off": round(best_off * 1e6 / reads, 3),
        "us_per_read_on": round(best_on * 1e6 / reads, 3),
        "speedup": round(best_off / best_on, 2),
    }


def bench_cached_write_syscall(repeats: int) -> dict:
    """End-to-end pwrite() through hooks, cache, and journal join."""
    writes = 100

    def run():
        env = Environment()
        machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
        task = machine.spawn("w")

        def body():
            handle = yield from machine.creat(task, "/f")
            for _ in range(writes):
                yield from handle.pwrite(0, 4 * KB)

        proc = env.process(body())
        env.run(until=proc)

    run()
    best = _best_of(run, repeats)
    return {"writes": writes, "us_per_write": round(best * 1e6 / writes, 3)}


def bench_vfs_open_close(repeats: int) -> dict:
    """Descriptor churn: open()/close() cycles through the VFS tables.

    Opens publish no hook events by design, so this measures the pure
    bookkeeping path — fd allocation, open-file refcounts, deferred-free
    accounting — plus the per-call CPU cost event.
    """
    cycles = 2000

    def run():
        env = Environment()
        machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
        task = machine.spawn("o")

        def body():
            handle = yield from machine.creat(task, "/f")
            yield from machine.close(handle)
            for _ in range(cycles):
                handle = yield from machine.open(task, "/f")
                yield from machine.close(handle)

        proc = env.process(body())
        env.run(until=proc)

    run()
    best = _best_of(run, repeats)
    return {
        "cycles": cycles,
        "us_per_cycle": round(best * 1e6 / cycles, 3),
        "opens_per_sec": round(cycles / best),
    }


def bench_cache_mark_dirty(repeats: int) -> dict:
    pages = 1000
    env = Environment()
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    task = Task("w")
    counter = [0]

    def run():
        base = counter[0]
        counter[0] += pages
        for i in range(pages):
            cache.mark_dirty(PageKey(1, (base + i) % 8192), task)

    run()
    best = _best_of(run, repeats)
    return {"pages": pages, "us_per_page": round(best * 1e6 / pages, 4)}


def bench_cache_hit_lookup(repeats: int) -> dict:
    lookups = 4096
    env = Environment()
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    for i in range(lookups):
        cache.insert_clean(PageKey(1, i))

    def run():
        for i in range(lookups):
            cache.lookup(PageKey(1, i))

    run()
    best = _best_of(run, repeats)
    return {"lookups": lookups, "us_per_lookup": round(best * 1e6 / lookups, 4)}


def bench_mq_dispatch(repeats: int) -> dict:
    """Multi-queue dispatch engine: depth-32 SSD, small random reads.

    Exercises the slot loops, kick fan-out, and outstanding-list
    bookkeeping the blk-mq refactor added — the host-time cost per
    request through the whole block layer at high concurrency.
    """
    requests = 2000
    depth = 32

    def run():
        env = Environment()
        table = ProcessTable()
        queue = BlockQueue(env, SSD(), Noop(), process_table=table, queue_depth=depth)
        task = table.spawn("io")

        def submitter():
            events = [
                queue.submit(BlockRequest(READ, (i * 8) % 100_000, 1, task))
                for i in range(requests)
            ]
            for event in events:
                yield event

        proc = env.process(submitter())
        env.run(until=proc)

    run()
    best = _best_of(run, repeats)
    return {
        "requests": requests,
        "queue_depth": depth,
        "us_per_request": round(best * 1e6 / requests, 3),
        "requests_per_sec": round(requests / best),
    }


def bench_shard_sync(repeats: int) -> dict:
    """Epoch-barrier overhead of the sharded simulation core.

    Steps a 4-node, 2-shard fleet (inline vehicles — no process startup
    noise) through 1000 conservative-sync epochs with no client
    traffic, so the time measured is purely the coordination machinery:
    channel window scans, per-shard injection, event-loop advances to
    the barrier, and outbox drains.  ``epochs_per_sec`` is the gated
    metric; real cluster runs add workload cost on top of this floor.
    """
    from repro.config import ClusterConfig, TenantContract
    from repro.sim.shard import ShardedRun

    epochs = 1000
    link = 0.5e-3
    cluster = ClusterConfig(
        nodes=4, replication=2, link_latency=link,
        tenants=(TenantContract("idle"),),
    )

    stepped = [epochs]

    def run():
        sharded = ShardedRun(
            cluster, [], duration=epochs * link, shards=2, processes=False,
        )
        sharded.run()
        stepped[0] = sharded.epochs_run  # ±1 of `epochs` (float boundary)

    run()  # warm-up
    best = _best_of(run, repeats)
    return {
        "epochs": stepped[0],
        "shards": 2,
        "nodes": 4,
        "us_per_epoch": round(best * 1e6 / stepped[0], 3),
        "epochs_per_sec": round(stepped[0] / best),
    }


MICROBENCHES = {
    "event_loop": bench_event_loop,
    "event_cohort": bench_event_cohort,
    "fast_forward": bench_fast_forward,
    "cached_write_syscall": bench_cached_write_syscall,
    "vfs_open_close": bench_vfs_open_close,
    "cache_mark_dirty": bench_cache_mark_dirty,
    "cache_hit_lookup": bench_cache_hit_lookup,
    "mq_dispatch": bench_mq_dispatch,
    "shard_sync": bench_shard_sync,
}

#: Representative experiments timed for the suite wall-clock entry —
#: small enough for a CI smoke job, end-to-end enough to catch a
#: regression the microbenches miss.
SUITE_KEYS = ("fig01", "fig12")


def bench_suite(jobs: int = 1) -> dict:
    """Wall-clock of a representative run-all subset (serial by default)."""
    from repro.experiments import runner

    t0 = time.perf_counter()
    outcomes = runner.run_experiments([(key, None) for key in SUITE_KEYS], jobs=jobs)
    wall = time.perf_counter() - t0
    return {
        "experiments": list(SUITE_KEYS),
        "jobs": jobs,
        "wall_seconds": round(wall, 2),
        "serial_equivalent_seconds": round(
            sum(outcome.seconds for outcome in outcomes.values()), 2
        ),
    }


def bench_full_suite(jobs: int = 1) -> dict:
    """Wall-clock of every registered experiment (opt-in: minutes).

    The subset timing above keeps CI honest; this one records the real
    cost of a complete reproduction run whenever a PR refreshes the
    committed snapshot with ``--full-suite``.
    """
    from repro.experiments import EXPERIMENTS, runner

    keys = sorted(EXPERIMENTS)
    t0 = time.perf_counter()
    outcomes = runner.run_experiments([(key, None) for key in keys], jobs=jobs)
    wall = time.perf_counter() - t0
    return {
        "experiments": len(keys),
        "jobs": jobs,
        "wall_seconds": round(wall, 2),
        "serial_equivalent_seconds": round(
            sum(outcome.seconds for outcome in outcomes.values()), 2
        ),
    }


def collect(
    repeats: int, with_suite: bool = True, jobs: int = 1, full_suite: bool = False
) -> dict:
    payload = {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "methodology": f"min of {repeats} timed runs per microbench",
        "benchmarks": {},
    }
    for name, fn in MICROBENCHES.items():
        print(f"bench {name} ...", file=sys.stderr)
        payload["benchmarks"][name] = fn(repeats)
    if with_suite:
        print(f"bench suite {SUITE_KEYS} ...", file=sys.stderr)
        payload["suite"] = bench_suite(jobs=jobs)
    if full_suite:
        print("bench full suite (all experiments) ...", file=sys.stderr)
        payload["full_suite"] = bench_full_suite(jobs=jobs)
    return payload


#: Throughput metrics the --check gate watches: bench name -> rate key
#: (higher is better for every gated metric, including the
#: fast-forward speedup ratio).
GATED_METRICS = (
    ("event_loop", "events_per_sec"),
    ("event_cohort", "events_per_sec"),
    ("mq_dispatch", "requests_per_sec"),
    ("vfs_open_close", "opens_per_sec"),
    ("fast_forward", "speedup"),
    ("shard_sync", "epochs_per_sec"),
)


def check_against(baseline_path: str, current: dict, tolerance: float) -> int:
    """Exit status for the throughput regression gates.

    Gates event-loop event throughput and depth-32 dispatch-engine
    request throughput; a gated bench missing from the baseline file is
    skipped (older snapshots predate it).
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failed = 0
    for name, key in GATED_METRICS:
        base_entry = baseline["benchmarks"].get(name)
        if base_entry is None:
            print(f"{name}: no baseline entry, skipping gate", file=sys.stderr)
            continue
        base_rate = base_entry[key]
        new_rate = current["benchmarks"][name][key]
        floor = base_rate * (1.0 - tolerance)
        verdict = "OK" if new_rate >= floor else "REGRESSION"
        print(
            f"{name}: {new_rate:,} /s vs baseline {base_rate:,} "
            f"(floor {floor:,.0f}, tolerance {tolerance:.0%}) -> {verdict}",
            file=sys.stderr,
        )
        if new_rate < floor:
            failed += 1
    return 0 if failed == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_simulator.json",
        help="output path (default: BENCH_simulator.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=25,
        help="timed runs per microbench; the minimum is reported (default 25)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a baseline JSON; exit 1 if event-loop "
             "throughput regressed beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional event-loop throughput drop for --check "
             "(default 0.30)",
    )
    parser.add_argument(
        "--no-suite", action="store_true",
        help="skip the end-to-end suite wall-clock timing",
    )
    parser.add_argument(
        "--full-suite", action="store_true",
        help="also time a complete run of every experiment (minutes; "
             "kept out of CI)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the suite timing (default 1)",
    )
    args = parser.parse_args(argv)

    current = collect(
        args.repeats, with_suite=not args.no_suite, jobs=args.jobs,
        full_suite=args.full_suite,
    )
    Path(args.out).write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    for name, stats in current["benchmarks"].items():
        print(f"  {name}: {stats}", file=sys.stderr)

    if args.check:
        return check_against(args.check, current, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
