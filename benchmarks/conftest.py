"""Benchmark harness configuration.

Each benchmark regenerates one figure/table of the paper at a
simulation scale that finishes in reasonable wall time, prints the
same rows/series the paper reports, and asserts the qualitative
finding (who wins, rough factor, crossover).  pytest-benchmark is used
in single-round pedantic mode: an experiment is a deterministic
simulation, so repeated timing rounds would only re-measure Python.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
