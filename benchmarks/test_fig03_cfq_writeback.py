"""Figure 3: CFQ's priority blindness for buffered writes.

Paper: 8 priority writers get equal throughput because the priority-4
writeback task submits everything (right plot: 100% of requests appear
at priority 4).
"""

from repro.experiments import fig03_cfq_writeback


def test_fig03_cfq_writeback(once):
    result = once(fig03_cfq_writeback.run, duration=20.0)

    print("\nFigure 3 — CFQ buffered-write throughput by priority")
    print(f"{'prio':>4} {'MB/s':>8} {'submitted-at-prio share':>24}")
    for p in range(8):
        print(f"{p:>4} {result['throughput_mbps'][p]:>8.1f} "
              f"{result['submitter_priority_share'][p]:>23.1%}")
    print(f"deviation from priority-proportional ideal: {result['deviation_pct']:.0f}%")

    # All block writes appear to come from priority 4 (pdflush).
    assert result["submitter_priority_share"][4] > 0.95
    # Throughput is flat: heavy deviation from the ideal.
    assert result["deviation_pct"] > 60
    rates = result["throughput_mbps"]
    assert max(rates.values()) < 1.5 * min(rates.values())
