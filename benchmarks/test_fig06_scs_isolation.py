"""Figure 6: SCS-Token fails to isolate A from B's I/O pattern.

Paper: A's throughput standard deviation across B's 14 run-size
workloads is ~41 MB; B's buffered writes barely affect A while B's
disk reads crush it.
"""

from repro.experiments import fig06_scs_isolation
from repro.units import KB, MB

RUN_SIZES = (4 * KB, 64 * KB, 1 * MB, 16 * MB)


def test_fig06_scs_isolation(once):
    result = once(fig06_scs_isolation.run, run_sizes=RUN_SIZES, duration=15.0)

    print("\nFigure 6 — A's throughput while B (throttled 10 MB/s) varies")
    print(f"{'B run size':>10} {'A | B reads':>12} {'A | B writes':>13}")
    for i, size in enumerate(result["run_sizes"]):
        print(f"{size // KB:>8}KB {result['a_mbps']['read'][i]:>11.1f} "
              f"{result['a_mbps']['write'][i]:>12.1f}")
    print(f"A stdev: {result['a_stdev_mb']:.1f} MB (paper: ~41 MB)")

    # SCS is NOT isolating: large spread in A's throughput.
    assert result["a_stdev_mb"] > 15
    # Writes look cheap (buffered); reads hurt.
    assert min(result["a_mbps"]["write"]) > max(result["a_mbps"]["read"])
