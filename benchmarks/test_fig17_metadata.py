"""Figure 17: metadata-heavy workload on ext4 (full) vs XFS (partial).

Paper: with ext4, B's creat+fsync storm is correctly throttled and A
is isolated regardless of B's sleep time.  With XFS, the journal I/O
is unattributable, B escapes its limit, and A's throughput tracks B's
create rate.
"""

from repro.experiments import fig17_metadata


def test_fig17_metadata(once):
    result = once(fig17_metadata.run, duration=10.0)

    print("\nFigure 17 — reader A vs metadata-storm B (throttled)")
    print(f"{'sleep ms':>8} {'ext4 A':>8} {'xfs A':>8} {'ext4 B cr/s':>12} {'xfs B cr/s':>11}")
    for i, sleep in enumerate(result["sleeps_ms"]):
        print(f"{sleep:>8.0f} {result['ext4_a_mbps'][i]:>8.1f} {result['xfs_a_mbps'][i]:>8.1f} "
              f"{result['ext4_creates_per_sec'][i]:>12.1f} {result['xfs_creates_per_sec'][i]:>11.1f}")

    # ext4 isolates A at every sleep setting; XFS does not (at sleep 0).
    assert min(result["ext4_a_mbps"]) > 0.85 * max(result["ext4_a_mbps"])
    assert result["xfs_a_mbps"][0] < 0.7 * result["ext4_a_mbps"][0]
    # Because ext4 throttles B's creates and XFS lets them through.
    assert result["xfs_creates_per_sec"][0] > 5 * result["ext4_creates_per_sec"][0]
