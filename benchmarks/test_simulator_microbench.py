"""Microbenchmarks of the simulator itself (real wall-clock timing).

These use pytest-benchmark's normal timed rounds — unlike the figure
benches, here the *host* performance of the simulation substrate is
the quantity of interest: event throughput, the syscall path, and the
page-cache hot paths that every experiment leans on.
"""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.cache import PageCache, PageKey
from repro.core.tags import TagManager
from repro.proc import Task
from repro.schedulers import Noop


def test_event_loop_throughput(benchmark):
    """Schedule-and-run cost of bare timeout events."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(2000):
                yield env.timeout(0.001)

        env.process(ticker())
        env.run()
        return env.now

    result = benchmark(run)
    assert result == pytest.approx(2.0)


def test_cached_write_syscall_path(benchmark):
    """End-to-end write() through hooks, cache, and journal join."""
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    task = machine.spawn("w")

    def setup():
        handle = yield from machine.creat(task, "/f")
        return handle

    proc = env.process(setup())
    env.run(until=proc)
    handle = proc.value

    def write_batch():
        def body():
            for _ in range(100):
                yield from handle.pwrite(0, 4 * KB)

        p = env.process(body())
        env.run(until=p)

    benchmark(write_batch)
    assert machine.fs.writes > 0


def test_cache_mark_dirty_hot_path(benchmark):
    env = Environment()
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    task = Task("w")

    counter = [0]

    def dirty_batch():
        base = counter[0]
        counter[0] += 1000
        for i in range(1000):
            cache.mark_dirty(PageKey(1, (base + i) % 8192), task)

    benchmark(dirty_batch)
    assert cache.dirty_pages > 0


def test_cache_hit_lookup_hot_path(benchmark):
    env = Environment()
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    for i in range(4096):
        cache.insert_clean(PageKey(1, i))

    def lookup_batch():
        hits = 0
        for i in range(4096):
            if cache.lookup(PageKey(1, i)) is not None:
                hits += 1
        return hits

    assert benchmark(lookup_batch) == 4096
