"""Figure 1: write burst from an idle-priority process.

Paper: B's one-second random-write burst degrades A for >5 minutes
under CFQ (the idle class is useless for buffered writes); the split
stack keeps A fast.
"""

from repro.experiments import fig01_write_burst
from repro.units import MB


def test_fig01_write_burst(once):
    results = once(
        fig01_write_burst.run_comparison,
        duration=60.0,
        burst_bytes=48 * MB,
        burst_at=10.0,
    )
    print("\nFigure 1 — reader throughput around an idle-class write burst")
    print(f"{'scheduler':>9} {'before MB/s':>12} {'after MB/s':>11} {'degradation':>12}")
    for name, r in results.items():
        print(f"{name:>9} {r['reader_before_mbps']:>12.1f} {r['reader_after_mbps']:>11.1f} "
              f"{r['degradation']:>11.1f}x")

    cfq, split = results["cfq"], results["split"]
    # CFQ: the burst visibly degrades the reader; split protects it.
    assert cfq["degradation"] > 1.7, "CFQ should be badly degraded by the burst"
    assert split["reader_after_mbps"] > 1.8 * cfq["reader_after_mbps"]
    assert split["degradation"] < 1.2
