"""Figure 21: HDFS isolation through local Split-Token schedulers.

Paper: lowering the throttled group's per-worker cap gives the
unthrottled group more throughput; the throttled group's total falls
short of the (cap/3)x7 upper bound because of block-placement load
imbalance, and a 16 MB block size closes most of the gap vs 64 MB.
"""

from repro.experiments import fig21_hdfs
from repro.units import MB

RATE_CAPS = (8 * MB, 64 * MB)


def test_fig21_hdfs(once):
    result = once(
        fig21_hdfs.run,
        rate_caps=RATE_CAPS,
        block_sizes=(64 * MB, 16 * MB),
        duration=15.0,
    )

    print("\nFigure 21 — HDFS throttled/unthrottled group throughput")
    print(f"{'block':>7} {'cap':>6} {'throttled':>10} {'bound':>7} {'util':>6} "
          f"{'unthrottled':>12}")
    for key in ("block_64mb", "block_16mb"):
        for cell in result[key]:
            print(f"{cell['block_size_mb']:>5.0f}MB {cell['rate_cap_mb']:>4.0f}MB "
                  f"{cell['throttled_mbps']:>9.1f} {cell['upper_bound_mbps']:>6.1f} "
                  f"{cell['bound_utilization']:>6.1%} {cell['unthrottled_mbps']:>11.1f}")

    big, small = result["block_64mb"], result["block_16mb"]
    # Tighter caps on the throttled group help the unthrottled group.
    assert big[0]["unthrottled_mbps"] > big[-1]["unthrottled_mbps"] * 0.95
    # The throttled group respects (stays under) its upper bound.
    for cell in big + small:
        assert cell["throttled_mbps"] <= cell["upper_bound_mbps"] * 1.1
    # Smaller blocks balance load better: higher bound utilization.
    for i in range(len(RATE_CAPS)):
        assert small[i]["bound_utilization"] >= big[i]["bound_utilization"] * 0.95
