"""Figure 24: fleet-scale tenant isolation under sharded simulation.

Claim: Split-Token enforcement is purely local, so the spread of
per-tenant throughput (the isolation metric, as a coefficient of
variation) stays flat as the fleet grows — no coordination penalty at
scale.  The reduced sweep here keeps the same shape as the paper-scale
one (8→64 DataNodes, up to 1024 streams) at CI-friendly size.
"""

from repro.experiments import fig24_fleet
from repro.units import MB

FLEET_SIZES = (8, 16, 24)


def test_fig24_fleet(once):
    result = once(
        fig24_fleet.run,
        fleet_sizes=FLEET_SIZES,
        tenants_count=8,
        rate_per_node=2 * MB,
        duration=1.0,
        shards=4,
    )

    print("\nFigure 24 — tenant isolation vs fleet size (sharded runs)")
    print(f"{'nodes':>6} {'streams':>8} {'shards':>7} {'mean':>8} {'cv':>7} "
          f"{'p99(ms)':>8}")
    for point in result["points"]:
        print(f"{point['nodes']:>6} {point['streams']:>8} {point['shards']:>7} "
              f"{point['tenant_mean_mbps']:>7.1f} {point['isolation_cv']:>7.3f} "
              f"{point['chunk_p99_ms']:>8.1f}")

    points = result["points"]
    # Every fleet size actually carried traffic for every tenant.
    for point in points:
        assert point["tenant_mean_mbps"] > 0
    # Isolation: per-tenant throughput spread stays tight at every
    # fleet size — local enforcement has no scale penalty.  (Very small
    # fleets are excluded: with only a handful of nodes, random block
    # placement is lumpy and the spread reflects placement noise, not
    # the scheduler.)
    for point in points:
        assert point["isolation_cv"] < 0.20
    # ... and the spread does not widen as the fleet grows.
    assert points[-1]["isolation_cv"] <= points[0]["isolation_cv"] + 0.10
