"""Figure 10: memory overhead of cause tags vs dirty-ratio setting.

Paper (8 GB worker): 14.5 MB average (0.2% of RAM) at default
settings; 52.2 MB max (0.6%) at a 50% dirty ratio.  Overhead tracks
the number of dirty buffers.
"""

from repro.experiments import fig10_space_overhead


def test_fig10_space_overhead(once):
    result = once(fig10_space_overhead.run, duration=20.0)

    print("\nFigure 10 — tag memory overhead vs dirty ratio")
    print(f"{'dirty ratio':>11} {'avg MB':>8} {'max MB':>8} {'avg % RAM':>10}")
    for i, ratio in enumerate(result["dirty_ratios"]):
        print(f"{ratio:>10.0%} {result['avg_overhead_mb'][i]:>8.2f} "
              f"{result['max_overhead_mb'][i]:>8.2f} {result['avg_pct_of_ram'][i]:>9.3f}%")

    assert result["overhead_grows_with_ratio"]
    # Always a trivial fraction of memory (paper: <1%).
    assert all(pct < 1.0 for pct in result["avg_pct_of_ram"])
