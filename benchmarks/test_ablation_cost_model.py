"""Ablation: why Split-Token needs BOTH cost-estimation stages (§3.2).

The paper argues neither prompt (memory-level) nor accurate
(block-level) accounting suffices alone; Figure 8's trade-off is why
Split-Token charges promptly and revises later.  This bench disables
each stage:

- no block revision -> random writes are billed at the (bounded)
  memory guess only: the throttled writer systematically overshoots
  its normalized budget;
- no prompt charging -> a burst dirties far more than the budget
  before the first (accurate) charge lands: the cap is enforced only
  in arrears.
"""

from repro.experiments.common import build_stack, drive, run_for
from repro.schedulers.split_token import SplitToken
from repro.units import KB, MB
from repro.workloads import prefill_file, run_pattern_writer
from repro.metrics.recorders import ThroughputTracker


def _run(variant: str, duration: float = 15.0):
    flags = {
        "full": dict(prompt_charging=True, block_revision=True),
        "no-revision": dict(prompt_charging=True, block_revision=False),
        "no-prompt": dict(prompt_charging=False, block_revision=True),
    }[variant]
    scheduler = SplitToken(**flags)
    # Small memory so writeback (and thus the block-level revision)
    # happens *during* the measurement window.
    env, machine = build_stack(scheduler=scheduler, device="hdd", memory_bytes=64 * MB)
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/bdata", 256 * MB)

    drive(env, setup_proc())
    b = machine.spawn("B")
    bucket = scheduler.set_limit(b, 1 * MB)
    tracker = ThroughputTracker()
    env.process(run_pattern_writer(machine, b, "/bdata", 4 * KB, duration, tracker=tracker))
    run_for(env, duration)
    # Flush the backlog so late charges land, then read the books.
    machine.writeback.request_flush(0)
    run_for(env, 30.0)
    return {
        "b_dirty_rate_mb": tracker.rate(until=tracker.ended_at or env.now) / MB,
        "b_charged_total_mb": bucket.charged_total / MB,
        "budget_mb": 1 * duration,
    }


def test_ablation_cost_model(once):
    results = once(lambda: {v: _run(v) for v in ("full", "no-revision", "no-prompt")})

    print("\nAblation — Split-Token cost-model stages (B: 4 KB random writes, 1 MB/s cap)")
    print(f"{'variant':>12} {'B dirty MB/s':>13} {'charged MB':>11} {'budget MB':>10}")
    for name, r in results.items():
        print(f"{name:>12} {r['b_dirty_rate_mb']:>13.2f} {r['b_charged_total_mb']:>11.1f} "
              f"{r['budget_mb']:>10.0f}")

    full, norev, noprompt = results["full"], results["no-revision"], results["no-prompt"]
    # Without prompt charging, enforcement lags behind the work: B
    # dirties several times faster than the full scheduler allows
    # before the (accurate) block-level charges catch up.
    assert noprompt["b_dirty_rate_mb"] > 5 * full["b_dirty_rate_mb"]
    # Without the block-level revision, the seek amplification of B's
    # random writes is never billed: B's total charges are a fraction
    # of what the true disk cost (visible in the full scheduler's
    # books once everything flushed) amounts to.
    assert norev["b_charged_total_mb"] < 0.3 * full["b_charged_total_mb"]
    # The revision reveals how badly the prompt estimate undershoots
    # for random writes: actual normalized cost is many times the
    # nominal budget.
    assert full["b_charged_total_mb"] > 5 * full["budget_mb"]
