"""Figure 18: SQLite transaction tail latencies vs checkpoint threshold.

Paper: under Block-Deadline, bigger thresholds lower the 99th
percentile but keep raising the 99.9th (the pain concentrates);
Split-Deadline cuts the 99.9th (~4x at 1K buffers).
"""

from repro.experiments import fig18_sqlite

THRESHOLDS = (250, 1000)


def test_fig18_sqlite(once):
    result = once(fig18_sqlite.run, thresholds=THRESHOLDS, duration=90.0)

    print("\nFigure 18 — SQLite transaction latency percentiles (ms)")
    print(f"{'threshold':>9} {'blk p99':>8} {'blk p99.9':>10} {'spl p99':>8} {'spl p99.9':>10}")
    for i, threshold in enumerate(result["thresholds"]):
        print(f"{threshold:>9} {result['block_p99_ms'][i]:>8.1f} "
              f"{result['block_p999_ms'][i]:>10.1f} {result['split_p99_ms'][i]:>8.1f} "
              f"{result['split_p999_ms'][i]:>10.1f}")

    # Split-Deadline improves the extreme tail at every threshold.
    for i in range(len(THRESHOLDS)):
        assert result["split_p999_ms"][i] < result["block_p999_ms"][i]
    # And the improvement is substantial (paper: ~4x at 1K).
    last = len(THRESHOLDS) - 1
    assert result["split_p999_ms"][last] < 0.6 * result["block_p999_ms"][last]
