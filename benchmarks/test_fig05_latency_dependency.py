"""Figure 5: fsync latency dependencies under Block-Deadline.

Paper: A flushes one 4 KB block per fsync, yet its latency scales with
how much data B flushes per fsync (16 KB - 4 MB), because deadlines on
block requests cannot break filesystem-imposed dependencies.
"""

from repro.experiments import fig05_latency_dependency
from repro.units import KB, MB


def test_fig05_latency_dependency(once):
    result = once(
        fig05_latency_dependency.run,
        sizes=(16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB),
        duration=15.0,
    )
    print("\nFigure 5 — A's fsync latency vs B's flush size (Block-Deadline)")
    print(f"{'B size':>8} {'A mean ms':>10} {'A p95 ms':>9}")
    for size, mean, p95 in zip(result["sizes"], result["mean_ms"], result["p95_ms"]):
        print(f"{size // KB:>6}KB {mean:>10.1f} {p95:>9.1f}")

    assert result["latency_grows_with_b"]
    # The dependency is strong: an order of magnitude across the sweep.
    assert result["mean_ms"][-1] > 10 * result["mean_ms"][0]
