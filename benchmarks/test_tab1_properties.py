"""Table 1: framework capability matrix, verified behaviourally.

Paper: block-level frameworks fail cause mapping and reordering;
system-call frameworks fail cost estimation; split supports all three.
"""

from repro.experiments import tab1_properties


def test_tab1_properties(once):
    result = once(tab1_properties.run)

    print("\nTable 1 — framework properties (measured on the stack)")
    print(f"{'need':>16} {'Block':>6} {'Syscall':>8} {'Split':>6}")
    for need in ("cause_mapping", "cost_estimation", "reordering"):
        row = " ".join(
            f"{'yes' if result['measured'][fw][need] else 'NO':>6}"
            for fw in ("block", "syscall", "split")
        )
        print(f"{need:>16} {row}")

    assert result["matches_paper"], (
        f"measured {result['measured']} != paper {result['expected']}"
    )
