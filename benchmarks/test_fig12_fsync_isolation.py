"""Figure 12: fsync latency isolation (Split- vs Block-Deadline).

Paper: during B's big fsyncs, Block-Deadline lets A's fsync latency
grow by an order of magnitude; Split-Deadline keeps A fluctuating
around its deadline.  Tail latencies improve ~4x.  Both HDD and SSD.
"""

import pytest

from repro.experiments import fig12_fsync_isolation


@pytest.mark.parametrize("device", ["hdd", "ssd"])
def test_fig12_fsync_isolation(once, device):
    results = once(fig12_fsync_isolation.run_comparison, device=device, duration=20.0)

    print(f"\nFigure 12 ({device.upper()}) — A's fsync latency (goal "
          f"{results['split']['a_goal_ms']:.0f} ms)")
    print(f"{'scheduler':>9} {'mean ms':>8} {'p95 ms':>8} {'max ms':>9} {'A ops':>6}")
    for name, r in results.items():
        print(f"{name:>9} {r['a_mean_ms']:>8.1f} {r['a_p95_ms']:>8.1f} "
              f"{r['a_max_ms']:>9.1f} {r['a_count']:>6}")

    block, split = results["block"], results["split"]
    # Split-Deadline cuts the tail substantially (paper: ~4x).
    assert split["a_max_ms"] < block["a_max_ms"] / 2
    # A's latencies stay in the neighbourhood of the goal under split.
    assert split["a_p95_ms"] < 2.5 * split["a_goal_ms"]
