"""An HDFS-like distributed filesystem over local split schedulers
(paper §7.3).

Architecture: one NameNode placing fixed-size blocks on a set of
DataNodes; every DataNode is a complete simulated machine (its own
disk, cache, filesystem, and — when isolation is wanted — a local
Split-Token scheduler).  Writes are pipelined to ``replication``
replicas.

Account propagation mirrors the paper's protocol change: each client
RPC carries a billing account; a DataNode charges the account's local
task, which the local Split-Token scheduler throttles.  Because blocks
are placed per-block, load imbalance leaves tokens unused on idle
workers — the gap between the black bars and the dashed upper bound in
Figure 21, which shrinks with smaller block sizes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.devices.hdd import HDD
from repro.metrics.recorders import ThroughputTracker
from repro.sim.events import AllOf
from repro.units import GB, MB

DEFAULT_BLOCK_SIZE = 64 * MB


class DataNode:
    """One worker machine: a full local stack plus per-account tasks."""

    def __init__(self, env, index: int, scheduler_factory, memory_bytes: int = 8 * GB):
        from repro.syscall.os import OS

        self.index = index
        self.scheduler = scheduler_factory() if scheduler_factory is not None else None
        self.os = OS(
            env,
            device=HDD(),
            scheduler=self.scheduler,
            memory_bytes=memory_bytes,
            cores=4,
        )
        #: Billing account -> local task (throttled by the local scheduler).
        self._account_tasks: Dict[str, object] = {}
        self.bytes_written = 0

    def account_task(self, account: str):
        task = self._account_tasks.get(account)
        if task is None:
            task = self.os.spawn(f"dn{self.index}-{account}")
            self._account_tasks[account] = task
        return task

    def set_account_limit(self, account: str, rate: float) -> None:
        """Throttle *account* locally (requires a token scheduler)."""
        if self.scheduler is None or not hasattr(self.scheduler, "set_limit"):
            raise RuntimeError("this DataNode's scheduler cannot throttle")
        self.scheduler.set_limit(self.account_task(account), rate)

    def write_chunk(self, account: str, path: str, nbytes: int):
        """Generator: append *nbytes* to the local replica file."""
        task = self.account_task(account)
        handle = yield from self.os.open(task, path, create=True)
        n = yield from handle.append(nbytes)
        yield from self.os.close(handle)
        self.bytes_written += n
        return n

    def sync_replica(self, account: str, path: str):
        """Generator: make a finished replica durable (block close)."""
        task = self.account_task(account)
        if self.os.fs.lookup(path) is None:
            return
        handle = yield from self.os.open(task, path)
        yield from handle.fsync()
        yield from self.os.close(handle)


class HDFSCluster:
    """NameNode + DataNodes + client API."""

    def __init__(
        self,
        env,
        workers: int = 7,
        replication: int = 3,
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheduler_factory=None,
        seed: int = 0,
    ):
        if replication > workers:
            raise ValueError("replication cannot exceed worker count")
        self.env = env
        self.replication = replication
        self.block_size = block_size
        self.rng = random.Random(seed)
        self.datanodes = [DataNode(env, i, scheduler_factory) for i in range(workers)]
        self._block_counter = 0

    # -- NameNode -----------------------------------------------------------

    def place_block(self) -> List[DataNode]:
        """Choose *replication* workers for a new block.

        Random placement (like HDFS's default when no topology hints
        apply) — the source of the load imbalance the paper observes.
        """
        self._block_counter += 1
        return self.rng.sample(self.datanodes, self.replication)

    def set_account_limit(self, account: str, rate_per_node: float) -> None:
        """Throttle *account* on every worker (local rate cap)."""
        for node in self.datanodes:
            node.set_account_limit(account, rate_per_node)

    # -- client API -----------------------------------------------------------

    def write_file(
        self,
        account: str,
        path: str,
        size: int,
        duration: Optional[float] = None,
        tracker: Optional[ThroughputTracker] = None,
        chunk: int = 1 * MB,
    ):
        """Generator: write an HDFS file of *size* bytes, pipelined.

        Data flows block by block; within a block, 1 MB chunks go to
        all replicas in parallel (the pipeline's throughput is the
        slowest replica's).  Stops early when *duration* elapses.
        """
        env = self.env
        end = env.now + duration if duration is not None else None
        if tracker is not None:
            tracker.start(env.now)
        written = 0
        block_index = 0
        while written < size:
            if end is not None and env.now >= end:
                break
            replicas = self.place_block()
            block_remaining = min(self.block_size, size - written)
            flat = path.strip("/").replace("/", "_")
            replica_path = f"/{account}-{flat}.blk{block_index}"
            while block_remaining > 0:
                if end is not None and env.now >= end:
                    break
                n = min(chunk, block_remaining)
                transfers = [
                    env.process(node.write_chunk(account, replica_path, n))
                    for node in replicas
                ]
                yield AllOf(env, transfers)
                block_remaining -= n
                written += n
                if tracker is not None:
                    # Count client-visible bytes (not the 3x replica I/O).
                    tracker.add(n, env.now)
            # Block close: replicas are synced to disk (HDFS semantics),
            # which keeps the pipeline disk-bound rather than absorbing
            # whole blocks into worker page caches.
            closes = [
                env.process(node.sync_replica(account, replica_path))
                for node in replicas
            ]
            yield AllOf(env, closes)
            block_index += 1
        return written

    def read_file(
        self,
        account: str,
        path: str,
        tracker: Optional[ThroughputTracker] = None,
        chunk: int = 1 * MB,
    ):
        """Generator: read an HDFS file back, one replica per block.

        For each stored block, a random live replica serves the reads
        (HDFS picks the nearest; we model uniform choice).  Returns the
        number of bytes read, 0 if the file was never written.
        """
        env = self.env
        if tracker is not None:
            tracker.start(env.now)
        total = 0
        block_index = 0
        flat = path.strip("/").replace("/", "_")
        while True:
            replica_path = f"/{account}-{flat}.blk{block_index}"
            holders = [
                node for node in self.datanodes
                if node.os.fs.lookup(replica_path) is not None
            ]
            if not holders:
                break
            node = self.rng.choice(holders)
            task = node.account_task(account)
            handle = yield from node.os.open(task, replica_path)
            offset = 0
            while offset < handle.size:
                n = yield from handle.pread(offset, chunk)
                if n <= 0:
                    break
                offset += n
                total += n
                if tracker is not None:
                    tracker.add(n, env.now)
            yield from node.os.close(handle)
            block_index += 1
        return total

    def total_disk_writes(self) -> int:
        """Bytes actually written across all workers (includes replicas)."""
        return sum(node.os.device.stats.bytes_written for node in self.datanodes)
