"""A PostgreSQL-like engine driven by a pgbench-style workload (§7.1.2).

TPC-B-ish transactions: read a few table pages, update one, append a
WAL record, fsync the WAL (the *foreground* fsync).  A checkpointer
flushes all dirty table pages every ``checkpoint_interval`` seconds and
fsyncs the table — the burst behind the community's "fsync freeze"
problem: at the end of each checkpoint period a flood of writes and a
big fsync stall foreground commits.

Latency targets mirror the paper: foreground fsyncs want ~5 ms,
checkpoint fsyncs get 200 ms, transactions should finish within 15 ms.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.metrics.recorders import LatencyRecorder, percentile
from repro.units import KB, MB, PAGE_SIZE


class PgbenchResult:
    """Latency distribution of a pgbench run."""

    def __init__(self, latencies: List[float], target: float):
        self.latencies = latencies
        self.target = target

    @property
    def count(self) -> int:
        return len(self.latencies)

    def fraction_over(self, threshold: float) -> float:
        if not self.latencies:
            return 0.0
        return sum(1 for lat in self.latencies if lat > threshold) / len(self.latencies)

    def fraction_missing_target(self) -> float:
        return self.fraction_over(self.target)

    def percentile(self, p: float) -> float:
        return percentile(self.latencies, p)

    def median(self) -> float:
        return self.percentile(50)


class Postgres:
    """One database instance with workers and a periodic checkpointer."""

    def __init__(
        self,
        os,
        name: str = "pg",
        table_bytes: int = 256 * MB,
        workers: int = 4,
        checkpoint_interval: float = 30.0,
        reads_per_txn: int = 2,
        wal_record: int = 8 * KB,
        latency_target: float = 0.015,
        seed: int = 0,
    ):
        self.os = os
        self.name = name
        self.table_bytes = table_bytes
        self.checkpoint_interval = checkpoint_interval
        self.reads_per_txn = reads_per_txn
        self.wal_record = wal_record
        self.latency_target = latency_target
        self.rng = random.Random(seed)
        self.worker_tasks = [os.spawn(f"{name}-worker{i}") for i in range(workers)]
        self.checkpoint_task = os.spawn(f"{name}-checkpointer")
        self.table = None
        self.wal = None
        self.latency = LatencyRecorder(f"{name}-txn")
        self.checkpoints = 0
        self._stop = False

    def setup(self):
        """Generator: build the table and WAL, start the checkpointer."""
        from repro.workloads.generators import prefill_file

        self.table = yield from prefill_file(
            self.os, self.checkpoint_task, f"/{self.name}.db", self.table_bytes
        )
        self.wal = yield from self.os.creat(self.worker_tasks[0], f"/{self.name}.wal")
        # Per-worker descriptors: table reads/updates and the foreground
        # WAL fsync are attributed to the issuing worker.  WAL *appends*
        # stay on the shared handle (worker 0), mirroring a dedicated
        # WAL-writer process — the attribution the stack always had.
        self._table_h = {}
        self._wal_h = {}
        for task in self.worker_tasks:
            self._table_h[task.pid] = yield from self.os.open(task, f"/{self.name}.db")
            self._wal_h[task.pid] = yield from self.os.open(task, f"/{self.name}.wal")
        self.os.env.process(self._checkpointer(), name=f"{self.name}-ckpt")

    def run_bench(self, duration: float, think: float = 0.002, rate_per_worker: Optional[float] = None):
        """Generator: run all workers for *duration*; returns the result.

        With *rate_per_worker* set, workers run open-loop (pgbench
        ``--rate``): transactions are issued on a fixed schedule and
        latency is measured from the scheduled start, so a checkpoint
        freeze delays every transaction issued while it lasts — the way
        the paper's latency CDF sees it.
        """
        env = self.os.env
        procs = [
            env.process(
                self._worker_loop(task, duration, think, rate_per_worker),
                name=task.name,
            )
            for task in self.worker_tasks
        ]
        for proc in procs:
            yield proc
        self._stop = True
        return PgbenchResult(self.latency.latencies, self.latency_target)

    def _worker_loop(self, task, duration: float, think: float, rate: Optional[float]):
        env = self.os.env
        end = env.now + duration
        interval = 1.0 / rate if rate else None
        scheduled = env.now
        while env.now < end:
            if interval is not None:
                scheduled += interval
                if scheduled > env.now:
                    yield env.timeout(scheduled - env.now)
                start = scheduled
            else:
                start = env.now
            yield from self._transaction(task)
            self.latency.record(env.now, env.now - start)
            if interval is None and think > 0:
                yield env.timeout(think)

    def _transaction(self, task):
        pages = self.table_bytes // PAGE_SIZE
        table = self._table_h[task.pid]
        for _ in range(self.reads_per_txn):
            page = self.rng.randrange(0, pages)
            yield from table.pread(page * PAGE_SIZE, PAGE_SIZE)
        # The row update dirties one table page (checkpoint flushes it).
        page = self.rng.randrange(0, pages)
        yield from table.pwrite(page * PAGE_SIZE, PAGE_SIZE)
        # Commit record: WAL append + foreground fsync.
        yield from self.wal.append(self.wal_record)
        yield from self._wal_h[task.pid].fsync()

    def _checkpointer(self):
        env = self.os.env
        while True:
            yield env.timeout(self.checkpoint_interval)
            if self._stop:
                return
            # Flush every dirty table page, then force it all to disk.
            # self.table is the checkpointer's own handle (prefilled
            # under checkpoint_task), so attribution is unchanged.
            yield from self.table.fsync()
            self.checkpoints += 1
