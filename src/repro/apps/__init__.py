"""Real-application models from the paper's §7 evaluation.

- :mod:`repro.apps.sqlite` — a WAL database with threshold-triggered
  checkpointing (§7.1.1);
- :mod:`repro.apps.postgres` — a TPC-B-like transaction engine with
  periodic checkpoints, driven pgbench-style (§7.1.2);
- :mod:`repro.apps.qemu` — virtual machines as nested storage stacks
  over a host file (§7.2);
- :mod:`repro.apps.hdfs` — a replicated distributed filesystem whose
  workers run local split schedulers (§7.3).
"""

from repro.apps.sqlite import SQLiteDB
from repro.apps.postgres import Postgres, PgbenchResult
from repro.apps.qemu import QemuVM, FileBackedDevice
from repro.apps.hdfs import HDFSCluster, DataNode

__all__ = [
    "DataNode",
    "FileBackedDevice",
    "HDFSCluster",
    "PgbenchResult",
    "Postgres",
    "QemuVM",
    "SQLiteDB",
]
