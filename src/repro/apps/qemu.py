"""QEMU-style virtual machines as nested storage stacks (paper §7.2).

A :class:`QemuVM` is a complete guest stack — its own page cache,
filesystem, and block queue — whose "disk" is a
:class:`FileBackedDevice`: every guest block request becomes a host
read/write on the VM's image file, issued by the VM's *host task*.

Host-side throttling therefore applies to the whole VM (the host task
is the account), and the guest's own cache sits *above* the host's
scheduling layer — which is why memory-bound guest workloads stay fast
even under the host's SCS scheduler (Figure 20's difference from the
raw-SCS stack).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.devices.base import Device
from repro.units import GB, MB, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.syscall.os import OS, FileHandle


class FileBackedDevice(Device):
    """A guest block device backed by a file on the host.

    Implements the asynchronous device protocol of
    :class:`~repro.block.queue.BlockQueue`: ``serve`` is a generator
    whose duration emerges from the host stack (cache hits are nearly
    free; misses pay the host's disk and scheduler).
    """

    def __init__(self, host_os: "OS", host_task, image: "FileHandle", name: str = "vda"):
        capacity = image.inode.size // PAGE_SIZE
        super().__init__(capacity_blocks=capacity, name=name)
        self.host_os = host_os
        self.host_task = host_task
        self.image = image

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        raise RuntimeError("FileBackedDevice is asynchronous; use serve()")

    def serve(self, request):
        """Generator: carry out a guest block request via host syscalls.

        Uses O_DIRECT (QEMU ``cache=none``): double caching between
        guest and host would hide the device from the host scheduler.
        """
        start = self.host_os.env.now
        offset = request.block * PAGE_SIZE
        nbytes = request.nblocks * PAGE_SIZE
        # The image handle belongs to the host task, so positional I/O
        # through it is attributed to the whole VM.
        if request.is_read:
            yield from self.image.pread(offset, nbytes, direct=True)
        else:
            yield from self.image.pwrite(offset, nbytes, direct=True)
        self._last_block_end = request.block + request.nblocks
        self._account(request.op, request.nblocks, self.host_os.env.now - start)


class QemuVM:
    """A guest machine: full nested stack over a host image file."""

    def __init__(
        self,
        host_os: "OS",
        name: str = "vm",
        image_bytes: int = 4 * GB,
        guest_memory: int = 1 * GB,
        guest_cores: int = 2,
        guest_scheduler=None,
    ):
        if image_bytes < 48 * MB:
            raise ValueError(
                "image must be >= 48 MiB to hold the guest journal and "
                f"metadata regions (got {image_bytes} bytes)"
            )
        self.host_os = host_os
        self.name = name
        self.image_bytes = image_bytes
        self.guest_memory = guest_memory
        self.guest_cores = guest_cores
        self.guest_scheduler = guest_scheduler
        #: The host-side identity of this whole VM (throttle this).
        self.host_task = host_os.spawn(f"qemu-{name}")
        self.image: Optional["FileHandle"] = None
        self.guest: Optional["OS"] = None

    def boot(self):
        """Generator: create the image and assemble the guest stack."""
        from repro.schedulers.noop import Noop
        from repro.syscall.os import OS
        from repro.workloads.generators import prefill_file

        self.image = yield from prefill_file(
            self.host_os,
            self.host_task,
            f"/{self.name}.img",
            self.image_bytes,
            drop=True,
        )
        device = FileBackedDevice(self.host_os, self.host_task, self.image, name=f"{self.name}-vda")
        scheduler = self.guest_scheduler if self.guest_scheduler is not None else Noop()
        self.guest = OS(
            self.host_os.env,
            device=device,
            scheduler=scheduler,
            memory_bytes=self.guest_memory,
            cores=self.guest_cores,
            fs_kwargs={"journal_blocks": 8192, "metadata_blocks": 2048},
        )
        return self.guest

    def spawn(self, name: str, priority: int = 4, **kwargs):
        """Create a task inside the guest."""
        if self.guest is None:
            raise RuntimeError("boot() the VM first")
        return self.guest.spawn(f"{self.name}/{name}", priority=priority, **kwargs)
