"""A SQLite3-like WAL database (paper §7.1.1).

Transactions read a random page of the table, append a WAL record, and
fsync the log.  A separate checkpointer thread copies accumulated
dirty table pages into the database file (and fsyncs it) whenever the
number of dirty buffers crosses a threshold — the knob swept on the
x-axis of Figure 18.

The paper's "minor changes to SQLite" are reflected here: log appends
and checkpointing run concurrently, and per-thread I/O deadlines can
be installed (short for the WAL appender and table reads, long for the
checkpointer's database-file fsyncs).
"""

from __future__ import annotations

import random

from repro.metrics.recorders import LatencyRecorder
from repro.units import KB, MB, PAGE_SIZE


class SQLiteDB:
    """One database: a table file, a WAL, and a checkpointer thread."""

    def __init__(
        self,
        os,
        name: str = "sqlite",
        table_bytes: int = 256 * MB,
        checkpoint_threshold: int = 1000,
        wal_record: int = 4 * KB,
        seed: int = 0,
    ):
        self.os = os
        self.name = name
        self.table_bytes = table_bytes
        self.checkpoint_threshold = checkpoint_threshold
        self.wal_record = wal_record
        self.rng = random.Random(seed)
        self.worker = os.spawn(f"{name}-worker")
        self.checkpoint_task = os.spawn(f"{name}-checkpointer")
        self.table = None
        self.wal = None
        self._dirty_rows = set()
        self._checkpoint_signal = os.env.event()
        self._stop = False
        self.latency = LatencyRecorder(f"{name}-txn")
        self.checkpoints = 0

    # -- setup ------------------------------------------------------------

    def setup(self):
        """Generator: create and prefill the table, create the WAL."""
        from repro.workloads.generators import prefill_file

        self.table = yield from prefill_file(
            self.os, self.worker, f"/{self.name}.db", self.table_bytes
        )
        self.wal = yield from self.os.creat(self.worker, f"/{self.name}.wal")
        # The checkpointer owns its own descriptor on the table, so its
        # writes and fsyncs are attributed to the checkpoint task.
        self.table_ckpt = yield from self.os.open(
            self.checkpoint_task, f"/{self.name}.db"
        )
        self.os.env.process(self._checkpointer(), name=f"{self.name}-ckpt")

    # -- the transaction path ------------------------------------------------

    def update_transaction(self):
        """Generator: one row update; records its latency."""
        env = self.os.env
        start = env.now
        # Read the row's page.
        page = self.rng.randrange(0, self.table_bytes // PAGE_SIZE)
        yield from self.table.pread(page * PAGE_SIZE, PAGE_SIZE)
        # Append the WAL record and make it durable.
        yield from self.wal.append(self.wal_record)
        yield from self.wal.fsync()
        self.latency.record(env.now, env.now - start)
        # Track table dirtiness; trip the checkpointer at the threshold.
        self._dirty_rows.add(page)
        if len(self._dirty_rows) >= self.checkpoint_threshold:
            if not self._checkpoint_signal.triggered:
                self._checkpoint_signal.succeed()

    def run_updates(self, duration: float, think: float = 0.0):
        """Generator: issue update transactions for *duration* seconds."""
        env = self.os.env
        end = env.now + duration
        while env.now < end:
            yield from self.update_transaction()
            if think > 0:
                yield env.timeout(think)
        self._stop = True
        if not self._checkpoint_signal.triggered:
            self._checkpoint_signal.succeed()
        return self.latency

    # -- checkpointing ----------------------------------------------------------

    def _checkpointer(self):
        env = self.os.env
        while True:
            yield self._checkpoint_signal
            self._checkpoint_signal = env.event()
            if self._stop:
                return
            rows, self._dirty_rows = self._dirty_rows, set()
            if not rows:
                continue
            # Copy each dirty row's page into the table file...
            for page in sorted(rows):
                yield from self.table_ckpt.pwrite(page * PAGE_SIZE, PAGE_SIZE)
            # ...make the table durable, then the WAL is logically reset.
            yield from self.table_ckpt.fsync()
            self.checkpoints += 1
