"""Figure 21: HDFS isolation via local Split-Token schedulers.

A throttled group and an unthrottled group (four writers each) write
HDFS files across seven workers with 3× replication.  Lower local
rate caps give the unthrottled group more throughput; the throttled
group's total falls short of the (cap/3)·7 upper bound because random
block placement leaves tokens unused on cold workers — and a smaller
HDFS block size closes most of that gap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.hdfs import HDFSCluster
from repro.metrics.recorders import ThroughputTracker
from repro.schedulers import make_scheduler
from repro.sim import Environment
from repro.units import GB, MB


def run_cell(
    rate_cap: float,
    block_size: int = 64 * MB,
    duration: float = 20.0,
    workers: int = 7,
    writers_per_group: int = 4,
    seed: int = 0,
) -> Dict:
    env = Environment()
    cluster = HDFSCluster(
        env,
        workers=workers,
        replication=3,
        block_size=block_size,
        scheduler_factory=lambda: make_scheduler("split-token"),
        seed=seed,
    )
    cluster.set_account_limit("throttled", rate_cap)

    throttled = ThroughputTracker("throttled")
    unthrottled = ThroughputTracker("unthrottled")
    file_size = 16 * GB  # effectively unbounded; duration stops us
    for i in range(writers_per_group):
        env.process(
            cluster.write_file("throttled", f"/t{i}", file_size, duration=duration, tracker=throttled)
        )
        env.process(
            cluster.write_file("free", f"/u{i}", file_size, duration=duration, tracker=unthrottled)
        )
    env.run(until=duration)

    upper_bound = (rate_cap / 3) * workers
    return {
        "rate_cap_mb": rate_cap / MB,
        "block_size_mb": block_size / MB,
        "throttled_mbps": throttled.rate(until=env.now) / MB,
        "unthrottled_mbps": unthrottled.rate(until=env.now) / MB,
        "upper_bound_mbps": upper_bound / MB,
        "bound_utilization": (throttled.rate(until=env.now) / upper_bound) if upper_bound else 0.0,
    }


def run(
    rate_caps: List[float] = (4 * MB, 8 * MB, 16 * MB, 32 * MB),
    block_sizes: List[int] = (64 * MB, 16 * MB),
    **kwargs,
) -> Dict:
    results: Dict = {"rate_caps_mb": [cap / MB for cap in rate_caps]}
    for block_size in block_sizes:
        key = f"block_{block_size // MB}mb"
        results[key] = [run_cell(cap, block_size=block_size, **kwargs) for cap in rate_caps]
    return results
