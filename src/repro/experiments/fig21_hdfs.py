"""Figure 21: HDFS isolation via local Split-Token schedulers.

A throttled group and an unthrottled group (four writers each) write
HDFS files across seven workers with 3× replication.  Lower local
rate caps give the unthrottled group more throughput; the throttled
group's total falls short of the (cap/3)·7 upper bound because random
block placement leaves tokens unused on cold workers — and a smaller
HDFS block size closes most of that gap.

This figure runs on the shard-aware simulation core
(:mod:`repro.sim.shard`): the seven workers are a
:class:`~repro.config.ClusterConfig` fleet, the writer groups are
tenant contracts, and each writer is a :class:`StreamSpec` driven
through a gateway node.  Under ``--shards 1`` the whole fleet shares
one event loop (the classic semantics); any higher shard count
partitions it across processes with bit-identical results.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import ClusterConfig, TenantContract
from repro.sim.shard import StreamSpec, run_cluster
from repro.units import GB, MB


def run_cell(
    rate_cap: float,
    block_size: int = 64 * MB,
    duration: float = 20.0,
    workers: int = 7,
    writers_per_group: int = 4,
    seed: int = 0,
    shards: Optional[int] = None,
) -> Dict:
    """One (rate cap, block size) point of the figure."""
    cluster = ClusterConfig(
        nodes=workers,
        replication=3,
        block_size=block_size,
        tenants=(
            TenantContract("throttled", rate_per_node=rate_cap),
            TenantContract("free"),
        ),
        seed=seed,
    )
    file_size = 16 * GB  # effectively unbounded; duration stops us
    streams = []
    for i in range(writers_per_group):
        streams.append(StreamSpec(2 * i, "throttled", i % workers, file_size))
        streams.append(StreamSpec(2 * i + 1, "free", (i + writers_per_group) % workers, file_size))
    result = run_cluster(cluster, streams, duration, shards=shards)

    throttled = result["tenants"]["throttled"]["mbps"] * MB
    unthrottled = result["tenants"]["free"]["mbps"] * MB
    upper_bound = (rate_cap / 3) * workers
    return {
        "rate_cap_mb": rate_cap / MB,
        "block_size_mb": block_size / MB,
        "throttled_mbps": throttled / MB,
        "unthrottled_mbps": unthrottled / MB,
        "upper_bound_mbps": upper_bound / MB,
        "bound_utilization": (throttled / upper_bound) if upper_bound else 0.0,
    }


def cells(
    rate_caps: List[float] = (4 * MB, 8 * MB, 16 * MB, 32 * MB),
    block_sizes: List[int] = (64 * MB, 16 * MB),
    **kwargs,
) -> List:
    """One cell per (block size, rate cap) point, in run() order."""
    out = []
    for block_size in block_sizes:
        for cap in rate_caps:
            label = f"block{block_size // MB}mb/cap{cap / MB:g}"
            cell_kwargs = dict(kwargs, rate_cap=cap, block_size=block_size)
            out.append((label, "run_cell", cell_kwargs))
    return out


def merge(
    pairs: List,
    rate_caps: List[float] = (4 * MB, 8 * MB, 16 * MB, 32 * MB),
    block_sizes: List[int] = (64 * MB, 16 * MB),
    **_kwargs,
) -> Dict:
    """Reassemble cell results into run()'s output shape."""
    results: Dict = {"rate_caps_mb": [cap / MB for cap in rate_caps]}
    flat = [result for _label, result in pairs]
    cursor = 0
    for block_size in block_sizes:
        key = f"block_{block_size // MB}mb"
        results[key] = flat[cursor : cursor + len(rate_caps)]
        cursor += len(rate_caps)
    return results


def run(
    rate_caps: List[float] = (4 * MB, 8 * MB, 16 * MB, 32 * MB),
    block_sizes: List[int] = (64 * MB, 16 * MB),
    **kwargs,
) -> Dict:
    """The whole figure, sequentially (the runner fans out cells())."""
    pairs = [
        (label, run_cell(**cell_kwargs))
        for label, _func, cell_kwargs in cells(rate_caps, block_sizes, **kwargs)
    ]
    return merge(pairs, rate_caps, block_sizes)
