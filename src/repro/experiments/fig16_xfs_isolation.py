"""Figure 16: Split-Token on partially-integrated XFS, data-intensive.

XFS only has part (a) of the split integration (generic buffer
tagging), but data-dominated workloads need nothing more: isolation
holds (the paper measures A's deviation at 12.8 MB).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.fig06_scs_isolation import DEFAULT_RUN_SIZES
from repro.experiments.isolation import run_sweep
from repro.fs.xfs import XFS
from repro.units import MB


def run(
    run_sizes: List[int] = DEFAULT_RUN_SIZES,
    rate_limit: float = 10 * MB,
    **kwargs,
) -> Dict:
    kwargs.setdefault("fs_class", XFS)
    return run_sweep("split", list(run_sizes), rate_limit, **kwargs)
