"""Figure 16: Split-Token on partially-integrated XFS, data-intensive.

XFS only has part (a) of the split integration (generic buffer
tagging), but data-dominated workloads need nothing more: isolation
holds (the paper measures A's deviation at 12.8 MB).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.fig06_scs_isolation import DEFAULT_RUN_SIZES
from repro.experiments.isolation import merge_sweep, run_sweep, sweep_cells
from repro.fs.xfs import XFS
from repro.units import MB


def cells(run_sizes: List[int] = DEFAULT_RUN_SIZES, rate_limit: float = 10 * MB, **kwargs):
    kwargs.setdefault("fs_class", XFS)
    return sweep_cells("split", list(run_sizes), rate_limit, **kwargs)


def merge(pairs, run_sizes: List[int] = DEFAULT_RUN_SIZES, rate_limit: float = 10 * MB, **kwargs) -> Dict:
    return merge_sweep(pairs, list(run_sizes), modes=kwargs.get("modes", ("read", "write")))


def run(
    run_sizes: List[int] = DEFAULT_RUN_SIZES,
    rate_limit: float = 10 * MB,
    **kwargs,
) -> Dict:
    kwargs.setdefault("fs_class", XFS)
    return run_sweep("split", list(run_sizes), rate_limit, **kwargs)
