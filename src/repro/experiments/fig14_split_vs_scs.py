"""Figure 14: Split-Token vs SCS-Token over six B workloads.

Left panel: A's slowdown (isolation) — Split near the target always,
SCS way off for random patterns.  Right panel: B's own throughput —
Split is much faster for memory-bound workloads (2.3× for read-mem,
~837× for write-mem) because cache hits and buffer overwrites are not
billed as I/O.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.isolation import SIX_WORKLOADS, run_pair
from repro.units import MB


def cells(
    rate_limit: float = 1 * MB,
    duration: float = 15.0,
    workloads=SIX_WORKLOADS,
    **kwargs,
):
    """Parallelisable cells: one run_pair per (scheduler, B workload)."""
    return [
        (f"{kind}/{workload}", "repro.experiments.isolation:run_pair",
         dict(scheduler_kind=kind, b_workload=workload, rate_limit=rate_limit,
              duration=duration, **kwargs))
        for kind in ("scs", "split")
        for workload in workloads
    ]


def merge(
    pairs,
    rate_limit: float = 1 * MB,
    duration: float = 15.0,
    workloads=SIX_WORKLOADS,
    **kwargs,
) -> Dict:
    results: Dict = {"workloads": list(workloads), "rate_limit_mb": rate_limit / MB}
    ordered = iter(pairs)
    for kind in ("scs", "split"):
        a_series, b_series = [], []
        for _workload in workloads:
            cell = next(ordered)[1]
            a_series.append(cell["a_mbps"])
            b_series.append(cell["b_mbps"])
        results[f"{kind}_a_mbps"] = a_series
        results[f"{kind}_b_mbps"] = b_series

    # Headline ratios for the memory-bound workloads.
    def ratio(workload: str) -> float:
        index = results["workloads"].index(workload)
        scs = results["scs_b_mbps"][index]
        split = results["split_b_mbps"][index]
        return split / scs if scs > 0 else float("inf")

    results["read_mem_speedup"] = ratio("read-mem")
    results["write_mem_speedup"] = ratio("write-mem")
    return results


def run(
    rate_limit: float = 1 * MB,
    duration: float = 15.0,
    workloads=SIX_WORKLOADS,
    **kwargs,
) -> Dict:
    """Returns per-workload A and B throughput for both schedulers."""
    cell_list = cells(rate_limit=rate_limit, duration=duration, workloads=workloads, **kwargs)
    pairs = [(label, run_pair(**cell_kwargs)) for label, _func, cell_kwargs in cell_list]
    return merge(pairs, rate_limit=rate_limit, duration=duration, workloads=workloads, **kwargs)
