"""Figure 5: under Block-Deadline, A's one-block fsync latency depends
on how much data B flushes per fsync — deadlines on block requests
cannot cut the dependency chain through the filesystem.

Thread A appends 4 KB + fsync in a loop; thread B writes N random
bytes then fsyncs, for N from 16 KB to 4 MB.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import LatencyRecorder
from repro.schedulers import make_scheduler
from repro.units import KB, MB, PAGE_SIZE
from repro.workloads import fsync_appender, prefill_file


def _big_fsync_writer(os_, task, path, nbytes, duration, rng):
    """B: N random bytes + fsync, repeatedly."""
    env = os_.env
    handle = yield from os_.open(task, path)
    size = handle.inode.size
    end = env.now + duration
    while env.now < end:
        for _ in range(max(1, nbytes // PAGE_SIZE)):
            offset = rng.randrange(0, size // PAGE_SIZE) * PAGE_SIZE
            yield from handle.pwrite(offset, PAGE_SIZE)
        yield from handle.fsync()
        yield env.timeout(0.05)


def run(
    sizes: List[int] = (16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB),
    duration: float = 20.0,
    block_deadline: float = 0.02,
    b_file: int = 64 * MB,
    seed: int = 0,
) -> Dict:
    """Returns A's mean/p95 fsync latency for each B flush size."""
    results = {"sizes": list(sizes), "mean_ms": [], "p95_ms": []}
    for nbytes in sizes:
        scheduler = make_scheduler(
            "block-deadline", read_deadline=block_deadline, write_deadline=block_deadline
        )
        env, machine = build_stack(StackConfig(scheduler=scheduler, device="hdd"))
        setup = machine.spawn("setup")

        def setup_proc():
            yield from prefill_file(machine, setup, "/blog", 4 * KB)
            yield from prefill_file(machine, setup, "/bdata", b_file)

        drive(env, setup_proc())

        a = machine.spawn("A-small")
        b = machine.spawn("B-big")
        recorder = LatencyRecorder("A-fsync")
        env.process(fsync_appender(machine, a, "/blog", duration, recorder=recorder))
        env.process(
            _big_fsync_writer(machine, b, "/bdata", nbytes, duration, random.Random(seed))
        )
        run_for(env, duration)

        results["mean_ms"].append(1000 * recorder.mean())
        results["p95_ms"].append(1000 * recorder.percentile(95))
    results["latency_grows_with_b"] = results["mean_ms"][-1] > results["mean_ms"][0]
    return results
