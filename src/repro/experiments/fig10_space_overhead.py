"""Figure 10: memory overhead of cause tags vs the dirty-ratio setting.

The paper instruments kmalloc/kfree on an HDFS worker under a
write-heavy workload: average overhead 14.5 MB (0.2% of 8 GB RAM) at
the default dirty ratio, max 52.2 MB at a 50% dirty ratio.  Tag
overhead tracks the number of dirty buffers, so it scales with the
dirty ratio.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.writeback import WritebackConfig
from repro.config import StackConfig
from repro.experiments.common import build_stack, run_for
from repro.units import GB, MB
from repro.workloads import sequential_writer


def run(
    dirty_ratios: List[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    duration: float = 30.0,
    writers: int = 4,
    memory_bytes: int = 1 * GB,
) -> Dict:
    """Write-heavy workload per dirty-ratio; reports tag memory use."""
    results = {
        "dirty_ratios": list(dirty_ratios),
        "avg_overhead_mb": [],
        "max_overhead_mb": [],
        "avg_pct_of_ram": [],
    }
    for ratio in dirty_ratios:
        config = WritebackConfig(
            dirty_background_ratio=ratio / 2,
            dirty_ratio=ratio,
        )
        env, machine = build_stack(
            StackConfig(
                scheduler="split-token",
                device="hdd",
                memory_bytes=memory_bytes,
                writeback=config,
            )
        )
        for i in range(writers):
            task = machine.spawn(f"hdfs-writer{i}")
            env.process(sequential_writer(machine, task, f"/blk{i}", duration, chunk=1 * MB))

        samples = []

        def sampler():
            while env.now < duration:
                yield env.timeout(0.5)
                samples.append(machine.tags.bytes_allocated)

        env.process(sampler())
        run_for(env, duration)

        avg = sum(samples) / len(samples) if samples else 0.0
        results["avg_overhead_mb"].append(avg / MB)
        results["max_overhead_mb"].append(machine.tags.max_bytes_allocated / MB)
        results["avg_pct_of_ram"].append(100.0 * avg / memory_bytes)
    results["overhead_grows_with_ratio"] = (
        results["max_overhead_mb"][-1] > results["max_overhead_mb"][0]
    )
    return results
