"""Figure 6: SCS-Token fails to isolate A from B.

B is throttled to 10 MB/s but SCS charges nominal syscall bytes, so
B's *random reads* (each 4 KB costing ~10 ms of disk) are massively
under-billed and crush A, while B's buffered writes are over-billed.
The paper reports A's throughput standard deviation of ~41 MB across
the 14 workloads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.isolation import merge_sweep, run_sweep, sweep_cells
from repro.units import KB, MB

DEFAULT_RUN_SIZES = (4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB)


def cells(run_sizes: List[int] = DEFAULT_RUN_SIZES, rate_limit: float = 10 * MB, **kwargs):
    return sweep_cells("scs", list(run_sizes), rate_limit, **kwargs)


def merge(pairs, run_sizes: List[int] = DEFAULT_RUN_SIZES, rate_limit: float = 10 * MB, **kwargs) -> Dict:
    return merge_sweep(pairs, list(run_sizes), modes=kwargs.get("modes", ("read", "write")))


def run(
    run_sizes: List[int] = DEFAULT_RUN_SIZES,
    rate_limit: float = 10 * MB,
    **kwargs,
) -> Dict:
    return run_sweep("scs", list(run_sizes), rate_limit, **kwargs)
