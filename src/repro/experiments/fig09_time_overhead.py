"""Figure 9: the split framework imposes no noticeable time overhead.

No-op schedulers in the block framework vs the split framework, with
1–100 threads doing I/O to an SSD; total throughput should match.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import ThroughputTracker
from repro.units import KB, MB, PAGE_SIZE
from repro.workloads import prefill_file


def _random_io_thread(machine, task, path, duration, tracker, rng):
    env = machine.env
    handle = yield from machine.open(task, path)
    size = handle.inode.size
    end = env.now + duration
    while env.now < end:
        offset = rng.randrange(0, size // PAGE_SIZE) * PAGE_SIZE
        if rng.random() < 0.5:
            n = yield from handle.pread(offset, 16 * KB)
        else:
            n = yield from handle.pwrite(offset, 16 * KB)
        tracker.add(n, env.now)


def run(thread_counts: List[int] = (1, 10, 100), duration: float = 10.0) -> Dict:
    results = {"threads": list(thread_counts), "block_mbps": [], "split_mbps": []}
    for key, scheduler_name in (("block_mbps", "noop"), ("split_mbps", "split-noop")):
        for threads in thread_counts:
            env, machine = build_stack(
                StackConfig(scheduler=scheduler_name, device="ssd", memory_bytes=256 * MB)
            )
            setup = machine.spawn("setup")

            def setup_proc():
                yield from prefill_file(machine, setup, "/pool", 512 * MB)

            drive(env, setup_proc())
            tracker = ThroughputTracker()
            tracker.start(env.now)
            for i in range(threads):
                task = machine.spawn(f"io{i}")
                env.process(
                    _random_io_thread(
                        machine, task, "/pool", duration, tracker, random.Random(i)
                    )
                )
            run_for(env, duration)
            results[key].append(tracker.rate(until=env.now) / MB)
    overheads = [
        (block - split) / block if block > 0 else 0.0
        for block, split in zip(results["block_mbps"], results["split_mbps"])
    ]
    results["relative_overhead"] = overheads
    return results
