"""Figure 15: Split-Token scalability with many throttled threads.

A's throughput is steady no matter how many B threads share the I/O
limit — for *disk* workloads.  Memory-bound and pure-spin B threads
eventually hurt A through the CPU, which an I/O scheduler cannot fix
(the paper's closing observation on CPU scheduling).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import ThroughputTracker
from repro.schedulers import make_scheduler
from repro.units import KB, MB
from repro.workloads import (
    prefill_file,
    run_pattern_reader,
    sequential_overwriter,
    sequential_reader,
    spin_loop,
)

WORKLOADS = ("read-seq", "read-mem", "write-mem", "spin")


def _b_thread(machine, task, workload: str, duration: float):
    if workload == "read-seq":
        return run_pattern_reader(machine, task, "/bdata", 1 * MB, duration)
    if workload == "read-mem":
        return sequential_reader(machine, task, "/bsmall", duration, chunk=16 * KB)
    if workload == "write-mem":
        return sequential_overwriter(machine, task, "/bsmall", duration, region=2 * MB)
    if workload == "spin":
        return spin_loop(machine, task, duration)
    raise ValueError(f"unknown workload {workload!r}")


def run_cell(
    workload: str,
    b_threads: int,
    duration: float = 6.0,
    rate_limit: float = 1 * MB,
    cores: int = 2,
) -> Dict:
    scheduler = make_scheduler("split-token")
    # Memory is small relative to B's file so "disk" workloads really
    # hit the disk (in the paper: a 10 GB file vs 8 GB of RAM).
    env, machine = build_stack(
        StackConfig(scheduler=scheduler, device="hdd", memory_bytes=256 * MB, cores=cores)
    )
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", 64 * MB)
        yield from prefill_file(machine, setup, "/bdata", 768 * MB)
        yield from prefill_file(machine, setup, "/bsmall", 4 * MB, drop=False)

    drive(env, setup_proc())
    a = machine.spawn("A")
    b_tasks = [machine.spawn(f"B{i}") for i in range(b_threads)]
    if workload != "spin":
        scheduler.set_limit(b_tasks, rate_limit)  # one shared limit

    tracker = ThroughputTracker()
    env.process(sequential_reader(machine, a, "/a", duration, chunk=1 * MB, tracker=tracker, cold=True))
    for task in b_tasks:
        env.process(_b_thread(machine, task, workload, duration))
    run_for(env, duration)
    return {"a_mbps": tracker.rate(until=env.now) / MB}


def cells(thread_counts: List[int] = (1, 32, 256), workloads=WORKLOADS, **kwargs):
    """Parallelisable cells: one simulation per (workload, thread count)."""
    return [
        (f"{workload}/{count}", "run_cell",
         dict(workload=workload, b_threads=count, **kwargs))
        for workload in workloads
        for count in thread_counts
    ]


def merge(pairs, thread_counts: List[int] = (1, 32, 256), workloads=WORKLOADS, **kwargs) -> Dict:
    results: Dict = {"threads": list(thread_counts)}
    ordered = iter(pairs)
    for workload in workloads:
        results[workload] = [next(ordered)[1]["a_mbps"] for _count in thread_counts]
    return results


def run(
    thread_counts: List[int] = (1, 32, 256),
    workloads=WORKLOADS,
    **kwargs,
) -> Dict:
    cell_list = cells(thread_counts=thread_counts, workloads=workloads, **kwargs)
    pairs = [(label, run_cell(**cell_kwargs)) for label, _func, cell_kwargs in cell_list]
    return merge(pairs, thread_counts=thread_counts, workloads=workloads, **kwargs)
