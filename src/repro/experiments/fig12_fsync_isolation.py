"""Figure 12: fsync latency isolation, Block-Deadline vs Split-Deadline.

Thread A appends 4 KB + fsync (database log); thread B writes 1024
random blocks then fsyncs (database checkpoint).  With Block-Deadline,
A's fsyncs during B's floods take ~10× their goal; Split-Deadline
defers B's fsync, drains its data asynchronously, and keeps A near its
deadline.  Run on both HDD and SSD (Table 3 deadline settings).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import LatencyRecorder
from repro.schedulers import make_scheduler
from repro.units import KB, MB, PAGE_SIZE
from repro.workloads import fsync_appender, prefill_file

#: Table 3: deadline settings (seconds).
TABLE3 = {
    "hdd": {"a_fsync": 0.1, "b_fsync": 5.0, "block_write": 0.02, "block_read": 0.05},
    "ssd": {"a_fsync": 0.02, "b_fsync": 1.0, "block_write": 0.005, "block_read": 0.01},
}


def _checkpointer(os_, task, path, blocks, duration, recorder, rng, pause):
    """B: write *blocks* random blocks, fsync, pause, repeat."""
    env = os_.env
    handle = yield from os_.open(task, path)
    size = handle.inode.size
    end = env.now + duration
    while env.now < end:
        for _ in range(blocks):
            offset = rng.randrange(0, size // PAGE_SIZE) * PAGE_SIZE
            yield from handle.pwrite(offset, PAGE_SIZE)
        start = env.now
        yield from handle.fsync()
        recorder.record(env.now, env.now - start)
        yield env.timeout(pause)


def run(
    scheduler: str = "split",
    device: str = "hdd",
    duration: float = 30.0,
    b_blocks: int = 1024,
    b_pause: float = 2.0,
    b_file: int = 128 * MB,
    seed: int = 0,
) -> Dict:
    settings = TABLE3[device]
    if scheduler == "block":
        sched = make_scheduler(
            "block-deadline",
            read_deadline=settings["block_read"], write_deadline=settings["block_write"],
        )
    elif scheduler == "split":
        sched = make_scheduler(
            "split-deadline",
            read_deadline=settings["block_read"], fsync_deadline=settings["a_fsync"],
        )
    else:
        raise ValueError(f"scheduler must be 'block' or 'split', got {scheduler!r}")

    env, machine = build_stack(StackConfig(scheduler=sched, device=device))
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/log", 4 * KB)
        yield from prefill_file(machine, setup, "/db", b_file)

    drive(env, setup_proc())

    a = machine.spawn("A-logger")
    b = machine.spawn("B-checkpointer")
    if scheduler == "split":
        sched.set_fsync_deadline(a, settings["a_fsync"])
        sched.set_fsync_deadline(b, settings["b_fsync"])

    a_rec, b_rec = LatencyRecorder("A"), LatencyRecorder("B")
    env.process(fsync_appender(machine, a, "/log", duration, recorder=a_rec))
    env.process(
        _checkpointer(machine, b, "/db", b_blocks, duration, b_rec, random.Random(seed), b_pause)
    )
    run_for(env, duration)

    goal = settings["a_fsync"]
    return {
        "scheduler": scheduler,
        "device": device,
        "a_goal_ms": 1000 * goal,
        "a_mean_ms": 1000 * a_rec.mean() if a_rec.count else None,
        "a_p95_ms": 1000 * a_rec.percentile(95) if a_rec.count else None,
        "a_max_ms": 1000 * a_rec.max() if a_rec.count else None,
        "a_over_2x_goal": a_rec.over(2 * goal),
        "a_count": a_rec.count,
        "b_count": b_rec.count,
        "b_mean_ms": 1000 * b_rec.mean() if b_rec.count else None,
        "a_samples": [(t, 1000 * lat) for t, lat in a_rec.samples],
    }


def cells(device: str = "hdd", **kwargs):
    """Parallelisable cells: one full run per scheduler."""
    return [
        (name, "run", dict(scheduler=name, device=device, **kwargs))
        for name in ("block", "split")
    ]


def merge(pairs, **kwargs) -> Dict[str, Dict]:
    return dict(pairs)


def run_comparison(device: str = "hdd", **kwargs) -> Dict[str, Dict]:
    return merge(
        [(label, run(**cell_kwargs)) for label, _func, cell_kwargs in cells(device=device, **kwargs)]
    )
