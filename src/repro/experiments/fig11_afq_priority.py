"""Figure 11: AFQ vs CFQ across four priority workloads.

(a) sequential reads — both respect priorities;
(b) async sequential writes — CFQ flat (write delegation), AFQ fair;
(c) sync random writes + fsync — CFQ flat (journal entanglement), AFQ fair;
(d) memory overwrites — both fast, no fairness goal (no disk contention).
"""

from __future__ import annotations

from typing import Dict

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import ThroughputTracker, deviation_from_ideal
from repro.schedulers import make_scheduler
from repro.units import GB, MB
from repro.workloads import (
    prefill_file,
    random_writer_fsync,
    sequential_overwriter,
    sequential_reader,
    sequential_writer,
)

IDEAL = {p: 8 - p for p in range(8)}


def _make(scheduler: str):
    if scheduler not in ("cfq", "afq"):
        raise ValueError(f"scheduler must be 'cfq' or 'afq', got {scheduler!r}")
    return make_scheduler(scheduler)


def _collect(trackers, env) -> Dict:
    rates = {p: sum(t.rate(until=env.now) for t in ts) / MB for p, ts in trackers.items()}
    total = sum(rates.values())
    return {
        "throughput_mbps": rates,
        "total_mbps": total,
        "shares_pct": {p: 100 * r / total if total else 0.0 for p, r in rates.items()},
        "deviation_pct": deviation_from_ideal(rates, IDEAL) if total else None,
    }


def run_read(scheduler: str, duration: float = 20.0, file_size: int = 64 * MB) -> Dict:
    """(a) eight priority readers, own files, sequential."""
    env, machine = build_stack(StackConfig(scheduler=_make(scheduler), device="hdd", memory_bytes=1 * GB))
    setup = machine.spawn("setup")

    def setup_proc():
        for p in range(8):
            yield from prefill_file(machine, setup, f"/r{p}", file_size)

    drive(env, setup_proc())
    trackers = {}
    for prio in range(8):
        task = machine.spawn(f"r{prio}", priority=prio)
        tracker = ThroughputTracker()
        trackers[prio] = [tracker]
        env.process(
            sequential_reader(machine, task, f"/r{prio}", duration, chunk=1 * MB, tracker=tracker, cold=True)
        )
    run_for(env, duration)
    return _collect(trackers, env)


def run_async_write(scheduler: str, duration: float = 20.0) -> Dict:
    """(b) eight priority writers, buffered sequential writes."""
    env, machine = build_stack(StackConfig(scheduler=_make(scheduler), device="hdd", memory_bytes=1 * GB))
    trackers = {}
    for prio in range(8):
        task = machine.spawn(f"w{prio}", priority=prio)
        tracker = ThroughputTracker()
        trackers[prio] = [tracker]
        env.process(
            sequential_writer(machine, task, f"/w{prio}", duration, chunk=1 * MB, tracker=tracker)
        )
    run_for(env, duration)
    return _collect(trackers, env)


def run_sync_write(
    scheduler: str, duration: float = 20.0, threads_per_priority: int = 2, file_size: int = 16 * MB
) -> Dict:
    """(c) sync random writes + fsync per thread (journal pressure)."""
    env, machine = build_stack(StackConfig(scheduler=_make(scheduler), device="hdd", memory_bytes=1 * GB))
    trackers = {p: [] for p in range(8)}
    for prio in range(8):
        for i in range(threads_per_priority):
            task = machine.spawn(f"s{prio}.{i}", priority=prio)
            tracker = ThroughputTracker()
            trackers[prio].append(tracker)
            env.process(
                random_writer_fsync(
                    machine, task, f"/s{prio}.{i}", duration + 5, file_size=file_size, tracker=tracker
                )
            )
    run_for(env, duration)
    return _collect(trackers, env)


def run_memory(scheduler: str, duration: float = 10.0) -> Dict:
    """(d) overwriting 4 MB in cache: no disk contention, both fast."""
    env, machine = build_stack(StackConfig(scheduler=_make(scheduler), device="hdd", memory_bytes=1 * GB))
    trackers = {}
    for prio in range(8):
        task = machine.spawn(f"m{prio}", priority=prio)
        tracker = ThroughputTracker()
        trackers[prio] = [tracker]
        env.process(
            sequential_overwriter(machine, task, f"/m{prio}", duration, region=4 * MB, tracker=tracker)
        )
    run_for(env, duration)
    result = _collect(trackers, env)
    result["deviation_pct"] = None  # no fairness goal (paper: no goal line)
    return result


PANELS = {
    "read": run_read,
    "async_write": run_async_write,
    "sync_write": run_sync_write,
    "memory": run_memory,
}


def run(panel: str, scheduler: str, **kwargs) -> Dict:
    try:
        runner = PANELS[panel]
    except KeyError:
        raise ValueError(f"panel must be one of {sorted(PANELS)}") from None
    return runner(scheduler, **kwargs)


def cells(**kwargs):
    """Parallelisable cells: one run per (panel, scheduler) pair."""
    return [
        (f"{panel}:{scheduler}", "run", dict(panel=panel, scheduler=scheduler, **kwargs))
        for panel in PANELS
        for scheduler in ("cfq", "afq")
    ]


def merge(pairs, **kwargs) -> Dict[str, Dict[str, Dict]]:
    merged: Dict[str, Dict[str, Dict]] = {}
    for label, result in pairs:
        panel, scheduler = label.split(":")
        merged.setdefault(panel, {})[scheduler] = result
    return merged


def run_comparison(**kwargs) -> Dict[str, Dict[str, Dict]]:
    return merge([(label, run(**cell_kwargs)) for label, _func, cell_kwargs in cells(**kwargs)])
