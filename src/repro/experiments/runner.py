"""Parallel experiment runner: fan independent cells across cores.

Every figure of the paper decomposes into *cells* — independent
(workload, scheduler, parameter) simulations that share nothing but
code.  Each cell builds its own :class:`~repro.sim.core.Environment`
and seeds its own RNG streams, so cells can run in any order, in any
process, and produce byte-identical results.

An experiment module opts into cell-level fan-out by defining::

    def cells(**overrides):
        # ordered list of (label, func, kwargs); func is an attribute
        # name in this module, or "package.module:name" for helpers
        # that live elsewhere (e.g. the shared isolation sweep).
        return [("cfq", "run", {"scheduler": "cfq"}), ...]

    def merge(pairs, **overrides):
        # pairs is [(label, result), ...] in cells() order; must
        # rebuild exactly what run()/run_comparison() would return.
        return dict(pairs)

Modules without ``cells()`` run as a single opaque cell (the whole
``run_comparison``/``run`` call), which still parallelises across
experiments in ``run-all``.

Determinism rules:

- results are merged in **cell declaration order**, never completion
  order, so ``--jobs 1`` and ``--jobs N`` emit identical JSON;
- the session :class:`~repro.faults.FaultPlan` is re-installed inside
  every worker process (``--fault-*`` flags apply under fan-out), and
  each cell drains its own fault summaries, which are concatenated in
  cell order — again matching the sequential order of stack creation.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.experiments import EXPERIMENTS, common


class Cell(NamedTuple):
    """One schedulable unit of an experiment."""

    experiment: str  # experiment id, e.g. "fig15"
    label: str  # human-readable cell key, e.g. "read-seq/32"
    module: str  # module owning the experiment
    func: str  # attribute in *module*, or "pkg.mod:name"
    kwargs: Dict[str, Any]


class ExperimentResult(NamedTuple):
    """Merged outcome of one experiment's cells."""

    result: Any  # what run()/run_comparison() would have returned
    faults: List[Dict]  # fault summaries, in stack-creation order
    seconds: float  # summed cell wall-clock (serial-equivalent time)
    spans: List[Dict] = []  # lifecycle spans (with trace=True), cell order


def call_cell(default_module: str, func: str, kwargs: Dict[str, Any]) -> Any:
    """Resolve and invoke a cell function by name."""
    if ":" in func:
        module_name, func_name = func.split(":", 1)
    else:
        module_name, func_name = default_module, func
    module = importlib.import_module(module_name)
    return getattr(module, func_name)(**kwargs)


def experiment_cells(key: str, overrides: Optional[Dict[str, Any]] = None) -> List[Cell]:
    """The ordered cell list for one experiment id."""
    try:
        module_name, _title = EXPERIMENTS[key]
    except KeyError:
        raise ValueError(f"unknown experiment {key!r}") from None
    module = importlib.import_module(module_name)
    overrides = dict(overrides or {})
    cells_fn = getattr(module, "cells", None)
    if cells_fn is None:
        func = "run_comparison" if hasattr(module, "run_comparison") else "run"
        return [Cell(key, key, module_name, func, overrides)]
    return [
        Cell(key, label, module_name, func, kwargs)
        for label, func, kwargs in cells_fn(**overrides)
    ]


def merge_cell_results(
    key: str, overrides: Optional[Dict[str, Any]], cells: List[Cell], results: List[Any]
) -> Any:
    """Reassemble cell results into the experiment's canonical output."""
    module_name, _title = EXPERIMENTS[key]
    module = importlib.import_module(module_name)
    merge_fn = getattr(module, "merge", None)
    if merge_fn is None:
        if len(results) != 1:  # pragma: no cover - cells() without merge()
            raise RuntimeError(f"{key} produced {len(results)} cells but defines no merge()")
        return results[0]
    pairs = list(zip([cell.label for cell in cells], results))
    return merge_fn(pairs, **(overrides or {}))


def _worker_init(
    fault_spec,
    trace: bool = False,
    queue_depth: int = 1,
    hedge: bool = False,
    fast_forward: bool = False,
    shards: int = 1,
    sanitize: bool = False,
) -> None:
    """Process-pool initialiser: re-install the session fault plan,
    trace flag, block-layer queue depth, hedge flag, fast-forward
    flag, and shard count.

    Workers are fresh interpreters (or forks taken before any plan was
    installed), so without this the ``--fault-*``, ``--trace``,
    ``--queue-depth``, ``--hedge``, ``--fast-forward``, ``--shards``
    and ``--sanitize`` flags would silently stop applying under
    ``--jobs N``.  ``sanitize`` is only ever *raised* here (and only
    lowered by the caller that raised it): a REPRO_SANITIZE-seeded
    session default must survive cells that don't pass the flag.  Cells whose
    kwargs carry a serialized :class:`~repro.config.StackConfig`
    re-inflate it themselves via ``StackConfig.from_dict`` — configs
    pin their own depth, so only the session default travels here.
    Sharded cells inside pool workers step their shards inline (a
    daemonic worker may not spawn children) — same results either way.
    """
    if fault_spec is not None:
        plan, seed = fault_spec
        common.set_default_fault_plan(plan, seed)
    if trace:
        common.enable_tracing()
    common.set_default_queue_depth(queue_depth)
    common.set_default_hedge(hedge)
    common.set_default_fast_forward(fast_forward)
    common.set_default_shards(shards)
    if sanitize:
        common.set_default_sanitize(True)


def _execute_cell(default_module: str, func: str, kwargs: Dict[str, Any]):
    """Run one cell; drain the fault summaries and spans its stacks produced."""
    started = time.perf_counter()  # simlint: disable=SIM001 (host wall time, not sim time)
    result = call_cell(default_module, func, kwargs)
    faults = common.drain_fault_summaries()
    spans = common.drain_spans()
    return result, faults, spans, time.perf_counter() - started  # simlint: disable=SIM001 (host wall time)


def execute_cells(
    cells: List[Cell],
    jobs: int = 1,
    fault_plan=None,
    fault_seed: int = 0,
    trace: bool = False,
    queue_depth: int = 1,
    hedge: bool = False,
    fast_forward: bool = False,
    shards: int = 1,
    sanitize: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Tuple[Any, List[Dict], List[Dict], float]]:
    """Execute *cells*, returning ``(result, faults, spans, seconds)``
    per cell.

    Results are returned in declaration order regardless of completion
    order.  ``jobs <= 1`` runs inline (no pool, no pickling); a cell
    failure propagates either way.  ``shards`` is the session default
    partition count for cells that are themselves sharded cluster runs
    (see :mod:`repro.sim.shard`); single-stack cells ignore it.
    """
    fault_spec = None if fault_plan is None else (fault_plan, fault_seed)
    if jobs <= 1 or len(cells) <= 1:
        _worker_init(
            fault_spec, trace, queue_depth, hedge, fast_forward, shards, sanitize
        )
        try:
            out = []
            for cell in cells:
                if progress is not None:
                    progress(f"running {cell.experiment}:{cell.label} ...")
                out.append(_execute_cell(cell.module, cell.func, cell.kwargs))
            return out
        finally:
            if fault_spec is not None:
                common.clear_default_fault_plan()
            if trace:
                common.disable_tracing()
            common.set_default_queue_depth(1)
            common.set_default_hedge(False)
            common.set_default_fast_forward(False)
            common.set_default_shards(1)
            if sanitize:
                common.set_default_sanitize(False)

    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_worker_init,
        initargs=(
            fault_spec, trace, queue_depth, hedge, fast_forward, shards, sanitize,
        ),
    ) as pool:
        futures = [
            pool.submit(_execute_cell, cell.module, cell.func, cell.kwargs)
            for cell in cells
        ]
        out = []
        for cell, future in zip(cells, futures):
            if progress is not None:
                progress(f"waiting {cell.experiment}:{cell.label} ...")
            out.append(future.result())
        return out


def run_experiments(
    requests: Iterable[Tuple[str, Optional[Dict[str, Any]]]],
    jobs: int = 1,
    fault_plan=None,
    fault_seed: int = 0,
    trace: bool = False,
    queue_depth: int = 1,
    hedge: bool = False,
    fast_forward: bool = False,
    shards: int = 1,
    sanitize: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, ExperimentResult]:
    """Run many experiments' cells through one shared worker pool.

    *requests* is an ordered iterable of ``(experiment id, overrides)``.
    Returns ``{id: ExperimentResult}`` with insertion order matching the
    request order — merged per experiment from cells executed across the
    whole batch.

    With ``trace=True`` every stack gets a span builder and each
    result's ``spans`` holds the lifecycle spans concatenated in cell
    declaration order — within a cell, in stack-creation order — so the
    merged span stream is byte-identical for any ``jobs``.
    """
    requests = [(key, dict(overrides or {})) for key, overrides in requests]
    plan: List[Tuple[str, Dict[str, Any], List[Cell]]] = []
    all_cells: List[Cell] = []
    for key, overrides in requests:
        cells = experiment_cells(key, overrides)
        plan.append((key, overrides, cells))
        all_cells.extend(cells)

    outcomes = execute_cells(
        all_cells, jobs=jobs, fault_plan=fault_plan, fault_seed=fault_seed,
        trace=trace, queue_depth=queue_depth, hedge=hedge,
        fast_forward=fast_forward, shards=shards, sanitize=sanitize,
        progress=progress,
    )

    merged: Dict[str, ExperimentResult] = {}
    cursor = 0
    for key, overrides, cells in plan:
        chunk = outcomes[cursor : cursor + len(cells)]
        cursor += len(cells)
        results = [result for result, _faults, _spans, _seconds in chunk]
        faults = [summary for _r, cell_faults, _sp, _s in chunk for summary in cell_faults]
        spans = [span for _r, _f, cell_spans, _s in chunk for span in cell_spans]
        seconds = sum(s for _r, _f, _sp, s in chunk)
        merged[key] = ExperimentResult(
            merge_cell_results(key, overrides, cells, results), faults, seconds, spans
        )
    return merged


def run_experiment(
    key: str,
    overrides: Optional[Dict[str, Any]] = None,
    jobs: int = 1,
    fault_plan=None,
    fault_seed: int = 0,
    trace: bool = False,
    queue_depth: int = 1,
    hedge: bool = False,
    fast_forward: bool = False,
    shards: int = 1,
    sanitize: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentResult:
    """Run one experiment, fanning its cells across *jobs* workers."""
    return run_experiments(
        [(key, overrides)], jobs=jobs, fault_plan=fault_plan,
        fault_seed=fault_seed, trace=trace, queue_depth=queue_depth,
        hedge=hedge, fast_forward=fast_forward, shards=shards,
        sanitize=sanitize, progress=progress,
    )[key]
