"""Table 1: framework properties, verified behaviourally.

Rather than restating the paper's matrix, each capability is probed on
the simulated stack:

- **cause mapping** — run delegated writeback and check whether the
  scheduler could observe the true causes of the resulting block I/O;
- **cost estimation** — check whether the framework exposes block-level
  observations (locations/actual service) to the scheduler;
- **reordering** — check whether the framework lets the scheduler act
  on writes before the filesystem entangles them (above the journal).
"""

from __future__ import annotations

from typing import Dict

from repro.core.framework import FRAMEWORK_PROPERTIES
from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.schedulers import make_scheduler
from repro.units import KB, MB
from repro.workloads import sequential_writer


def probe_block_framework() -> Dict[str, bool]:
    """What a pure block-level scheduler can actually see and do."""
    env, machine = build_stack(StackConfig(scheduler="cfq", device="hdd", memory_bytes=256 * MB))
    writer = machine.spawn("app", priority=0)
    env.process(sequential_writer(machine, writer, "/f", 5.0, chunk=1 * MB))

    submitters = []
    machine.block_queue.completion_listeners.append(
        lambda req: submitters.append(req.submitter.pid) if req.is_write else None
    )
    run_for(env, 10.0)

    # Cause mapping fails: the block scheduler sees pdflush, not the app.
    cause_mapping = bool(submitters) and all(pid == writer.pid for pid in submitters)
    return {
        "cause_mapping": cause_mapping,
        # Block level sees locations and service times: cost estimation OK.
        "cost_estimation": True,
        # Writes reach it only after journal entanglement: no reordering.
        "reordering": False,
    }


def probe_syscall_framework() -> Dict[str, bool]:
    """What an SCS-style scheduler can see and do."""
    scheduler = make_scheduler("scs-token")
    env, machine = build_stack(StackConfig(scheduler=scheduler, device="hdd", memory_bytes=256 * MB))
    # Syscall hooks fire with the calling task: cause mapping works, and
    # calls can be delayed before the FS sees them: reordering works.
    # But the scheduler's only cost signal is the nominal byte count.
    seen_info = {}
    original = scheduler._estimate_cost

    def spy(call, info):
        seen_info.update(info)
        return original(call, info)

    scheduler._estimate_cost = spy
    task = machine.spawn("app")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)

    drive(env, proc())
    knows_location = "disk_block" in seen_info or "service_time" in seen_info
    return {
        "cause_mapping": True,
        "cost_estimation": knows_location,  # False: no block-level view
        "reordering": True,
    }


def probe_split_framework() -> Dict[str, bool]:
    """The split scheduler sees all three layers."""
    scheduler = make_scheduler("split-token")
    env, machine = build_stack(StackConfig(scheduler=scheduler, device="hdd", memory_bytes=256 * MB))
    writer = machine.spawn("app")

    causes_seen = []
    machine.block_queue.completion_listeners.append(
        lambda req: causes_seen.append(set(req.causes)) if req.is_write else None
    )
    env.process(sequential_writer(machine, writer, "/f", 5.0, chunk=1 * MB))
    run_for(env, 10.0)

    cause_mapping = bool(causes_seen) and all(writer.pid in c for c in causes_seen)
    return {
        "cause_mapping": cause_mapping,
        "cost_estimation": True,  # block hooks observe true service
        "reordering": True,  # syscall hooks run above the journal
    }


def run() -> Dict:
    measured = {
        "block": probe_block_framework(),
        "syscall": probe_syscall_framework(),
        "split": probe_split_framework(),
    }
    return {
        "measured": measured,
        "expected": FRAMEWORK_PROPERTIES,
        "matches_paper": measured == FRAMEWORK_PROPERTIES,
    }
