"""Figure 17: metadata-intensive workloads expose partial integration.

A reads sequentially (unthrottled); B repeatedly creates an empty file
and fsyncs it — pure metadata/journal I/O — sleeping between creates.
On fully-integrated ext4 the journal writes carry B's tag, so B is
throttled and A isolated regardless of B's sleep time.  On partially-
integrated XFS the journal I/O is attributed to the journal task:
B escapes its limit and A's throughput tracks B's create rate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.fs.xfs import XFS
from repro.metrics.recorders import ThroughputTracker
from repro.schedulers import make_scheduler
from repro.units import GB, MB
from repro.workloads import prefill_file, sequential_reader


def _creator(machine, task, duration: float, sleep: float, counter: List[int]):
    env = machine.env
    end = env.now + duration
    index = 0
    while env.now < end:
        path = f"/meta-{task.pid}-{index}"
        handle = yield from machine.creat(task, path)
        yield from handle.fsync()
        counter[0] += 1
        index += 1
        if sleep > 0:
            yield env.timeout(sleep)


def run_cell(
    fs_name: str,
    sleep: float,
    duration: float = 15.0,
    rate_limit: float = 1 * MB,
) -> Dict:
    scheduler = make_scheduler("split-token")
    fs_class = XFS if fs_name == "xfs" else None
    env, machine = build_stack(
        StackConfig(scheduler=scheduler, device="hdd", memory_bytes=1 * GB, fs=fs_class)
    )
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", 64 * MB)

    drive(env, setup_proc())
    a, b = machine.spawn("A"), machine.spawn("B")
    scheduler.set_limit(b, rate_limit)

    tracker = ThroughputTracker()
    creates = [0]
    env.process(sequential_reader(machine, a, "/a", duration, chunk=1 * MB, tracker=tracker, cold=True))
    env.process(_creator(machine, b, duration, sleep, creates))
    run_for(env, duration)
    return {
        "a_mbps": tracker.rate(until=env.now) / MB,
        "b_creates_per_sec": creates[0] / duration,
    }


def cells(
    sleeps: List[float] = (0.0, 0.002, 0.008, 0.032),
    filesystems=("ext4", "xfs"),
    **kwargs,
):
    """Parallelisable cells: one simulation per (filesystem, sleep)."""
    return [
        (f"{fs_name}/{sleep}", "run_cell", dict(fs_name=fs_name, sleep=sleep, **kwargs))
        for fs_name in filesystems
        for sleep in sleeps
    ]


def merge(
    pairs,
    sleeps: List[float] = (0.0, 0.002, 0.008, 0.032),
    filesystems=("ext4", "xfs"),
    **kwargs,
) -> Dict:
    results: Dict = {"sleeps_ms": [1000 * s for s in sleeps]}
    ordered = iter(pairs)
    for fs_name in filesystems:
        fs_cells = [next(ordered)[1] for _sleep in sleeps]
        results[f"{fs_name}_a_mbps"] = [c["a_mbps"] for c in fs_cells]
        results[f"{fs_name}_creates_per_sec"] = [c["b_creates_per_sec"] for c in fs_cells]
    return results


def run(
    sleeps: List[float] = (0.0, 0.002, 0.008, 0.032),
    filesystems=("ext4", "xfs"),
    **kwargs,
) -> Dict:
    cell_list = cells(sleeps=sleeps, filesystems=filesystems, **kwargs)
    pairs = [(label, run_cell(**cell_kwargs)) for label, _func, cell_kwargs in cell_list]
    return merge(pairs, sleeps=sleeps, filesystems=filesystems, **kwargs)
