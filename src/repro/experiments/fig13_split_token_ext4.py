"""Figure 13: Split-Token isolates A regardless of B's pattern (ext4).

Same sweep as Figure 6, but with two-stage (memory + block) cost
accounting and below-cache read throttling.  The paper reports A's
standard deviation dropping from 41 MB (SCS) to ~7 MB (a 6×
improvement).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.fig06_scs_isolation import DEFAULT_RUN_SIZES
from repro.experiments.isolation import merge_sweep, run_sweep, sweep_cells
from repro.units import MB


def cells(run_sizes: List[int] = DEFAULT_RUN_SIZES, rate_limit: float = 10 * MB, **kwargs):
    return sweep_cells("split", list(run_sizes), rate_limit, **kwargs)


def merge(pairs, run_sizes: List[int] = DEFAULT_RUN_SIZES, rate_limit: float = 10 * MB, **kwargs) -> Dict:
    return merge_sweep(pairs, list(run_sizes), modes=kwargs.get("modes", ("read", "write")))


def run(
    run_sizes: List[int] = DEFAULT_RUN_SIZES,
    rate_limit: float = 10 * MB,
    **kwargs,
) -> Dict:
    return run_sweep("split", list(run_sizes), rate_limit, **kwargs)
