"""Figure 23 (reproduction extension): hedged dispatch under fail-slow.

The fleet-scale failure mode the original testbed never showed: one
flash channel silently degrades (a *fail-slow* fault) while its nine
siblings stay fast.  This sweep injects a single
:class:`~repro.faults.plan.ChannelFault` of increasing severity and
measures random-read tail latency with hedging off and on, at queue
depths 1, 4 and 32:

- at **depth 1** hedging is structurally inert (there is no second
  slot to race on): the sick channel owns the tail and the curves
  coincide — the depth-1 byte-identity guarantee, visible as data;
- at **depth >= 4** the health monitor's adaptive deadline (p95 x
  margin of recent service samples) flags the straggling attempts and
  the queue re-issues them on a free slot; the first completion wins,
  so p99 collapses from ~severity x base toward the healthy service
  time;
- the same sweep at depth 4 re-runs the Split-Token isolation pair
  (fig22's cell) under the worst fault, showing the throttled tenant's
  rate stays pinned while the device limps — degraded-mode repricing
  keeps token contracts honest against measured throughput.

Like every post-blk-mq figure, each cell ships a serialized
:class:`~repro.config.StackConfig` (fault plan included) to its
worker and rebuilds the stack from it.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.faults.plan import ChannelFault, FaultPlan
from repro.metrics.recorders import LatencyRecorder
from repro.units import GB, KB, MB, PAGE_SIZE
from repro.workloads import prefill_file

#: Service-time multipliers for the sick channel; 1 is the healthy
#: baseline (no fault injected at all).
DEFAULT_SEVERITIES = (1, 8, 32)
DEFAULT_DEPTHS = (1, 4, 32)
#: The channel the fault pins; also the dispatch slot it shadows.
SICK_CHANNEL = 0


def _stack_config(depth: int, hedge: bool, severity: float) -> StackConfig:
    plan = None
    if severity > 1:
        plan = FaultPlan(
            channel_faults=[ChannelFault(channel=SICK_CHANNEL, factor=float(severity))]
        )
    return StackConfig(
        device="ssd",
        memory_bytes=256 * MB,
        queue_depth=depth,
        hedge=hedge,
        fault_plan=plan,
        fault_seed=0,
    )


def _timed_read_thread(machine, task, path, duration, chunk, recorder, rng):
    """Random O_DIRECT reads, recording each call's syscall latency."""
    env = machine.env
    handle = yield from machine.open(task, path)
    blocks = handle.inode.size // PAGE_SIZE
    span = max(1, blocks - chunk // PAGE_SIZE)
    end = env.now + duration
    while env.now < end:
        offset = rng.randrange(0, span) * PAGE_SIZE
        start = env.now
        yield from handle.pread(offset, chunk, direct=True)
        recorder.record(env.now, env.now - start)


def latency_cell(
    config: Dict,
    threads: int = 16,
    duration: float = 2.0,
    chunk: int = 4 * KB,
    pool_bytes: int = 32 * MB,
) -> Dict:
    """Random-read latency distribution of one (depth, hedge, severity)."""
    env, machine = build_stack(StackConfig.from_dict(config))
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/pool", pool_bytes)

    drive(env, setup_proc())
    recorder = LatencyRecorder()
    for i in range(threads):
        task = machine.spawn(f"io{i}")
        env.process(
            _timed_read_thread(
                machine, task, "/pool", duration, chunk, recorder, random.Random(i)
            )
        )
    run_for(env, duration)
    queue = machine.block_queue
    out = {
        "count": recorder.count,
        "mean": recorder.mean(),
        "p50": recorder.percentile(50),
        "p95": recorder.percentile(95),
        "p99": recorder.percentile(99),
        "queue_depth": queue.queue_depth,
        "nslots": queue.nslots,
        "hedges_issued": getattr(queue, "hedges_issued", 0),
        "hedge_wins": getattr(queue, "hedge_wins", 0),
    }
    health = getattr(queue, "health", None)
    if health is not None:
        out["health_state"] = health.state
        out["degradation"] = health.degradation()
    return out


def cells(
    severities: List[float] = DEFAULT_SEVERITIES,
    depths: List[int] = DEFAULT_DEPTHS,
    threads: int = 16,
    duration: float = 2.0,
    chunk: int = 4 * KB,
    rate_limit: float = 10 * MB,
    isolation_duration: float = 10.0,
    **_ignored,
):
    """Latency cells for every (depth, hedge, severity); isolation pair.

    The isolation cells reuse fig22's Split-Token pair (B pinned to
    ``rate_limit``) at depth 4 — once healthy, once under the worst
    fail-slow severity with hedging on.
    """
    out = []
    for depth in depths:
        for hedge in (False, True):
            for severity in severities:
                config = _stack_config(depth, hedge, severity)
                label = f"latency/{depth}/{'hedged' if hedge else 'unhedged'}/{severity}"
                out.append(
                    (label, "latency_cell",
                     dict(config=config.to_dict(), threads=threads,
                          duration=duration, chunk=chunk))
                )
    worst = max(severities)
    for label, severity in (("isolation/healthy", 1), ("isolation/failslow", worst)):
        plan = None
        if severity > 1:
            plan = FaultPlan(
                channel_faults=[ChannelFault(channel=SICK_CHANNEL, factor=float(severity))]
            )
        config = StackConfig(
            device="ssd", scheduler="split-token", memory_bytes=1 * GB,
            queue_depth=4, hedge=True, fault_plan=plan, fault_seed=0,
        )
        out.append(
            (label, "repro.experiments.fig22_queue_depth:isolation_cell",
             dict(config=config.to_dict(), rate_limit=rate_limit,
                  duration=isolation_duration))
        )
    return out


def merge(
    pairs,
    severities: List[float] = DEFAULT_SEVERITIES,
    depths: List[int] = DEFAULT_DEPTHS,
    **_ignored,
) -> Dict:
    """Reassemble ordered (label, cell) pairs into run()'s output."""
    severities = list(severities)
    depths = list(depths)
    ordered = iter(pairs)
    by_depth: Dict[int, Dict[str, Dict]] = {}
    for depth in depths:
        modes: Dict[str, Dict] = {}
        for mode in ("unhedged", "hedged"):
            series = [next(ordered)[1] for _ in severities]
            modes[mode] = {
                "p99": [cell["p99"] for cell in series],
                "p50": [cell["p50"] for cell in series],
                "hedges_issued": [cell["hedges_issued"] for cell in series],
                "hedge_wins": [cell["hedge_wins"] for cell in series],
                "cells": series,
            }
        by_depth[depth] = modes
    healthy = next(ordered)[1]
    failslow = next(ordered)[1]
    return {
        "severities": severities,
        "depths": depths,
        "latency": by_depth,
        "isolation": {
            "healthy": healthy,
            "failslow": failslow,
            "b_target_mbps": healthy["b_target_mbps"],
        },
    }


def run(
    severities: List[float] = DEFAULT_SEVERITIES,
    depths: List[int] = DEFAULT_DEPTHS,
    **kwargs,
) -> Dict:
    """The whole sweep in-process (the CLI fans cells out instead)."""
    from repro.experiments.runner import call_cell

    cell_list = cells(severities=list(severities), depths=list(depths), **kwargs)
    pairs = [
        (label, call_cell("repro.experiments.fig23_fail_slow", func, cell_kwargs))
        for label, func, cell_kwargs in cell_list
    ]
    return merge(pairs, severities=list(severities), depths=list(depths), **kwargs)
