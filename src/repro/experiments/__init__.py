"""Experiment drivers: one module per figure/table of the paper.

Every module exposes ``run(...)`` returning a plain dict of results
(JSON-friendly), with parameters defaulting to the scaled-down
simulation equivalents of the paper's setup.  The benchmark suite under
``benchmarks/`` executes them at full scale and prints the same
rows/series the paper reports; the test suite runs them at reduced
scale and asserts the paper's qualitative findings (who wins, rough
factors, crossovers).
"""

from repro.experiments import common

__all__ = ["common"]

#: Experiment registry: id -> (module name, paper artefact).
EXPERIMENTS = {
    "fig01": ("repro.experiments.fig01_write_burst", "Figure 1: write burst vs idle class"),
    "fig03": ("repro.experiments.fig03_cfq_writeback", "Figure 3: CFQ priority inversion via writeback"),
    "fig05": ("repro.experiments.fig05_latency_dependency", "Figure 5: fsync latency dependencies"),
    "fig06": ("repro.experiments.fig06_scs_isolation", "Figure 6: SCS-Token isolation failure"),
    "fig09": ("repro.experiments.fig09_time_overhead", "Figure 9: framework time overhead"),
    "fig10": ("repro.experiments.fig10_space_overhead", "Figure 10: tag memory overhead"),
    "fig11": ("repro.experiments.fig11_afq_priority", "Figure 11: AFQ vs CFQ priorities"),
    "fig12": ("repro.experiments.fig12_fsync_isolation", "Figure 12: fsync latency isolation"),
    "fig13": ("repro.experiments.fig13_split_token_ext4", "Figure 13: Split-Token isolation (ext4)"),
    "fig14": ("repro.experiments.fig14_split_vs_scs", "Figure 14: Split-Token vs SCS-Token"),
    "fig15": ("repro.experiments.fig15_scalability", "Figure 15: Split-Token scalability"),
    "fig16": ("repro.experiments.fig16_xfs_isolation", "Figure 16: Split-Token isolation (XFS)"),
    "fig17": ("repro.experiments.fig17_metadata", "Figure 17: metadata workloads, XFS vs ext4"),
    "fig18": ("repro.experiments.fig18_sqlite", "Figure 18: SQLite transaction tails"),
    "fig19": ("repro.experiments.fig19_postgres", "Figure 19: PostgreSQL latency CDF"),
    "fig20": ("repro.experiments.fig20_qemu", "Figure 20: QEMU isolation"),
    "fig21": ("repro.experiments.fig21_hdfs", "Figure 21: HDFS isolation"),
    "fig22": ("repro.experiments.fig22_queue_depth", "Figure 22: multi-queue dispatch vs depth"),
    "fig23": ("repro.experiments.fig23_fail_slow", "Figure 23: hedged dispatch under fail-slow"),
    "fig24": ("repro.experiments.fig24_fleet", "Figure 24: fleet-scale isolation (sharded)"),
    "fig25": ("repro.experiments.fig25_reprofs_tenants", "Figure 25: file-API tenants under reprofs"),
    "tab1": ("repro.experiments.tab1_properties", "Table 1: framework properties"),
}
