"""Figure 22 (reproduction extension): multi-queue dispatch vs depth.

The paper's block layer — and our reproduction until the blk-mq
refactor — dispatched one request at a time.  This sweep runs the SSD
model at queue depths 1, 4 and 32 and reports two things:

- *throughput scaling*: many threads issuing small O_DIRECT random
  reads are latency-bound at depth 1; deeper tagged queuing overlaps
  the access latencies across the SSD's flash channels, so aggregate
  IOPS climb until the depth exceeds the channel count (the engine
  caps effective slots at ``device.channels``, 10 for the X25-M-like
  default);
- *isolation under depth*: the same Split-Token stack that pins B to
  ``rate_limit`` at depth 1 must still pin it at depth 32 — the
  depth-aware ``service_charge`` accounting keeps token revisions
  correct when service windows overlap.

Every cell ships a serialized :class:`~repro.config.StackConfig` to
its (possibly pooled) worker and rebuilds the stack from it — the
declarative-assembly path this figure exists to exercise.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import ThroughputTracker
from repro.units import GB, KB, MB, PAGE_SIZE
from repro.workloads import prefill_file, sequential_reader, sequential_writer

#: The NCQ depths the figure sweeps (32 exceeds the SSD's 10 channels,
#: demonstrating the channel cap).
DEFAULT_DEPTHS = (1, 4, 32)


def _direct_read_thread(machine, task, path, duration, chunk, tracker, rng):
    """Issue random O_DIRECT reads (cache bypassed: every call is a
    device request) until *duration* elapses."""
    env = machine.env
    handle = yield from machine.open(task, path)
    blocks = handle.inode.size // PAGE_SIZE
    span = max(1, blocks - chunk // PAGE_SIZE)
    end = env.now + duration
    while env.now < end:
        offset = rng.randrange(0, span) * PAGE_SIZE
        n = yield from handle.pread(offset, chunk, direct=True)
        tracker.add(n, env.now)


def throughput_cell(
    config: Dict,
    threads: int = 64,
    duration: float = 2.0,
    chunk: int = 4 * KB,
    pool_bytes: int = 64 * MB,
) -> Dict:
    """Aggregate random-read throughput of one depth point."""
    env, machine = build_stack(StackConfig.from_dict(config))
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/pool", pool_bytes)

    drive(env, setup_proc())
    queue = machine.block_queue
    completed_before = queue.completed
    tracker = ThroughputTracker()
    tracker.start(env.now)
    start = env.now
    for i in range(threads):
        task = machine.spawn(f"io{i}")
        env.process(
            _direct_read_thread(
                machine, task, "/pool", duration, chunk, tracker, random.Random(i)
            )
        )
    run_for(env, duration)
    elapsed = env.now - start
    completed = queue.completed - completed_before
    return {
        "mbps": tracker.rate(until=env.now) / MB,
        "iops": completed / elapsed if elapsed > 0 else 0.0,
        "queue_depth": queue.queue_depth,
        "nslots": queue.nslots,
    }


def isolation_cell(
    config: Dict,
    rate_limit: float = 10 * MB,
    duration: float = 10.0,
    a_file: int = 64 * MB,
) -> Dict:
    """Split-Token isolation at one depth: B pinned, A free."""
    env, machine = build_stack(StackConfig.from_dict(config))
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", a_file)

    drive(env, setup_proc())

    a = machine.spawn("A")
    b = machine.spawn("B")
    machine.scheduler.set_limit(b, rate_limit)

    a_tracker = ThroughputTracker("A")
    b_tracker = ThroughputTracker("B")
    env.process(
        sequential_reader(machine, a, "/a", duration, chunk=1 * MB,
                          tracker=a_tracker, cold=True)
    )
    env.process(
        sequential_writer(machine, b, "/bgrow", duration, chunk=256 * KB,
                          tracker=b_tracker)
    )
    run_for(env, duration)
    return {
        "a_mbps": a_tracker.rate(until=env.now) / MB,
        "b_mbps": b_tracker.rate(until=env.now) / MB,
        "b_target_mbps": rate_limit / MB,
        "queue_depth": machine.block_queue.queue_depth,
        "nslots": machine.block_queue.nslots,
    }


def cells(
    depths: List[int] = DEFAULT_DEPTHS,
    threads: int = 64,
    duration: float = 2.0,
    chunk: int = 4 * KB,
    rate_limit: float = 10 * MB,
    isolation_duration: float = 10.0,
    **_ignored,
):
    """One throughput and one isolation cell per depth.

    Each cell's kwargs carry its StackConfig as a ``to_dict`` payload —
    the serialized form pool workers rebuild with ``from_dict``.
    """
    out = []
    for depth in depths:
        config = StackConfig(device="ssd", memory_bytes=256 * MB, queue_depth=depth)
        out.append(
            (f"throughput/{depth}", "throughput_cell",
             dict(config=config.to_dict(), threads=threads,
                  duration=duration, chunk=chunk))
        )
    for depth in depths:
        config = StackConfig(
            device="ssd", scheduler="split-token",
            memory_bytes=1 * GB, queue_depth=depth,
        )
        out.append(
            (f"isolation/{depth}", "isolation_cell",
             dict(config=config.to_dict(), rate_limit=rate_limit,
                  duration=isolation_duration))
        )
    return out


def merge(pairs, depths: List[int] = DEFAULT_DEPTHS, **_ignored) -> Dict:
    """Reassemble ordered (label, cell) pairs into run()'s output."""
    depths = list(depths)
    ordered = iter(pairs)
    throughput = [cell for _label, cell in (next(ordered) for _ in depths)]
    isolation = [cell for _label, cell in (next(ordered) for _ in depths)]
    base = throughput[0]["mbps"] or 1.0
    return {
        "depths": depths,
        "nslots": [cell["nslots"] for cell in throughput],
        "throughput_mbps": [cell["mbps"] for cell in throughput],
        "iops": [cell["iops"] for cell in throughput],
        "scaling": [cell["mbps"] / base for cell in throughput],
        "isolation": {
            "a_mbps": [cell["a_mbps"] for cell in isolation],
            "b_mbps": [cell["b_mbps"] for cell in isolation],
            "b_target_mbps": isolation[0]["b_target_mbps"],
        },
    }


def run(depths: List[int] = DEFAULT_DEPTHS, **kwargs) -> Dict:
    """The whole sweep in-process (the CLI fans cells out instead)."""
    cell_list = cells(depths=list(depths), **kwargs)
    module = globals()
    pairs = [
        (label, module[func](**cell_kwargs)) for label, func, cell_kwargs in cell_list
    ]
    return merge(pairs, depths=list(depths), **kwargs)
