"""Figure 24: fleet-scale tenant isolation under sharded simulation.

The Split-Token claim at fleet scale: because throttling is enforced
by *local* schedulers with purely local state, tenant isolation should
not degrade as the fleet grows — per-tenant throughput stays pinned to
the contract and its spread across tenants stays flat, whether the
fleet has 8 DataNodes or 64.  (A centralized throttler would show
coordination lag growing with fleet size.)

Each fleet-size point is one sharded cluster run: ``tenants_count``
contracts, ``streams_per_tenant_per_node × nodes`` streams per tenant
spread round-robin over gateway nodes, every block 3×-replicated to
nodes chosen by the NameNode-style placement function.  The figure
reports, per fleet size, the coefficient of variation (σ/mean) of
per-tenant throughput — the isolation metric, lower is better — and
the p99 client-observed chunk latency.

At the paper-scale defaults the largest point simulates a 64-DataNode
fleet carrying 1024 tenant streams; the benchmark suite runs a reduced
sweep with the same shape.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.config import ClusterConfig, TenantContract
from repro.sim.shard import StreamSpec, run_cluster
from repro.units import GB, MB

DEFAULT_FLEET_SIZES = (8, 16, 32, 64)


def run_cell(
    nodes: int,
    tenants_count: int = 16,
    streams_per_tenant_per_node: int = 1,
    rate_per_node: float = 2 * MB,
    duration: float = 2.0,
    block_size: int = 16 * MB,
    seed: int = 0,
    shards: Optional[int] = None,
) -> Dict:
    """One fleet-size point: a full sharded cluster run, summarized."""
    contracts = tuple(
        TenantContract(f"t{i:02d}", rate_per_node=rate_per_node)
        for i in range(tenants_count)
    )
    cluster = ClusterConfig(
        nodes=nodes,
        replication=3,
        block_size=block_size,
        tenants=contracts,
        seed=seed,
    )
    streams = []
    stream_id = 0
    per_tenant = streams_per_tenant_per_node * nodes
    for t in range(tenants_count):
        for j in range(per_tenant):
            gateway = (t + j * tenants_count) % nodes
            streams.append(StreamSpec(stream_id, f"t{t:02d}", gateway, 16 * GB))
            stream_id += 1
    result = run_cluster(cluster, streams, duration, shards=shards)

    rates = [result["tenants"][c.name]["mbps"] for c in contracts]
    mean = sum(rates) / len(rates)
    sigma = math.sqrt(sum((r - mean) ** 2 for r in rates) / len(rates))
    p99s = [result["tenants"][c.name]["chunk_p99"] for c in contracts]
    bound_mbps = (rate_per_node / cluster.replication) * nodes / MB
    return {
        "nodes": nodes,
        "streams": len(streams),
        "shards": result["meta"]["shards"],
        "tenant_mean_mbps": mean,
        "tenant_sigma_mbps": sigma,
        "isolation_cv": (sigma / mean) if mean else 0.0,
        "bound_mbps": bound_mbps,
        "bound_utilization": (mean / bound_mbps) if bound_mbps else 0.0,
        "chunk_p99_ms": max(p99s) * 1e3,
        "total_mbps": sum(rates),
    }


def cells(
    fleet_sizes: List[int] = DEFAULT_FLEET_SIZES,
    **kwargs,
) -> List:
    """One cell per fleet size; each cell is itself a sharded run."""
    return [
        (f"nodes{nodes}", "run_cell", dict(kwargs, nodes=nodes))
        for nodes in fleet_sizes
    ]


def merge(pairs: List, fleet_sizes: List[int] = DEFAULT_FLEET_SIZES, **_kwargs) -> Dict:
    """Reassemble per-fleet-size cells into run()'s output shape."""
    points = [result for _label, result in pairs]
    return {
        "fleet_sizes": list(fleet_sizes),
        "points": points,
        "isolation_cv": [p["isolation_cv"] for p in points],
        "chunk_p99_ms": [p["chunk_p99_ms"] for p in points],
    }


def run(fleet_sizes: List[int] = DEFAULT_FLEET_SIZES, **kwargs) -> Dict:
    """The whole sweep, sequentially (the runner fans out cells())."""
    pairs = [
        (label, run_cell(**cell_kwargs))
        for label, _func, cell_kwargs in cells(fleet_sizes, **kwargs)
    ]
    return merge(pairs, fleet_sizes)
