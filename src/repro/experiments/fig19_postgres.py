"""Figure 19: PostgreSQL transaction-latency CDF (the fsync freeze).

Three systems on an SSD:

- **Block-Deadline** — latency spikes at the end of every checkpoint
  period (the paper: 4% of transactions miss the 15 ms target, >1%
  take over 500 ms);
- **Split-Pdflush** — Split-Deadline with pdflush still controlling
  writeback: better, but untimely background flushes remain;
- **Split-Deadline** — the scheduler owns writeback completely and
  eliminates the tail while keeping the median low.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.postgres import Postgres
from repro.config import StackConfig
from repro.experiments.common import build_stack, drive
from repro.schedulers import make_scheduler
from repro.units import MB

CONFIGS = ("block", "split-pdflush", "split")


def run_config(
    config: str,
    duration: float = 60.0,
    checkpoint_interval: float = 15.0,
    table_bytes: int = 128 * MB,
    workers: int = 8,
    rate_per_worker: float = 100.0,
) -> Dict:
    if config == "block":
        sched = make_scheduler("block-deadline", read_deadline=0.005, write_deadline=0.005)
        writeback_enabled = True
    elif config == "split-pdflush":
        sched = make_scheduler(
            "split-deadline", read_deadline=0.005, fsync_deadline=0.005, dirty_cap=32 * MB
        )
        writeback_enabled = True
    elif config == "split":
        sched = make_scheduler(
            "split-deadline", read_deadline=0.005, fsync_deadline=0.005, own_writeback=True
        )
        writeback_enabled = False
    else:
        raise ValueError(f"config must be one of {CONFIGS}, got {config!r}")

    env, machine = build_stack(
        StackConfig(
            scheduler=sched,
            device="ssd",
            memory_bytes=1024 * MB,
            writeback_enabled=writeback_enabled,
        )
    )
    db = Postgres(
        machine,
        table_bytes=table_bytes,
        workers=workers,
        checkpoint_interval=checkpoint_interval,
    )
    drive(env, db.setup())

    if config.startswith("split"):
        for task in db.worker_tasks:
            sched.set_fsync_deadline(task, 0.005)  # foreground commits
            sched.set_read_deadline(task, 0.005)
        sched.set_fsync_deadline(db.checkpoint_task, 0.2)  # checkpoints

    bench = env.process(db.run_bench(duration, rate_per_worker=rate_per_worker))
    env.run(until=bench)
    result = bench.value
    return {
        "config": config,
        "transactions": result.count,
        "median_ms": 1000 * result.median(),
        "p99_ms": 1000 * result.percentile(99),
        "max_ms": 1000 * max(result.latencies),
        "frac_over_15ms": result.fraction_over(0.015),
        "frac_over_500ms": result.fraction_over(0.5),
        "checkpoints": db.checkpoints,
        "latencies": result.latencies,
    }


def run(configs=CONFIGS, **kwargs) -> Dict[str, Dict]:
    return {config: run_config(config, **kwargs) for config in configs}
