"""Figure 18: SQLite transaction tail latencies vs checkpoint threshold.

Raising the checkpoint threshold makes checkpoints rarer (the 99th
percentile falls) but each one costlier (the 99.9th keeps rising):
Block-Deadline can only move the pain around.  Split-Deadline's
deferred, asynchronously-drained checkpoint fsyncs cut the 99.9th
percentile (~4× at the 1K-buffer setting in the paper).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.sqlite import SQLiteDB
from repro.config import StackConfig
from repro.experiments.common import build_stack, drive
from repro.schedulers import make_scheduler
from repro.units import MB


def run_cell(
    scheduler: str,
    threshold: int,
    duration: float = 30.0,
    table_bytes: int = 64 * MB,
    device: str = "hdd",
) -> Dict:
    if scheduler == "block":
        sched = make_scheduler("block-deadline", read_deadline=0.05, write_deadline=0.5)
    elif scheduler == "split":
        sched = make_scheduler("split-deadline", read_deadline=0.1, fsync_deadline=0.1)
    else:
        raise ValueError(f"scheduler must be 'block' or 'split', got {scheduler!r}")

    env, machine = build_stack(StackConfig(scheduler=sched, device=device, memory_bytes=1024 * MB))
    db = SQLiteDB(machine, table_bytes=table_bytes, checkpoint_threshold=threshold)
    drive(env, db.setup())

    if scheduler == "split":
        # Paper settings: 100 ms for WAL fsyncs and table reads,
        # 10 s for the checkpointer's database-file fsyncs.
        sched.set_fsync_deadline(db.worker, 0.1)
        sched.set_read_deadline(db.worker, 0.1)
        sched.set_fsync_deadline(db.checkpoint_task, 10.0)

    bench = env.process(db.run_updates(duration))
    env.run(until=bench)
    latency = bench.value
    return {
        "p99_ms": 1000 * latency.percentile(99),
        "p999_ms": 1000 * latency.percentile(99.9),
        "median_ms": 1000 * latency.percentile(50),
        "transactions": latency.count,
        "checkpoints": db.checkpoints,
    }


def run(
    thresholds: List[int] = (250, 500, 1000, 2000),
    schedulers=("block", "split"),
    **kwargs,
) -> Dict:
    results: Dict = {"thresholds": list(thresholds)}
    for scheduler in schedulers:
        cells = [run_cell(scheduler, threshold, **kwargs) for threshold in thresholds]
        results[f"{scheduler}_p99_ms"] = [c["p99_ms"] for c in cells]
        results[f"{scheduler}_p999_ms"] = [c["p999_ms"] for c in cells]
        results[f"{scheduler}_txns"] = [c["transactions"] for c in cells]
    return results
