"""Batch export: regenerate experiments and write JSON + a report.

Drives the same ``run()`` entry points as the benchmark suite, but
writes machine-readable results (one JSON file per experiment) plus a
markdown summary — the artefact you would attach to a reproduction
report.

    from repro.experiments.export import export_all
    export_all("results/", only=["fig03", "tab1"], overrides={"fig03": {"duration": 10}})

Pass ``jobs=N`` to fan each experiment's independent cells across
worker processes (see :mod:`repro.experiments.runner`); the written
results are byte-identical to a sequential export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro.experiments import EXPERIMENTS


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def run_experiment(
    key: str, overrides: Optional[Dict[str, Any]] = None, jobs: int = 1
) -> Dict[str, Any]:
    """Run one experiment by id; returns {key, title, seconds, result}.

    ``wall_seconds`` is the summed cell time (the serial-equivalent
    cost), so the recorded payload does not depend on ``jobs``.
    """
    try:
        _module_name, title = EXPERIMENTS[key]
    except KeyError:
        raise ValueError(f"unknown experiment {key!r}") from None
    from repro.experiments import runner

    outcome = runner.run_experiment(key, overrides, jobs=jobs)
    return {
        "experiment": key,
        "title": title,
        "wall_seconds": round(outcome.seconds, 1),
        "result": _jsonable(outcome.result),
    }


def write_results(out_dir, outcomes: Dict[str, Any]) -> Dict[str, str]:
    """Write ``<key>.json`` + ``REPORT.md`` for already-run experiments.

    *outcomes* maps experiment id to a
    :class:`~repro.experiments.runner.ExperimentResult`.  Used by
    ``repro run-all --out`` after a shared-pool batch run.
    """
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}
    report_lines = ["# Reproduction run", ""]
    for key, outcome in outcomes.items():
        _module_name, title = EXPERIMENTS[key]
        payload = {
            "experiment": key,
            "title": title,
            "wall_seconds": round(outcome.seconds, 1),
            "result": _jsonable(outcome.result),
        }
        target = out_path / f"{key}.json"
        target.write_text(json.dumps(payload, indent=2) + "\n")
        written[key] = str(target)
        report_lines.append(
            f"- **{key}** — {title} ({payload['wall_seconds']}s) -> `{target.name}`"
        )
    (out_path / "REPORT.md").write_text("\n".join(report_lines) + "\n")
    return written


def export_all(
    out_dir,
    only: Optional[Iterable[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    progress=print,
    jobs: int = 1,
) -> Dict[str, str]:
    """Run experiments and write ``<key>.json`` files plus ``REPORT.md``.

    Returns a map of experiment id -> output path.  Failures are
    recorded in the report rather than aborting the batch.
    """
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    keys = list(only) if only is not None else sorted(EXPERIMENTS)
    overrides = overrides or {}

    written: Dict[str, str] = {}
    report_lines = ["# Reproduction run", ""]
    for key in keys:
        progress(f"running {key} ...")
        try:
            payload = run_experiment(key, overrides.get(key), jobs=jobs)
        except Exception as exc:  # record, keep going
            report_lines.append(f"- **{key}**: FAILED — {exc!r}")
            continue
        target = out_path / f"{key}.json"
        target.write_text(json.dumps(payload, indent=2) + "\n")
        written[key] = str(target)
        report_lines.append(
            f"- **{key}** — {payload['title']} ({payload['wall_seconds']}s) -> `{target.name}`"
        )
    (out_path / "REPORT.md").write_text("\n".join(report_lines) + "\n")
    return written
