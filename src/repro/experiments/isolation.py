"""Shared runner for the token-bucket isolation experiments
(Figures 6, 13, 14, 16): an unthrottled sequential reader A alongside
a throttled process B running some I/O pattern.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import ThroughputTracker
from repro.units import GB, KB, MB
from repro.workloads import (
    prefill_file,
    run_pattern_reader,
    run_pattern_writer,
    sequential_overwriter,
    sequential_reader,
    sequential_writer,
)

#: The six B workloads of Figure 14.
SIX_WORKLOADS = ("read-mem", "read-seq", "read-rand", "write-mem", "write-seq", "write-rand")


def make_scheduler(kind: str):
    from repro.schedulers import make_scheduler as registry_make

    if kind == "scs":
        return registry_make("scs-token")
    if kind == "split":
        return registry_make("split-token")
    raise ValueError(f"scheduler must be 'scs' or 'split', got {kind!r}")


def _b_workload(machine, task, workload: str, duration: float, tracker, b_file: int):
    """Build B's process generator for one of the six named workloads."""
    if workload == "read-mem":
        # Re-read a small, fully-cached region in 4 KB calls: the
        # workload is then syscall-bound, which is exactly where SCS's
        # per-call bookkeeping hurts (Figure 14's read-mem gap).
        return sequential_reader(machine, task, "/bsmall", duration, chunk=4 * KB, tracker=tracker)
    if workload == "read-seq":
        return run_pattern_reader(machine, task, "/bdata", b_file // 4, duration, tracker=tracker)
    if workload == "read-rand":
        return run_pattern_reader(machine, task, "/bdata", 4 * KB, duration, tracker=tracker)
    if workload == "write-mem":
        return sequential_overwriter(machine, task, "/bsmall", duration, region=4 * MB, tracker=tracker)
    if workload == "write-seq":
        return sequential_writer(machine, task, "/bgrow", duration, chunk=256 * KB, tracker=tracker)
    if workload == "write-rand":
        return run_pattern_writer(machine, task, "/bdata", 4 * KB, duration, tracker=tracker)
    raise ValueError(f"unknown workload {workload!r}")


def run_pair(
    scheduler_kind: str,
    b_workload: str,
    rate_limit: float,
    duration: float = 20.0,
    a_file: int = 128 * MB,
    b_file: int = 512 * MB,
    memory_bytes: int = 4 * GB,
    device: str = "hdd",
    fs_class=None,
    b_threads: int = 1,
) -> Dict:
    """One (scheduler, B-workload) cell: returns A and B throughputs.

    Memory is sized so a throttled writer's dirty data stays below the
    background-writeback threshold for the whole run, as in the
    paper's 16 GB testbed — that absorption is what makes buffered
    writes look cheap to A.
    """
    scheduler = make_scheduler(scheduler_kind)
    env, machine = build_stack(
        StackConfig(scheduler=scheduler, device=device, memory_bytes=memory_bytes, fs=fs_class)
    )
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", a_file)
        yield from prefill_file(machine, setup, "/bdata", b_file)
        yield from prefill_file(machine, setup, "/bsmall", 4 * MB, drop=False)

    drive(env, setup_proc())

    a = machine.spawn("A")
    b_tasks = [machine.spawn(f"B{i}") for i in range(b_threads)]
    scheduler.set_limit(b_tasks if b_threads > 1 else b_tasks[0], rate_limit)

    a_tracker = ThroughputTracker("A")
    b_tracker = ThroughputTracker("B")
    env.process(sequential_reader(machine, a, "/a", duration, chunk=1 * MB, tracker=a_tracker, cold=True))
    for task in b_tasks:
        env.process(_b_workload(machine, task, b_workload, duration, b_tracker, b_file))
    run_for(env, duration)

    return {
        "a_mbps": a_tracker.rate(until=env.now) / MB,
        "b_mbps": b_tracker.rate(until=env.now) / MB,
    }


def sweep_cells(
    scheduler_kind: str,
    run_sizes: List[int],
    rate_limit: float,
    modes: Tuple[str, ...] = ("read", "write"),
    **kwargs,
):
    """Cells of a Figures 6/13/16 sweep: one per (mode, run size).

    Returned in the same (label, func, kwargs) form the parallel runner
    consumes; ``func`` is module-qualified because the cell body lives
    here rather than in the figure modules.
    """
    return [
        (f"{mode}/{run_bytes}", "repro.experiments.isolation:_run_pattern_cell",
         dict(scheduler_kind=scheduler_kind, mode=mode, run_bytes=run_bytes,
              rate_limit=rate_limit, **kwargs))
        for mode in modes
        for run_bytes in run_sizes
    ]


def merge_sweep(
    pairs,
    run_sizes: List[int],
    modes: Tuple[str, ...] = ("read", "write"),
) -> Dict:
    """Reassemble ordered (label, cell) pairs into run_sweep's output."""
    a_rates: Dict[str, List[float]] = {mode: [] for mode in modes}
    b_rates: Dict[str, List[float]] = {mode: [] for mode in modes}
    ordered = iter(pairs)
    for mode in modes:
        for _run_bytes in run_sizes:
            _label, cell = next(ordered)
            a_rates[mode].append(cell["a_mbps"])
            b_rates[mode].append(cell["b_mbps"])
    all_a = [rate for series in a_rates.values() for rate in series]
    return {
        "run_sizes": list(run_sizes),
        "a_mbps": a_rates,
        "b_mbps": b_rates,
        "a_stdev_mb": statistics.pstdev(all_a),
        "a_mean_mb": statistics.mean(all_a),
    }


def run_sweep(
    scheduler_kind: str,
    run_sizes: List[int],
    rate_limit: float,
    modes: Tuple[str, ...] = ("read", "write"),
    **kwargs,
) -> Dict:
    """Figures 6/13/16: B does R-byte runs (reads and writes); report
    A's throughput per workload and its standard deviation."""
    cell_list = sweep_cells(scheduler_kind, run_sizes, rate_limit, modes=modes, **kwargs)
    pairs = [
        (label, _run_pattern_cell(**cell_kwargs)) for label, _func, cell_kwargs in cell_list
    ]
    return merge_sweep(pairs, run_sizes, modes=modes)


def _run_pattern_cell(
    scheduler_kind: str,
    mode: str,
    run_bytes: int,
    rate_limit: float,
    duration: float = 20.0,
    a_file: int = 128 * MB,
    b_file: int = 512 * MB,
    memory_bytes: int = 4 * GB,
    device: str = "hdd",
    fs_class=None,
) -> Dict:
    scheduler = make_scheduler(scheduler_kind)
    env, machine = build_stack(
        StackConfig(scheduler=scheduler, device=device, memory_bytes=memory_bytes, fs=fs_class)
    )
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", a_file)
        yield from prefill_file(machine, setup, "/bdata", b_file)

    drive(env, setup_proc())
    a, b = machine.spawn("A"), machine.spawn("B")
    scheduler.set_limit(b, rate_limit)
    a_tracker, b_tracker = ThroughputTracker(), ThroughputTracker()
    env.process(sequential_reader(machine, a, "/a", duration, chunk=1 * MB, tracker=a_tracker, cold=True))
    if mode == "read":
        env.process(run_pattern_reader(machine, b, "/bdata", run_bytes, duration, tracker=b_tracker))
    else:
        env.process(run_pattern_writer(machine, b, "/bdata", run_bytes, duration, tracker=b_tracker))
    run_for(env, duration)
    return {
        "a_mbps": a_tracker.rate(until=env.now) / MB,
        "b_mbps": b_tracker.rate(until=env.now) / MB,
    }
