"""Shared plumbing for the figure/table experiments."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.devices import HDD, SSD
from repro.sim import Environment
from repro.syscall.os import OS
from repro.units import GB, MB


def make_device(kind: str):
    """Device factory: 'hdd' or 'ssd'."""
    if kind == "hdd":
        return HDD()
    if kind == "ssd":
        return SSD()
    raise ValueError(f"unknown device kind {kind!r}")


def build_stack(
    scheduler=None,
    device: str = "hdd",
    memory_bytes: int = 1 * GB,
    fs_class=None,
    writeback_enabled: bool = True,
    writeback_config=None,
    cores: int = 8,
):
    """A fresh (env, OS) pair for one experimental run.

    The default memory size is deliberately smaller than the paper's
    16 GB testbed: the simulated workloads are scaled down in the same
    proportion, keeping the dirty-ratio and cache dynamics equivalent
    while the simulation stays fast.
    """
    env = Environment()
    kwargs = dict(
        device=make_device(device),
        scheduler=scheduler,
        memory_bytes=memory_bytes,
        cores=cores,
        writeback_enabled=writeback_enabled,
        writeback_config=writeback_config,
    )
    if fs_class is not None:
        kwargs["fs_class"] = fs_class
    machine = OS(env, **kwargs)
    return env, machine


def settle(env, proc) -> None:
    """Run the simulation until *proc* (a setup Process) completes."""
    env.run(until=proc)


def drive(env, generator):
    """Run one generator to completion and return its value."""
    proc = env.process(generator)
    env.run(until=proc)
    return proc.value


def run_for(env, duration: float) -> None:
    """Advance the simulation by *duration* seconds."""
    env.run(until=env.now + duration)


def format_table(headers: List[str], rows: Iterable[Iterable]) -> str:
    """Simple fixed-width table used by the benchmark printers."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
