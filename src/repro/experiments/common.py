"""Shared plumbing for the figure/table experiments."""

from __future__ import annotations

import itertools
import os
from typing import Dict, Iterable, List, Optional

from repro.config import StackConfig
from repro.devices import HDD, SSD
from repro.sim import Environment
from repro.syscall.os import OS

#: Session-wide fault configuration: (FaultPlan, seed) or None.  Set by
#: the CLI's --fault-* flags; when None, build_stack produces exactly
#: the stack it always did (zero-cost default).
_default_fault_plan = None
#: BlockQueues built while a fault plan was active (for reporting).
_fault_queues: List = []
#: Session-wide tracing: when True, every stack built by build_stack
#: gets a SpanBuilder attached to its bus.  Off by default, in which
#: case no bus subscriber exists and the stack is byte-identical to an
#: untraced one (events are never even constructed).
_trace_enabled = False
#: SpanBuilders attached while tracing was enabled, in stack-creation
#: order (the order drain_spans concatenates).
_span_builders: List = []
#: Session-wide block-layer queue depth, set by the CLI's
#: --queue-depth flag.  StackConfigs with queue_depth=None inherit it;
#: an explicit config value always wins.
_default_queue_depth = 1
#: Session-wide hedged-dispatch flag (the CLI's --hedge).  StackConfigs
#: with hedge=None inherit it; an explicit config value always wins.
_default_hedge = False
#: Session-wide analytical fast-forward flag (the CLI's
#: --fast-forward).  StackConfigs with fast_forward=None inherit it; an
#: explicit config value always wins.
_default_fast_forward = False
#: Session-wide shard count for cluster experiments (the CLI's
#: --shards).  Sharded runs asked for ``shards=None`` inherit it.
_default_shards = 1
#: Session-wide runtime-sanitizer flag (the CLI's --sanitize).
#: StackConfigs with sanitize=None inherit it; an explicit config
#: value always wins.  The REPRO_SANITIZE environment variable seeds
#: it so a whole pytest run can be sanitized without touching argv
#: (the CI sanitized-tier1 job).
_default_sanitize = bool(os.environ.get("REPRO_SANITIZE"))
#: Fault summaries forwarded from shard worker processes (already
#: rendered to dicts — the queues live in other address spaces).
_forwarded_fault_summaries: List[Dict] = []
#: Span lists forwarded from shard worker processes, in node order.
_forwarded_spans: List[Dict] = []


def set_default_queue_depth(depth: int) -> None:
    """Install the session queue depth for stacks that don't pin one."""
    global _default_queue_depth
    if depth < 1:
        raise ValueError(f"queue depth must be >= 1, got {depth}")
    _default_queue_depth = depth


def default_queue_depth() -> int:
    """The session queue depth (1 unless --queue-depth raised it)."""
    return _default_queue_depth


def set_default_hedge(hedge: bool) -> None:
    """Install the session hedged-dispatch flag for unpinned stacks."""
    global _default_hedge
    _default_hedge = bool(hedge)


def default_hedge() -> bool:
    """The session hedge flag (False unless --hedge set it)."""
    return _default_hedge


def set_default_fast_forward(fast_forward: bool) -> None:
    """Install the session fast-forward flag for unpinned stacks."""
    global _default_fast_forward
    _default_fast_forward = bool(fast_forward)


def default_fast_forward() -> bool:
    """The session fast-forward flag (False unless --fast-forward)."""
    return _default_fast_forward


def set_default_shards(shards: int) -> None:
    """Install the session shard count for cluster runs that don't pin one."""
    global _default_shards
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    _default_shards = shards


def default_shards() -> int:
    """The session shard count (1 unless --shards raised it)."""
    return _default_shards


def set_default_sanitize(sanitize: bool) -> None:
    """Install the session runtime-sanitizer flag for unpinned stacks."""
    global _default_sanitize
    _default_sanitize = bool(sanitize)


def default_sanitize() -> bool:
    """The session sanitize flag (off unless --sanitize/REPRO_SANITIZE)."""
    return _default_sanitize


def make_environment(sanitize: Optional[bool] = None):
    """A fresh Environment — sanitized when the flag (or session) asks.

    The production :class:`~repro.sim.core.Environment` carries no
    sanitizer attribute or branch; enabling the checks swaps in the
    :class:`~repro.analysis.sanitizer.SanitizedEnvironment` subclass
    instead, so the off state is provably zero-cost.
    """
    effective = _default_sanitize if sanitize is None else sanitize
    if effective:
        from repro.analysis.sanitizer import SanitizedEnvironment

        return SanitizedEnvironment()
    return Environment()


def enable_tracing() -> None:
    """Attach a SpanBuilder to every stack built until disabled.

    Like the fault session, enabling starts a fresh trace session:
    builders from a previous session are forgotten.
    """
    global _trace_enabled
    _trace_enabled = True
    _span_builders.clear()


def disable_tracing() -> None:
    """Stop attaching span builders and forget tracked ones."""
    global _trace_enabled
    _trace_enabled = False
    _span_builders.clear()


def tracing_enabled() -> bool:
    """Is the session trace flag set?"""
    return _trace_enabled


def drain_spans() -> List[Dict]:
    """Spans of every traced stack built so far, in creation order.

    Builders are detached and forgotten, so consecutive cells in one
    process never report each other's spans.  Spans forwarded from
    shard worker processes (see :func:`add_forwarded_spans`) follow the
    locally-built stacks' spans, already merged in node order.
    """
    spans: List[Dict] = []
    for builder in _span_builders:
        spans.extend(builder.spans)
        builder.close()
    _span_builders.clear()
    spans.extend(_forwarded_spans)
    _forwarded_spans.clear()
    return spans


def add_forwarded_spans(spans: List[Dict]) -> None:
    """Register spans produced inside shard worker processes.

    A sharded run's worker shards trace their node stacks locally and
    ship the span dicts back at the end of the run; the coordinator
    registers them here so :func:`drain_spans` reports them alongside
    (after) any stacks built in this process — keeping the runner's
    cell-order merge identical whether a cell sharded or not.
    """
    _forwarded_spans.extend(spans)


def add_forwarded_fault_summaries(summaries: List[Dict]) -> None:
    """Register fault summaries produced inside shard worker processes.

    Like :func:`add_forwarded_spans`, but for the per-queue fault
    summaries of faulty node stacks built in worker shards.
    """
    _forwarded_fault_summaries.extend(summaries)


def set_default_fault_plan(plan, seed: int = 0) -> None:
    """Install *plan* for every stack built until cleared.

    Every subsequent :func:`build_stack` wraps its device in a
    :class:`~repro.faults.FaultyDevice` driven by an injector seeded
    from *seed*, and arms the plan's power loss (if any).

    Installing a plan starts a fresh fault *session*: queues tracked
    under a previous plan are forgotten, so running two experiments in
    one process never reports the first one's stacks in the second's
    :func:`drain_fault_summaries`.
    """
    global _default_fault_plan
    _default_fault_plan = (plan, seed) if plan is not None and not plan.empty else None
    _fault_queues.clear()
    _forwarded_fault_summaries.clear()


def clear_default_fault_plan() -> None:
    """Remove the session fault plan and forget tracked queues."""
    global _default_fault_plan
    _default_fault_plan = None
    _fault_queues.clear()
    _forwarded_fault_summaries.clear()


def default_fault_plan():
    """The session ``(plan, seed)`` pair, or None (for shard workers)."""
    return _default_fault_plan


def drain_fault_summaries() -> List[Dict]:
    """Fault statistics of every faulty stack built so far (and reset).

    Summaries forwarded from shard worker processes follow the locally
    tracked queues', already merged in node order.
    """
    from repro.metrics.recorders import fault_summary

    summaries = [fault_summary(queue) for queue in _fault_queues]
    _fault_queues.clear()
    summaries.extend(_forwarded_fault_summaries)
    _forwarded_fault_summaries.clear()
    return summaries


def make_device(kind: str):
    """Device factory: 'hdd' or 'ssd'."""
    if kind == "hdd":
        return HDD()
    if kind == "ssd":
        return SSD()
    raise ValueError(f"unknown device kind {kind!r}")


def reset_id_counters() -> None:
    """Restart the global Task/BlockRequest/Inode id counters at 1.

    Workload generators seed their default RNG from ``task.pid``, so a
    stack's results depend on the absolute counter values.  Resetting at
    every :func:`build_stack` gives each stack a fresh, self-contained
    id namespace: a run produces the same numbers whether it executes
    first or fifth in a batch, in-process or in a pool worker — the
    property the parallel runner's byte-identical guarantee rests on.
    """
    from repro.block.request import BlockRequest
    from repro.fs.inode import Inode
    from repro.fs.journal import Transaction
    from repro.proc import Task

    Task._pids = itertools.count(1)
    BlockRequest._ids = itertools.count(1)
    Inode._ids = itertools.count(1)
    # Transaction ids label journal spans; resetting keeps span output
    # identical whether a stack runs first or fifth in a batch.
    Transaction._tids = itertools.count(1)


def build_stack(config: Optional[StackConfig] = None, **kwargs):
    """A fresh (env, OS) pair for one experimental run.

    Preferred form: ``build_stack(StackConfig(device="ssd",
    scheduler="cfq"))`` — one declarative object naming the whole
    machine, serializable for the parallel runner's workers.  The
    historical keyword surface (``scheduler=...``, ``device=...``,
    ``fs_class=...``) still works and is folded into a StackConfig via
    :meth:`~repro.config.StackConfig.from_kwargs`.

    The default memory size is deliberately smaller than the paper's
    16 GB testbed: the simulated workloads are scaled down in the same
    proportion, keeping the dirty-ratio and cache dynamics equivalent
    while the simulation stays fast.

    If the config carries a fault plan — or, failing that, a session
    fault plan is installed (see :func:`set_default_fault_plan`) — the
    device is wrapped in a fault-injecting proxy; otherwise the stack
    is byte-identical to the fault-free one.  Likewise
    ``config.queue_depth=None`` inherits the session depth (the CLI's
    ``--queue-depth``), which defaults to the classic serial 1.
    """
    if not isinstance(config, StackConfig):
        if config is not None:
            kwargs["scheduler"] = config  # legacy positional scheduler
        config = StackConfig.from_kwargs(**kwargs)
    elif kwargs:
        raise TypeError(
            "pass either a StackConfig or keyword overrides, not both "
            "(use config.replace(...) to derive a variant)"
        )
    env = make_environment(config.sanitize)
    machine = build_node(env, config)
    return env, machine


def build_node(env, config: StackConfig, node_index: Optional[int] = None):
    """Assemble one machine from *config* inside an existing *env*.

    The single-stack :func:`build_stack` is ``Environment()`` plus this;
    the sharded simulation core calls it once per DataNode to house a
    whole fleet partition in one shard Environment.  ``node_index``
    namespaces the node's fault RNG stream (and offsets its fault seed)
    so co-hosted nodes under one plan draw *distinct* fault sequences —
    deterministically per node, independent of which shard hosts it.
    """
    scheduler = config.make_scheduler()
    reset_id_counters()
    dev = make_device(config.device)
    plan_seed = None
    explicit_plan = config.make_fault_plan()
    if explicit_plan is not None and not explicit_plan.empty:
        plan_seed = (explicit_plan, config.fault_seed)
    elif _default_fault_plan is not None:
        plan_seed = _default_fault_plan
    injector = None
    if plan_seed is not None:
        from repro.faults import FaultInjector, FaultyDevice
        from repro.sim.rand import RandomStreams

        plan, seed = plan_seed
        if node_index is not None:
            seed = seed + 7919 * node_index
            stream_name = f"faults.node{node_index}.{dev.name}"
        else:
            stream_name = f"faults.{dev.name}"
        streams = RandomStreams(seed)
        injector = FaultInjector(env, plan, streams, stream_name=stream_name)
        dev = FaultyDevice(dev, injector)
    queue_depth = (
        config.queue_depth if config.queue_depth is not None else _default_queue_depth
    )
    hedge = config.hedge if config.hedge is not None else _default_hedge
    fast_forward = (
        config.fast_forward
        if config.fast_forward is not None
        else _default_fast_forward
    )
    os_kwargs = dict(
        device=dev,
        scheduler=scheduler,
        memory_bytes=config.memory_bytes,
        cores=config.cores,
        writeback_enabled=config.writeback_enabled,
        writeback_config=config.make_writeback_config(),
        queue_depth=queue_depth,
        hedge=hedge,
        health=config.health,
        fast_forward=fast_forward,
    )
    fs_class = config.make_fs_class()
    if fs_class is not None:
        os_kwargs["fs_class"] = fs_class
    machine = OS(env, **os_kwargs)
    if injector is not None:
        injector.arm_power_loss()
        _fault_queues.append(machine.block_queue)
    if _trace_enabled:
        from repro.obs import SpanBuilder

        _span_builders.append(SpanBuilder.attach(machine))
    sanitize = config.sanitize if config.sanitize is not None else _default_sanitize
    if sanitize:
        from repro.analysis.sanitizer import attach_sanitizer

        attach_sanitizer(machine)
    return machine


def settle(env, proc) -> None:
    """Run the simulation until *proc* (a setup Process) completes."""
    env.run(until=proc)


def drive(env, generator):
    """Run one generator to completion and return its value."""
    proc = env.process(generator)
    env.run(until=proc)
    return proc.value


def run_for(env, duration: float) -> None:
    """Advance the simulation by *duration* seconds."""
    env.run(until=env.now + duration)


def format_table(headers: List[str], rows: Iterable[Iterable]) -> str:
    """Simple fixed-width table used by the benchmark printers."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
