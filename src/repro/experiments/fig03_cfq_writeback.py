"""Figure 3: CFQ ignores priorities for buffered writes.

Eight threads (priorities 0–7) write sequentially to their own files.
Left plot: each thread's throughput share vs the priority-proportional
expectation.  Right plot: the *submitter* priority CFQ actually sees —
everything arrives from the priority-4 writeback task.
"""

from __future__ import annotations

from typing import Dict

from repro.config import StackConfig
from repro.experiments.common import build_stack, run_for
from repro.metrics.recorders import ThroughputTracker, deviation_from_ideal
from repro.units import GB, MB
from repro.workloads import sequential_writer


def run(duration: float = 30.0, chunk: int = 1 * MB, memory_bytes: int = 1 * GB) -> Dict:
    env, machine = build_stack(StackConfig(scheduler="cfq", device="hdd", memory_bytes=memory_bytes))

    #: Tally the priority of the task that SUBMITTED each block write —
    #: what a block-level scheduler can observe.
    submit_prios: Dict[int, int] = {p: 0 for p in range(8)}

    def observe(request):
        if request.is_write:
            submit_prios[request.submitter.priority] += request.nblocks

    machine.block_queue.completion_listeners.append(observe)

    trackers = {}
    for prio in range(8):
        task = machine.spawn(f"writer-p{prio}", priority=prio)
        tracker = trackers[prio] = ThroughputTracker()
        env.process(
            sequential_writer(machine, task, f"/out{prio}", duration, chunk=chunk, tracker=tracker)
        )
    run_for(env, duration)

    rates = {p: trackers[p].rate(until=env.now) / MB for p in range(8)}
    total_requests = sum(submit_prios.values()) or 1
    ideal = {p: 8 - p for p in range(8)}
    return {
        "throughput_mbps": rates,
        "deviation_pct": deviation_from_ideal(rates, ideal),
        "ideal_weights": ideal,
        "submitter_priority_share": {
            p: submit_prios[p] / total_requests for p in range(8)
        },
    }
