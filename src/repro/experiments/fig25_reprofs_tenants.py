"""Figure 25 (reproduction extension): file-API tenants under reprofs.

ROADMAP item 3's payoff experiment: two *real* file-API workloads — no
hand-written simulation generators — run against one device through
the `reprofs` frontend, and only the split framework isolates them:

- the **scan** tenant is a parquet-style columnar reader: it opens one
  columnar file, reads the footer, then for each row group reads the
  selected column chunks (synchronous code, bridged onto the simulation
  by the driver pump);
- the **loader** tenant is a random-read dataset loader: a handful of
  reader threads each pick a random shard and a random offset and pull
  a block, the access pattern of a shuffling ML input pipeline.

Both tenants are `ReproFileSystem` instances sharing one stack, so
every byte carries its tenant's cause set.  Under CFQ the loader's
random reads shred the scan's sequential throughput; under Split-Token
a rate contract on the loader's account holds the reads below the
cache, and the scan keeps most of its solo bandwidth.

Reported per scheduler: solo scan MB/s, contended scan MB/s, their
ratio (*retention*, the isolation metric), and loader MB/s.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.config import StackConfig
from repro.experiments.common import build_stack
from repro.units import KB, MB, PAGE_SIZE

DEFAULT_SCHEDULERS = ("cfq", "split-token")


def _layout(scanfs, loadfs, scan_bytes, row_groups, columns, footer,
            shards, shard_bytes):
    """Create both datasets through the file API, durable and cold."""
    chunk = scan_bytes // (row_groups * columns)
    scanfs.makedirs("/data", exist_ok=True)
    with scanfs.open("/data/events.parquet", "wb") as f:
        for _ in range(row_groups * columns):
            f.write(b"\x00" * chunk)
        f.write(b"\x00" * footer)
        f.flush()
        f.handle.drop_cache()
    loadfs.makedirs("/train", exist_ok=True)
    for i in range(shards):
        with loadfs.open(f"/train/shard-{i:03d}.bin", "wb") as f:
            f.write(b"\x00" * shard_bytes)
            f.flush()
            f.handle.drop_cache()
    return chunk


def _loader_thread(handles, shard_bytes, chunk, rng, counter, stop):
    """Generator: random-read loop over the shard files."""
    span = max(1, (shard_bytes - chunk) // PAGE_SIZE)
    while not stop[0]:
        handle = handles[rng.randrange(len(handles))]
        offset = rng.randrange(0, span) * PAGE_SIZE
        n = yield from handle.pread(offset, chunk)
        counter[0] += n


def _columnar_scan(scanfs, path, chunk, row_groups, columns,
                   selected_columns, footer, passes):
    """Synchronous parquet-style scan; returns bytes actually read.

    Runs *passes* query iterations (cache dropped between them, like a
    fresh job each time) so the measurement spans many scheduler time
    slices — a single pass fits inside one CFQ slice at small scale.
    """
    got = 0
    for _ in range(passes):
        with scanfs.open(path, "rb") as f:
            f.handle.drop_cache()  # a fresh job: nothing resident
            f.seek(-footer, 2)
            got += len(f.read(footer))
            for rg in range(row_groups):
                for col in range(selected_columns):
                    f.seek((rg * columns + col) * chunk)
                    got += len(f.read(chunk))
    return got


def tenant_cell(
    config: Dict,
    contended: bool = True,
    scan_bytes: int = 32 * MB,
    row_groups: int = 8,
    columns: int = 4,
    selected_columns: int = 2,
    footer: int = 64 * KB,
    shards: int = 8,
    shard_bytes: int = 8 * MB,
    loader_threads: int = 4,
    loader_chunk: int = 256 * KB,
    loader_rate: float = 4 * MB,
    scan_passes: int = 8,
    seed: int = 0,
) -> Dict:
    """One cell: the scan (optionally against the loader) on one stack."""
    from repro.vfs.reprofs import ReproFileSystem

    config = StackConfig.from_dict(config)
    env, machine = build_stack(config)
    scanfs = ReproFileSystem(machine=machine, tenant="scan")
    loadfs = ReproFileSystem(machine=machine, tenant="loader")
    chunk = _layout(
        scanfs, loadfs, scan_bytes, row_groups, columns, footer,
        shards, shard_bytes,
    )

    limiter = getattr(machine.scheduler, "set_limit", None)
    if limiter is not None:
        limiter(loadfs.task, loader_rate)

    loader_bytes = [0]
    stop = [False]
    if contended:
        rng = random.Random(seed)
        handles = [
            loadfs.open_handle(f"/train/shard-{i:03d}.bin", mode="r")
            for i in range(shards)
        ]
        for t in range(loader_threads):
            loadfs.process(
                _loader_thread(
                    handles, shard_bytes, loader_chunk,
                    random.Random(seed * 1000 + t), loader_bytes, stop,
                ),
                name=f"loader-{t}",
            )

    start = env.now
    got = _columnar_scan(
        scanfs, "/data/events.parquet", chunk, row_groups, columns,
        selected_columns, footer, scan_passes,
    )
    stop[0] = True
    elapsed = max(env.now - start, 1e-9)
    return {
        "scan_mbps": got / elapsed / MB,
        "scan_bytes": got,
        "loader_mbps": loader_bytes[0] / elapsed / MB,
        "elapsed": elapsed,
        "episodes": scanfs.pump.episodes,
    }


def cells(
    schedulers: List[str] = DEFAULT_SCHEDULERS,
    memory_bytes: int = 32 * MB,
    **params,
):
    """Per scheduler: one solo cell and one contended cell."""
    out = []
    for sched in schedulers:
        config = StackConfig(
            device="hdd", scheduler=sched, memory_bytes=memory_bytes
        )
        for contended in (False, True):
            label = "contended" if contended else "solo"
            out.append(
                (f"{sched}/{label}", "tenant_cell",
                 dict(config=config.to_dict(), contended=contended, **params))
            )
    return out


def merge(pairs, schedulers: List[str] = DEFAULT_SCHEDULERS, **_ignored) -> Dict:
    """Reassemble ordered (label, cell) pairs into run()'s output."""
    schedulers = list(schedulers)
    ordered = iter(pairs)
    points = []
    for sched in schedulers:
        _, solo = next(ordered)
        _, contended = next(ordered)
        points.append({
            "scheduler": sched,
            "scan_solo_mbps": solo["scan_mbps"],
            "scan_contended_mbps": contended["scan_mbps"],
            "retention": contended["scan_mbps"] / (solo["scan_mbps"] or 1.0),
            "loader_mbps": contended["loader_mbps"],
        })
    return {
        "schedulers": schedulers,
        "points": points,
        "retention": {p["scheduler"]: p["retention"] for p in points},
    }


def run(schedulers: List[str] = DEFAULT_SCHEDULERS, **kwargs) -> Dict:
    """The whole figure in-process (the CLI fans cells out instead)."""
    cell_list = cells(schedulers=list(schedulers), **kwargs)
    namespace = globals()
    pairs = [
        (label, namespace[func](**cell_kwargs))
        for label, func, cell_kwargs in cell_list
    ]
    return merge(pairs, schedulers=list(schedulers), **kwargs)
