"""Figure 1: a one-second random-write burst from an idle-priority
process devastates a sequential reader under CFQ; the split stack
(AFQ honouring the idle class at admission) keeps the reader fast.

Reported series: the reader's throughput per second, before/during/
after the burst, for each scheduler.
"""

from __future__ import annotations

from typing import Dict

from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.metrics.recorders import TimeSeries
from repro.schedulers import make_scheduler
from repro.units import MB
from repro.workloads import prefill_file, random_write_burst, sequential_reader


def _reader_with_series(os_, task, path, duration, series):
    """Sequential reader sampling its throughput every second."""
    env = os_.env
    from repro.metrics.recorders import ThroughputTracker

    tracker = ThroughputTracker()

    def sampler():
        last = 0
        while env.now < duration:
            yield env.timeout(1.0)
            series.record(env.now, (tracker.bytes_total - last) / MB)
            last = tracker.bytes_total

    env.process(sampler(), name="sampler")
    yield from sequential_reader(os_, task, path, duration, chunk=1 * MB, tracker=tracker, cold=True)


def run(
    scheduler: str = "cfq",
    duration: float = 60.0,
    burst_bytes: int = 48 * MB,
    burst_at: float = 10.0,
    reader_file: int = 128 * MB,
    memory_bytes: int = 192 * MB,
) -> Dict:
    """Memory is sized (as in the paper, relative to the burst) so B's
    burst exceeds the background-writeback threshold: the flood of
    random writeback starts immediately and haunts the disk long after
    B finished dirtying."""
    """One run; returns the reader's per-second series and summaries."""
    if scheduler == "cfq":
        sched = make_scheduler("cfq")
    elif scheduler == "split":
        sched = make_scheduler("afq")
    else:
        raise ValueError(f"scheduler must be 'cfq' or 'split', got {scheduler!r}")

    env, machine = build_stack(StackConfig(scheduler=sched, device="hdd", memory_bytes=memory_bytes))
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/reader", reader_file)

    drive(env, setup_proc())

    reader = machine.spawn("A-reader", priority=4)
    #: B runs in the ionice *idle* class — CFQ's contract that buffered
    #: writes break.
    burster = machine.spawn("B-burster", priority=7, idle_class=True)
    series = TimeSeries("A MB/s")
    start = env.now
    env.process(_reader_with_series(machine, reader, "/reader", start + duration, series))

    def burst():
        yield env.timeout(burst_at)
        yield from random_write_burst(machine, burster, "/victim", burst_bytes, file_size=4 * burst_bytes)

    burst_proc = env.process(burst())
    run_for(env, duration)

    before = series.window_average(0, burst_at)
    after = series.window_average(burst_at + 2, duration)
    return {
        "scheduler": scheduler,
        "series_t": series.times,
        "series_mbps": series.values,
        "reader_before_mbps": before,
        "reader_after_mbps": after,
        "degradation": before / after if after > 0 else float("inf"),
        "burst_finished": not burst_proc.is_alive,
    }


def cells(**kwargs):
    """Parallelisable cells: one full run per scheduler."""
    return [(name, "run", dict(scheduler=name, **kwargs)) for name in ("cfq", "split")]


def merge(pairs, **kwargs) -> Dict[str, Dict]:
    return dict(pairs)


def run_comparison(**kwargs) -> Dict[str, Dict]:
    return merge([(label, run(**cell_kwargs)) for label, _func, cell_kwargs in cells(**kwargs)])
