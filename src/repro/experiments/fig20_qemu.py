"""Figure 20: whole-VM isolation with QEMU over SCS vs Split-Token.

VMs A (unthrottled reader) and B (throttled, six workloads) run as
nested guest stacks over host image files; the host throttles the
whole VM (its host task).  Isolation mirrors Figure 14, but the
memory-bound B workloads are now fast under BOTH schedulers: the
guest's own page cache sits above the host's scheduling layer.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.qemu import QemuVM
from repro.config import StackConfig
from repro.experiments.common import build_stack, drive, run_for
from repro.experiments.isolation import SIX_WORKLOADS, make_scheduler
from repro.metrics.recorders import ThroughputTracker
from repro.units import GB, KB, MB
from repro.workloads import (
    prefill_file,
    run_pattern_reader,
    run_pattern_writer,
    sequential_overwriter,
    sequential_reader,
)


def _guest_workload(vm, task, workload: str, duration: float, tracker):
    guest = vm.guest
    if workload == "read-mem":
        return sequential_reader(guest, task, "/hot", duration, chunk=64 * KB, tracker=tracker)
    if workload == "read-seq":
        return run_pattern_reader(guest, task, "/data", 32 * MB, duration, tracker=tracker)
    if workload == "read-rand":
        return run_pattern_reader(guest, task, "/data", 4 * KB, duration, tracker=tracker)
    if workload == "write-mem":
        return sequential_overwriter(guest, task, "/hot", duration, region=4 * MB, tracker=tracker)
    if workload == "write-seq":
        return run_pattern_writer(guest, task, "/data", 32 * MB, duration, tracker=tracker)
    if workload == "write-rand":
        return run_pattern_writer(guest, task, "/data", 4 * KB, duration, tracker=tracker)
    raise ValueError(f"unknown workload {workload!r}")


def run_cell(
    scheduler_kind: str,
    b_workload: str,
    rate_limit: float = 1 * MB,
    duration: float = 15.0,
    image_bytes: int = 256 * MB,
) -> Dict:
    scheduler = make_scheduler(scheduler_kind)
    env, host = build_stack(StackConfig(scheduler=scheduler, device="hdd", memory_bytes=2 * GB, cores=4))

    vm_a = QemuVM(host, name="vmA", image_bytes=image_bytes, guest_memory=256 * MB)
    vm_b = QemuVM(host, name="vmB", image_bytes=image_bytes, guest_memory=256 * MB)

    def setup_proc():
        yield from vm_a.boot()
        yield from vm_b.boot()
        guest_setup_a = vm_a.spawn("setup")
        guest_setup_b = vm_b.spawn("setup")
        yield from prefill_file(vm_a.guest, guest_setup_a, "/data", 128 * MB)
        yield from prefill_file(vm_b.guest, guest_setup_b, "/data", 128 * MB)
        yield from prefill_file(vm_b.guest, guest_setup_b, "/hot", 4 * MB, drop=False)

    drive(env, setup_proc())
    # Throttle the whole of VM B at the host.
    scheduler.set_limit(vm_b.host_task, rate_limit)

    a_task = vm_a.spawn("reader")
    b_task = vm_b.spawn("worker")
    a_tracker, b_tracker = ThroughputTracker(), ThroughputTracker()
    env.process(
        sequential_reader(vm_a.guest, a_task, "/data", duration, chunk=1 * MB, tracker=a_tracker, cold=True)
    )
    env.process(_guest_workload(vm_b, b_task, b_workload, duration, b_tracker))
    run_for(env, duration)
    return {
        "a_mbps": a_tracker.rate(until=env.now) / MB,
        "b_mbps": b_tracker.rate(until=env.now) / MB,
    }


def run(workloads=SIX_WORKLOADS, **kwargs) -> Dict:
    results: Dict = {"workloads": list(workloads)}
    for kind in ("scs", "split"):
        a_series, b_series = [], []
        for workload in workloads:
            cell = run_cell(kind, workload, **kwargs)
            a_series.append(cell["a_mbps"])
            b_series.append(cell["b_mbps"])
        results[f"{kind}_a_mbps"] = a_series
        results[f"{kind}_b_mbps"] = b_series
    return results
