"""repro — a reproduction of "Split-Level I/O Scheduling" (SOSP 2015).

The package simulates a complete Linux-like storage stack (system-call
layer, page cache + writeback, journaling filesystems, block layer,
HDD/SSD device models) as a discrete-event simulation, implements the
paper's split-level scheduling framework on top of it, and regenerates
every figure and table of the paper's evaluation.

Quickstart::

    from repro import Environment, OS, HDD
    from repro.schedulers import SplitToken

    env = Environment()
    scheduler = SplitToken()
    machine = OS(env, device=HDD(), scheduler=scheduler)
    ...
"""

from repro.sim import Environment
from repro.syscall import OS, FileHandle, OpenFile
from repro.devices import HDD, SSD
from repro.proc import Task
from repro.units import GB, KB, MB, PAGE_SIZE

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "FileHandle",
    "GB",
    "HDD",
    "KB",
    "MB",
    "OS",
    "OpenFile",
    "PAGE_SIZE",
    "SSD",
    "Task",
    "__version__",
]
