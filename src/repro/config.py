"""Declarative stack assembly: one frozen config object per machine.

:class:`StackConfig` names everything that distinguishes one simulated
stack from another — device model, scheduler, memory size, filesystem,
writeback tunables, CPU cores, block-layer queue depth, and an optional
fault plan.  Experiments construct one and hand it to
:func:`repro.experiments.common.build_stack`; the parallel runner
serializes it (:meth:`to_dict` / :meth:`from_dict`) so worker processes
rebuild byte-identical stacks; the CLI's ``--queue-depth`` and
``--fault-*`` flags are just session-level defaults for fields left
unset here.

The config is *pure description*: no Environment, no processes, no
side effects.  Construction stays in ``build_stack`` so a config can be
created, compared, serialized, and shipped across process boundaries
freely.  Scheduler and filesystem fields accept either registry names
(``"cfq"``, ``"ext4"`` — the serializable spelling) or live
instances/classes (convenient in-process); :meth:`to_dict` insists on
the nameable forms because a worker must be able to rebuild the object.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.units import GB

#: Filesystem registry: serializable name -> class path resolver.
FS_NAMES = ("ext4", "xfs")


def resolve_fs(fs: Any):
    """A filesystem class from a name, a class, or None (stack default)."""
    if fs is None or isinstance(fs, type):
        return fs
    if isinstance(fs, str):
        from repro.fs import XFS, Ext4

        table = {"ext4": Ext4, "xfs": XFS}
        try:
            return table[fs]
        except KeyError:
            raise ValueError(
                f"unknown filesystem {fs!r}; valid choices: {', '.join(FS_NAMES)}"
            ) from None
    raise TypeError(f"fs must be a name, a class, or None, got {fs!r}")


def fs_name(fs: Any) -> Optional[str]:
    """The serializable name of a filesystem field value."""
    if fs is None:
        return None
    if isinstance(fs, str):
        resolve_fs(fs)  # validate
        return fs
    name = getattr(fs, "__name__", "").lower()
    if name in FS_NAMES:
        return name
    raise ValueError(f"filesystem {fs!r} has no registry name; use 'ext4'/'xfs'")


def _writeback_to_dict(config) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    if isinstance(config, dict):
        return dict(config)
    return {
        "dirty_background_ratio": config.dirty_background_ratio,
        "dirty_ratio": config.dirty_ratio,
        "dirty_expire": config.dirty_expire,
        "wakeup_interval": config.wakeup_interval,
        "batch_pages": config.batch_pages,
    }


def resolve_writeback(writeback: Any):
    """A WritebackConfig from a config instance, a kwargs dict, or None."""
    if writeback is None:
        return None
    if isinstance(writeback, dict):
        from repro.cache.writeback import WritebackConfig

        return WritebackConfig(**writeback)
    return writeback


def _health_to_dict(health: Any):
    """The serializable form of a StackConfig ``health`` field."""
    if health is None or isinstance(health, (bool, dict)):
        return health
    return health.to_dict()  # a HealthConfig


def _fault_plan_to_dict(plan) -> Optional[Dict[str, Any]]:
    if plan is None:
        return None
    if isinstance(plan, dict):
        return dict(plan)
    return {
        "read_error_prob": plan.read_error_prob,
        "write_error_prob": plan.write_error_prob,
        "error_latency": plan.error_latency,
        "error_windows": [list(w) for w in plan.error_windows],
        "slow_factor": plan.slow_factor,
        "slow_windows": [list(w) for w in plan.slow_windows],
        "stall_prob": plan.stall_prob,
        "stall_duration": plan.stall_duration,
        "power_loss_at": plan.power_loss_at,
        "channel_faults": [list(f) for f in plan.channel_faults],
        "hiccups": [list(h) for h in plan.hiccups],
    }


def resolve_fault_plan(plan: Any):
    """A FaultPlan from an instance, a to_dict() payload, or None."""
    if plan is None:
        return None
    if isinstance(plan, dict):
        from repro.faults.plan import ChannelFault, FaultPlan, FaultWindow, Hiccup, SlowWindow

        payload = dict(plan)
        payload["error_windows"] = [
            FaultWindow(*w) for w in payload.get("error_windows") or ()
        ]
        payload["slow_windows"] = [
            SlowWindow(*w) for w in payload.get("slow_windows") or ()
        ]
        # .get: payloads serialized before these fault models existed
        # (and hand-written dicts) still resolve.
        payload["channel_faults"] = [
            ChannelFault(*f) for f in payload.get("channel_faults") or ()
        ]
        payload["hiccups"] = [Hiccup(*h) for h in payload.get("hiccups") or ()]
        return FaultPlan(**payload)
    return plan


@dataclass(frozen=True)
class StackConfig:
    """Everything that defines one simulated storage stack.

    Fields accepting both names and instances:

    - ``scheduler``: a :data:`repro.schedulers.REGISTRY` name, a live
      scheduler object, or None (Noop);
    - ``fs``: ``"ext4"``, ``"xfs"``, a filesystem class, or None
      (the OS default, ext4);
    - ``writeback``: a ``WritebackConfig``, its kwargs as a dict, or
      None (defaults);
    - ``fault_plan``: a ``FaultPlan``, its ``to_dict`` payload, or None
      (fall back to the session plan installed by the CLI).

    ``queue_depth=None`` defers to the session default (1 unless the
    CLI's ``--queue-depth`` raised it); an explicit integer pins the
    stack's dispatch depth regardless of session state.
    """

    device: str = "hdd"
    scheduler: Any = None
    memory_bytes: int = 1 * GB
    fs: Any = None
    writeback_enabled: bool = True
    writeback: Any = None
    cores: int = 8
    queue_depth: Optional[int] = None
    fault_plan: Any = None
    fault_seed: int = 0
    #: Hedged dispatch: None defers to the session default (off unless
    #: the CLI's ``--hedge`` set it); an explicit bool pins it.
    hedge: Optional[bool] = None
    #: Health monitoring: None = auto (attach when hedging or a fault
    #: plan is active), a bool forces it, a HealthConfig/dict tunes it.
    health: Any = None
    #: Analytical fast-forward (steady-state replay + batch pricing,
    #: see repro.sim.fastforward): None defers to the session default
    #: (off unless the CLI's ``--fast-forward`` set it); an explicit
    #: bool pins it.
    fast_forward: Optional[bool] = None

    def __post_init__(self):
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {self.memory_bytes}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    # -- field coercion ----------------------------------------------------

    def scheduler_name(self) -> Optional[str]:
        """The registry name of the scheduler field (for serialization)."""
        if self.scheduler is None or isinstance(self.scheduler, str):
            return self.scheduler
        name = getattr(self.scheduler, "name", None)
        from repro.schedulers import REGISTRY

        if name not in REGISTRY:
            raise ValueError(
                f"scheduler {self.scheduler!r} is not registry-nameable; "
                "pass its REGISTRY name to serialize this config"
            )
        return name

    def make_scheduler(self):
        """Instantiate (or pass through) the scheduler field."""
        if self.scheduler is None or not isinstance(self.scheduler, str):
            return self.scheduler
        from repro.schedulers import make_scheduler

        return make_scheduler(self.scheduler)

    def make_fs_class(self):
        return resolve_fs(self.fs)

    def make_writeback_config(self):
        return resolve_writeback(self.writeback)

    def make_fault_plan(self):
        return resolve_fault_plan(self.fault_plan)

    # -- serialization -----------------------------------------------------

    def replace(self, **changes) -> "StackConfig":
        """A copy with *changes* applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly payload; :meth:`from_dict` round-trips it.

        Scheduler and filesystem fields must be registry-nameable —
        the contract that lets the parallel runner ship a cell's config
        to a worker process and rebuild the identical stack there.
        """
        return {
            "device": self.device,
            "scheduler": self.scheduler_name(),
            "memory_bytes": self.memory_bytes,
            "fs": fs_name(self.fs),
            "writeback_enabled": self.writeback_enabled,
            "writeback": _writeback_to_dict(self.writeback),
            "cores": self.cores,
            "queue_depth": self.queue_depth,
            "fault_plan": _fault_plan_to_dict(self.fault_plan),
            "fault_seed": self.fault_seed,
            "hedge": self.hedge,
            "health": _health_to_dict(self.health),
            "fast_forward": self.fast_forward,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StackConfig":
        """Rebuild a config from a :meth:`to_dict` payload."""
        return cls(**payload)

    #: Legacy build_stack kwarg spellings -> config field names.
    _LEGACY_KWARGS = {"fs_class": "fs", "writeback_config": "writeback"}

    @classmethod
    def from_kwargs(cls, **kwargs) -> "StackConfig":
        """A config from ``build_stack``'s historical keyword surface."""
        mapped = {
            cls._LEGACY_KWARGS.get(key, key): value for key, value in kwargs.items()
        }
        return cls(**mapped)
