"""Declarative stack assembly: one frozen config object per machine.

:class:`StackConfig` names everything that distinguishes one simulated
stack from another — device model, scheduler, memory size, filesystem,
writeback tunables, CPU cores, block-layer queue depth, and an optional
fault plan.  Experiments construct one and hand it to
:func:`repro.experiments.common.build_stack`; the parallel runner
serializes it (:meth:`to_dict` / :meth:`from_dict`) so worker processes
rebuild byte-identical stacks; the CLI's ``--queue-depth`` and
``--fault-*`` flags are just session-level defaults for fields left
unset here.

The config is *pure description*: no Environment, no processes, no
side effects.  Construction stays in ``build_stack`` so a config can be
created, compared, serialized, and shipped across process boundaries
freely.  Scheduler and filesystem fields accept either registry names
(``"cfq"``, ``"ext4"`` — the serializable spelling) or live
instances/classes (convenient in-process); :meth:`to_dict` insists on
the nameable forms because a worker must be able to rebuild the object.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.units import GB, MB

#: Filesystem registry: serializable name -> class path resolver.
FS_NAMES = ("ext4", "xfs")


def resolve_fs(fs: Any):
    """A filesystem class from a name, a class, or None (stack default)."""
    if fs is None or isinstance(fs, type):
        return fs
    if isinstance(fs, str):
        from repro.fs import XFS, Ext4

        table = {"ext4": Ext4, "xfs": XFS}
        try:
            return table[fs]
        except KeyError:
            raise ValueError(
                f"unknown filesystem {fs!r}; valid choices: {', '.join(FS_NAMES)}"
            ) from None
    raise TypeError(f"fs must be a name, a class, or None, got {fs!r}")


def fs_name(fs: Any) -> Optional[str]:
    """The serializable name of a filesystem field value."""
    if fs is None:
        return None
    if isinstance(fs, str):
        resolve_fs(fs)  # validate
        return fs
    name = getattr(fs, "__name__", "").lower()
    if name in FS_NAMES:
        return name
    raise ValueError(f"filesystem {fs!r} has no registry name; use 'ext4'/'xfs'")


def _writeback_to_dict(config) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    if isinstance(config, dict):
        return dict(config)
    return {
        "dirty_background_ratio": config.dirty_background_ratio,
        "dirty_ratio": config.dirty_ratio,
        "dirty_expire": config.dirty_expire,
        "wakeup_interval": config.wakeup_interval,
        "batch_pages": config.batch_pages,
    }


def resolve_writeback(writeback: Any):
    """A WritebackConfig from a config instance, a kwargs dict, or None."""
    if writeback is None:
        return None
    if isinstance(writeback, dict):
        from repro.cache.writeback import WritebackConfig

        return WritebackConfig(**writeback)
    return writeback


def _health_to_dict(health: Any):
    """The serializable form of a StackConfig ``health`` field."""
    if health is None or isinstance(health, (bool, dict)):
        return health
    return health.to_dict()  # a HealthConfig


def _fault_plan_to_dict(plan) -> Optional[Dict[str, Any]]:
    if plan is None:
        return None
    if isinstance(plan, dict):
        return dict(plan)
    return {
        "read_error_prob": plan.read_error_prob,
        "write_error_prob": plan.write_error_prob,
        "error_latency": plan.error_latency,
        "error_windows": [list(w) for w in plan.error_windows],
        "slow_factor": plan.slow_factor,
        "slow_windows": [list(w) for w in plan.slow_windows],
        "stall_prob": plan.stall_prob,
        "stall_duration": plan.stall_duration,
        "power_loss_at": plan.power_loss_at,
        "channel_faults": [list(f) for f in plan.channel_faults],
        "hiccups": [list(h) for h in plan.hiccups],
    }


def resolve_fault_plan(plan: Any):
    """A FaultPlan from an instance, a to_dict() payload, or None."""
    if plan is None:
        return None
    if isinstance(plan, dict):
        from repro.faults.plan import ChannelFault, FaultPlan, FaultWindow, Hiccup, SlowWindow

        payload = dict(plan)
        payload["error_windows"] = [
            FaultWindow(*w) for w in payload.get("error_windows") or ()
        ]
        payload["slow_windows"] = [
            SlowWindow(*w) for w in payload.get("slow_windows") or ()
        ]
        # .get: payloads serialized before these fault models existed
        # (and hand-written dicts) still resolve.
        payload["channel_faults"] = [
            ChannelFault(*f) for f in payload.get("channel_faults") or ()
        ]
        payload["hiccups"] = [Hiccup(*h) for h in payload.get("hiccups") or ()]
        return FaultPlan(**payload)
    return plan


@dataclass(frozen=True)
class StackConfig:
    """Everything that defines one simulated storage stack.

    Fields accepting both names and instances:

    - ``scheduler``: a :data:`repro.schedulers.REGISTRY` name, a live
      scheduler object, or None (Noop);
    - ``fs``: ``"ext4"``, ``"xfs"``, a filesystem class, or None
      (the OS default, ext4);
    - ``writeback``: a ``WritebackConfig``, its kwargs as a dict, or
      None (defaults);
    - ``fault_plan``: a ``FaultPlan``, its ``to_dict`` payload, or None
      (fall back to the session plan installed by the CLI).

    ``queue_depth=None`` defers to the session default (1 unless the
    CLI's ``--queue-depth`` raised it); an explicit integer pins the
    stack's dispatch depth regardless of session state.
    """

    device: str = "hdd"
    scheduler: Any = None
    memory_bytes: int = 1 * GB
    fs: Any = None
    writeback_enabled: bool = True
    writeback: Any = None
    cores: int = 8
    queue_depth: Optional[int] = None
    fault_plan: Any = None
    fault_seed: int = 0
    #: Hedged dispatch: None defers to the session default (off unless
    #: the CLI's ``--hedge`` set it); an explicit bool pins it.
    hedge: Optional[bool] = None
    #: Health monitoring: None = auto (attach when hedging or a fault
    #: plan is active), a bool forces it, a HealthConfig/dict tunes it.
    health: Any = None
    #: Analytical fast-forward (steady-state replay + batch pricing,
    #: see repro.sim.fastforward): None defers to the session default
    #: (off unless the CLI's ``--fast-forward`` set it); an explicit
    #: bool pins it.
    fast_forward: Optional[bool] = None
    #: Runtime sanitizer (repro.analysis.sanitizer): invariant checks
    #: in the sim kernel, block layer, and shard channels.  None defers
    #: to the session default (off unless ``--sanitize`` or the
    #: REPRO_SANITIZE env var set it); an explicit bool pins it.
    sanitize: Optional[bool] = None

    def __post_init__(self):
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {self.memory_bytes}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")

    # -- field coercion ----------------------------------------------------

    def scheduler_name(self) -> Optional[str]:
        """The registry name of the scheduler field (for serialization)."""
        if self.scheduler is None or isinstance(self.scheduler, str):
            return self.scheduler
        name = getattr(self.scheduler, "name", None)
        from repro.schedulers import REGISTRY

        if name not in REGISTRY:
            raise ValueError(
                f"scheduler {self.scheduler!r} is not registry-nameable; "
                "pass its REGISTRY name to serialize this config"
            )
        return name

    def make_scheduler(self):
        """Instantiate (or pass through) the scheduler field."""
        if self.scheduler is None or not isinstance(self.scheduler, str):
            return self.scheduler
        from repro.schedulers import make_scheduler

        return make_scheduler(self.scheduler)

    def make_fs_class(self):
        return resolve_fs(self.fs)

    def make_writeback_config(self):
        return resolve_writeback(self.writeback)

    def make_fault_plan(self):
        return resolve_fault_plan(self.fault_plan)

    # -- serialization -----------------------------------------------------

    def replace(self, **changes) -> "StackConfig":
        """A copy with *changes* applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly payload; :meth:`from_dict` round-trips it.

        Scheduler and filesystem fields must be registry-nameable —
        the contract that lets the parallel runner ship a cell's config
        to a worker process and rebuild the identical stack there.
        """
        return {
            "device": self.device,
            "scheduler": self.scheduler_name(),
            "memory_bytes": self.memory_bytes,
            "fs": fs_name(self.fs),
            "writeback_enabled": self.writeback_enabled,
            "writeback": _writeback_to_dict(self.writeback),
            "cores": self.cores,
            "queue_depth": self.queue_depth,
            "fault_plan": _fault_plan_to_dict(self.fault_plan),
            "fault_seed": self.fault_seed,
            "hedge": self.hedge,
            "health": _health_to_dict(self.health),
            "fast_forward": self.fast_forward,
            "sanitize": self.sanitize,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StackConfig":
        """Rebuild a config from a :meth:`to_dict` payload."""
        return cls(**payload)

    #: Legacy build_stack kwarg spellings -> config field names.
    _LEGACY_KWARGS = {"fs_class": "fs", "writeback_config": "writeback"}

    @classmethod
    def from_kwargs(cls, **kwargs) -> "StackConfig":
        """A config from ``build_stack``'s historical keyword surface."""
        mapped = {
            cls._LEGACY_KWARGS.get(key, key): value for key, value in kwargs.items()
        }
        return cls(**mapped)


# ---------------------------------------------------------------------------
# cluster-level configuration (the sharded simulation core)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantContract:
    """One tenant's Split-Token contract, enforced on every node.

    ``rate_per_node`` is the normalized-bytes/second cap the tenant's
    local account is throttled to on each node it touches (None means
    unthrottled — the tenant competes freely).  The cluster-wide write
    bound follows as ``(rate_per_node / replication) * nodes``, exactly
    the dashed upper bound of the paper's Figure 21.
    """

    name: str
    rate_per_node: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "rate_per_node": self.rate_per_node}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TenantContract":
        return cls(**payload)


@dataclass(frozen=True)
class ClusterConfig:
    """A fleet of simulated machines plus topology and tenant contracts.

    Where :class:`StackConfig` describes one machine, a ClusterConfig
    describes *N* of them: a node template (``node``), per-node
    overrides for heterogeneous fleets (``node_overrides`` — e.g. a
    fault plan targeting only a subset of nodes), the replication
    factor and block/chunk sizes of the pipelined write path, the
    inter-node ``link_latency`` (which bounds the conservative sync
    window: shards advance in lockstep epochs no wider than the
    minimum cross-shard link latency), and the tenants whose
    Split-Token contracts every node enforces locally.

    Like StackConfig it is pure description — :mod:`repro.sim.shard`
    builds the actual per-shard environments from it, and
    :meth:`to_dict` / :meth:`from_dict` round-trip it across process
    boundaries so shard workers rebuild identical fleets.
    """

    nodes: int = 7
    node: StackConfig = field(
        default_factory=lambda: StackConfig(scheduler="split-token")
    )
    #: Per-node template overrides: ((node_index, StackConfig), ...).
    node_overrides: Tuple[Tuple[int, StackConfig], ...] = ()
    replication: int = 3
    block_size: int = 64 * MB
    chunk: int = 1 * MB
    #: One-way inter-node message latency in seconds; also the upper
    #: bound on the epoch width of the conservative sync protocol.
    link_latency: float = 0.5e-3
    tenants: Tuple[TenantContract, ...] = ()
    #: Seed for block placement (NameNode-style replica choice).
    seed: int = 0

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if not 1 <= self.replication <= self.nodes:
            raise ValueError(
                f"replication {self.replication} outside [1, {self.nodes}]"
            )
        if self.link_latency <= 0:
            raise ValueError(f"link_latency must be positive, got {self.link_latency}")
        if self.block_size < self.chunk:
            raise ValueError("block_size must be >= chunk")
        for index, _config in self.node_overrides:
            if not 0 <= index < self.nodes:
                raise ValueError(f"node_overrides index {index} outside the fleet")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    def node_config(self, index: int) -> StackConfig:
        """The effective StackConfig of node *index* (template + override)."""
        for override_index, config in self.node_overrides:
            if override_index == index:
                return config
        return self.node

    def contract(self, name: str) -> Optional[TenantContract]:
        """The tenant contract named *name*, or None if unknown."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        return None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly payload; :meth:`from_dict` round-trips it."""
        return {
            "nodes": self.nodes,
            "node": self.node.to_dict(),
            "node_overrides": [
                [index, config.to_dict()] for index, config in self.node_overrides
            ],
            "replication": self.replication,
            "block_size": self.block_size,
            "chunk": self.chunk,
            "link_latency": self.link_latency,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusterConfig":
        payload = dict(payload)
        payload["node"] = StackConfig.from_dict(payload["node"])
        payload["node_overrides"] = tuple(
            (index, StackConfig.from_dict(config))
            for index, config in payload.get("node_overrides") or ()
        )
        payload["tenants"] = tuple(
            TenantContract.from_dict(t) for t in payload.get("tenants") or ()
        )
        return cls(**payload)

    def replace(self, **changes) -> "ClusterConfig":
        """A copy with *changes* applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)
