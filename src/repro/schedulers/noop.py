"""No-op schedulers: FIFO dispatch, no policy.

Used directly as a baseline and as the framework-overhead yardstick of
Figure 9 (block no-op vs split no-op).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.block.elevator import BlockScheduler
from repro.block.request import BlockRequest
from repro.core.hooks import SplitScheduler


class Noop(BlockScheduler):
    """Block-level FIFO."""

    name = "noop"
    framework = "block"

    def __init__(self):
        super().__init__()
        self._fifo: deque = deque()

    def add_request(self, request: BlockRequest) -> None:
        self._fifo.append(request)

    def next_request(self) -> Optional[BlockRequest]:
        return self._fifo.popleft() if self._fifo else None

    def has_work(self) -> bool:
        return bool(self._fifo)


class SplitNoop(SplitScheduler):
    """Split-framework no-op: subscribes to every hook, does nothing.

    Its purpose is to measure the framework's intrinsic overhead: the
    hook invocations and tag bookkeeping happen, but no policy runs.
    """

    name = "split-noop"
    framework = "split"

    def __init__(self):
        super().__init__()
        self._fifo: deque = deque()
        self.hook_invocations = 0

    # Syscall hooks: observe and pass through.
    def syscall_entry(self, task, call, info):
        self.hook_invocations += 1
        return None

    def syscall_return(self, task, call, info) -> None:
        self.hook_invocations += 1

    # Memory hooks: observe and pass through.
    def on_buffer_dirty(self, page, old_causes) -> None:
        self.hook_invocations += 1

    def on_buffer_free(self, page) -> None:
        self.hook_invocations += 1

    # Block hooks: FIFO.
    def add_request(self, request: BlockRequest) -> None:
        self.hook_invocations += 1
        self._fifo.append(request)

    def next_request(self) -> Optional[BlockRequest]:
        return self._fifo.popleft() if self._fifo else None

    def request_completed(self, request: BlockRequest) -> None:
        self.hook_invocations += 1

    def has_work(self) -> bool:
        return bool(self._fifo)
