"""SCS-Token: system-call-level token bucket (Craciunas et al.).

The whole scheduler lives above the filesystem: it intercepts read and
write system calls and charges their nominal byte counts.  That is
exactly why it fails (paper §2.3.3):

- it cannot tell how expensive an I/O pattern really is below the
  cache (random reads cost far more than their byte count; buffered
  writes often cost less), so it under-throttles seekers and
  over-throttles overwriters;
- its logic runs on *every* syscall, including cache hits, costing CPU
  (the 2.3× "read-mem" gap of Figure 14);
- it never sees journal or metadata amplification.

Following the authors' note, we model the one concession Craciunas et
al. made: the filesystem was modified to tell SCS which reads are
cache hits, so hits are not charged (they still pay the hook's CPU
cost).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.hooks import SchedulerHooks
from repro.schedulers.tokens import BucketRegistry, TokenBucket


#: CPU seconds of SCS bookkeeping per intercepted system call (the
#: framework/scheduler separation is poor, per the paper's LoC note).
SCS_HOOK_CPU = 4e-6


class SCSToken(SchedulerHooks):
    """System-call-level token bucket (the paper's SCS baseline)."""

    name = "scs-token"
    framework = "syscall"

    def __init__(self):
        self.buckets: BucketRegistry = None  # created on attach
        self.os = None

    def make_elevator(self):
        """SCS sits *above* the kernel; the stock elevator (CFQ) still
        runs at the block level underneath it, as on real Linux."""
        from repro.schedulers.cfq import CFQ

        return CFQ()

    def attach_stack(self, os) -> None:
        self.os = os
        self.buckets = BucketRegistry(os.env)

    def set_limit(self, tasks, rate: float, cap: float = None) -> TokenBucket:
        return self.buckets.set_limit(tasks, rate, cap)

    # -- syscall hooks ------------------------------------------------------

    def syscall_entry(self, task, call, info: Dict[str, Any]):
        if call not in ("read", "write", "fsync", "creat", "mkdir"):
            return None
        return self._throttle(task, call, info)

    def _throttle(self, task, call, info):
        # SCS bookkeeping burns CPU on every intercepted call.
        yield from self.os.cpu.consume(task, SCS_HOOK_CPU)

        bucket = self.buckets.bucket_for(task)
        if bucket is None:
            return

        cost = self._estimate_cost(call, info)
        if cost <= 0:
            return
        # Block until the bucket can pay, then charge.
        while True:
            wait = bucket.time_until(cost)
            if wait <= 0:
                break
            yield self.os.env.timeout(wait)
        bucket.charge(cost)

    def _estimate_cost(self, call: str, info: Dict[str, Any]) -> float:
        """Syscall-level cost guess: nominal bytes, nothing more.

        This is the crux: 4 KB of random read costs 4 KB of tokens even
        though the disk will spend ~10 ms on it, and a buffer overwrite
        costs its full size even though it causes no new disk I/O.
        """
        if call == "read":
            if self._fully_cached(info):
                return 0.0  # the authors' cache-hit concession
            return float(info.get("nbytes", 0))
        if call == "write":
            return float(info.get("nbytes", 0))
        if call in ("creat", "mkdir"):
            # SCS has no idea what a metadata op costs below the FS.
            return 0.0
        if call == "fsync":
            return 0.0
        return 0.0

    def _fully_cached(self, info: Dict[str, Any]) -> bool:
        from repro.cache.page import PageKey
        from repro.units import PAGE_SIZE

        inode = info.get("inode")
        if inode is None:
            return False
        offset, nbytes = info.get("offset", 0), info.get("nbytes", 0)
        if nbytes <= 0:
            return True
        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        for index in range(first, last + 1):
            if not self.os.cache.contains(PageKey(inode.id, index)):
                return False
        return True
