"""I/O schedulers: baselines from each framework plus the three split
schedulers introduced by the paper.

Block level (Linux elevator): :class:`Noop`, :class:`CFQ`,
:class:`BlockDeadline`.

System-call level (SCS): :class:`SCSToken`.

Split level: :class:`SplitNoop`, :class:`AFQ` (Actually Fair Queuing),
:class:`SplitDeadline`, :class:`SplitToken`.
"""

from repro.schedulers.noop import Noop, SplitNoop
from repro.schedulers.cfq import CFQ
from repro.schedulers.block_deadline import BlockDeadline
from repro.schedulers.scs import SCSToken
from repro.schedulers.afq import AFQ
from repro.schedulers.split_deadline import SplitDeadline
from repro.schedulers.split_token import SplitToken

__all__ = [
    "AFQ",
    "BlockDeadline",
    "CFQ",
    "Noop",
    "SCSToken",
    "SplitDeadline",
    "SplitNoop",
    "SplitToken",
]
