"""I/O schedulers: baselines from each framework plus the three split
schedulers introduced by the paper.

Block level (Linux elevator): :class:`Noop`, :class:`CFQ`,
:class:`BlockDeadline`.

System-call level (SCS): :class:`SCSToken`.

Split level: :class:`SplitNoop`, :class:`AFQ` (Actually Fair Queuing),
:class:`SplitDeadline`, :class:`SplitToken`.
"""

from repro.schedulers.noop import Noop, SplitNoop
from repro.schedulers.cfq import CFQ
from repro.schedulers.block_deadline import BlockDeadline
from repro.schedulers.scs import SCSToken
from repro.schedulers.afq import AFQ
from repro.schedulers.split_deadline import SplitDeadline
from repro.schedulers.split_token import SplitToken

#: Canonical name -> scheduler class.  Keys match each class's ``name``
#: attribute; this is the single source of truth the CLI, experiments,
#: and :func:`repro.experiments.common.build_stack` construct from.
REGISTRY = {
    cls.name: cls
    for cls in (
        Noop,
        CFQ,
        BlockDeadline,
        SCSToken,
        SplitNoop,
        AFQ,
        SplitDeadline,
        SplitToken,
    )
}


def make_scheduler(name: str, **kwargs):
    """Instantiate the scheduler registered under *name*.

    Keyword arguments are forwarded to the scheduler's constructor
    (e.g. ``make_scheduler("block-deadline", read_deadline=0.05)``).
    Unknown names raise :class:`ValueError` listing the valid choices.
    """
    try:
        cls = REGISTRY[name]
    except KeyError:
        choices = ", ".join(sorted(REGISTRY))
        raise ValueError(
            f"unknown scheduler {name!r}; valid choices: {choices}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "AFQ",
    "BlockDeadline",
    "CFQ",
    "Noop",
    "REGISTRY",
    "SCSToken",
    "SplitDeadline",
    "SplitNoop",
    "SplitToken",
    "make_scheduler",
]
