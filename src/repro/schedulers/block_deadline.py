"""Block-Deadline: Linux's deadline elevator, plus per-process deadlines.

Two FIFO (deadline) queues and two block-sorted queues, one pair per
direction.  Requests are normally served in sorted order for
sequentiality; an expired FIFO head preempts.  As in the paper's
evaluation, we extend the stock scheduler so different processes can
have different deadlines (Linux's cannot) — the fair-comparison change
the authors made.

The limitation the paper demonstrates (Figure 5) is structural and
survives this faithfulness: a block-write deadline is meaningless when
an fsync's completion depends on journal-entangled I/O the scheduler
cannot reorder.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.block.elevator import BlockScheduler
from repro.block.request import READ, WRITE, BlockRequest
from repro.proc import Task

#: Linux defaults: read_expire 500 ms, write_expire 5 s.
DEFAULT_READ_DEADLINE = 0.5
DEFAULT_WRITE_DEADLINE = 5.0


class BlockDeadline(BlockScheduler):
    """Deadline elevator: FIFO expiry queues over C-SCAN location order."""

    name = "block-deadline"
    framework = "block"

    def __init__(
        self,
        read_deadline: float = DEFAULT_READ_DEADLINE,
        write_deadline: float = DEFAULT_WRITE_DEADLINE,
        writes_starved: int = 2,
    ):
        super().__init__()
        self.read_deadline = read_deadline
        self.write_deadline = write_deadline
        self.writes_starved = writes_starved
        #: Per-process overrides: (pid, op) -> relative deadline.
        self._overrides: Dict[Tuple[int, str], float] = {}
        self._fifo = {READ: deque(), WRITE: deque()}
        #: Sorted queues: list of (block, id, request), bisect-maintained.
        self._sorted: Dict[str, List[Tuple[int, int, BlockRequest]]] = {READ: [], WRITE: []}
        self._head = 0  # last dispatched end block (one-way elevator)
        self._starved = 0
        self.expired_served = 0

    # -- configuration ------------------------------------------------------

    def set_deadline(self, task: Task, op: str, deadline: float) -> None:
        """Per-process deadline override (our fair-comparison extension)."""
        self._overrides[(task.pid, op)] = deadline

    def deadline_for(self, task: Task, op: str) -> float:
        default = self.read_deadline if op == READ else self.write_deadline
        return self._overrides.get((task.pid, op), default)

    # -- elevator hooks --------------------------------------------------------

    def add_request(self, request: BlockRequest) -> None:
        now = self.queue.env.now if self.queue is not None else 0.0
        if request.deadline is None:
            request.deadline = now + self.deadline_for(request.submitter, request.op)
        self._fifo[request.op].append(request)
        entry = (request.block, request.id, request)
        bisect.insort(self._sorted[request.op], entry)

    def next_request(self) -> Optional[BlockRequest]:
        now = self.queue.env.now if self.queue is not None else 0.0

        for op in (READ, WRITE):
            fifo = self._fifo[op]
            if fifo and fifo[0].deadline is not None and fifo[0].deadline <= now:
                request = fifo.popleft()
                self._remove_sorted(request)
                self.expired_served += 1
                self._head = request.end_block
                return request

        reads, writes = self._sorted[READ], self._sorted[WRITE]
        if reads and (self._starved < self.writes_starved or not writes):
            request = self._pop_sorted(READ)
            self._starved += 1 if writes else 0
            return request
        if writes:
            self._starved = 0
            return self._pop_sorted(WRITE)
        if reads:
            return self._pop_sorted(READ)
        return None

    def _pop_sorted(self, op: str) -> BlockRequest:
        """C-SCAN: next request at/after the head position, else wrap."""
        entries = self._sorted[op]
        index = bisect.bisect_left(entries, (self._head, -1))
        if index >= len(entries):
            index = 0
        _, _, request = entries.pop(index)
        self._fifo[op].remove(request)
        self._head = request.end_block
        return request

    def _remove_sorted(self, request: BlockRequest) -> None:
        entries = self._sorted[request.op]
        index = bisect.bisect_left(entries, (request.block, request.id))
        while index < len(entries):
            if entries[index][2] is request:
                entries.pop(index)
                return
            index += 1

    def has_work(self) -> bool:
        return bool(self._fifo[READ] or self._fifo[WRITE])
