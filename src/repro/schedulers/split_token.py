"""Split-Token: token-bucket resource limiting in the split framework
(paper §5.3).

Where to throttle (§3.3):

- **system-call writes** (and other dirtying calls) block while the
  account's token balance is negative — keeping a throttled process
  from polluting the write buffer;
- **block-level reads** are held while the balance is negative —
  *below* the cache, so hits are never throttled;
- system-call reads are never throttled, and block writes are never
  throttled (journal entanglement).

How to charge (§3.2, two-stage):

- a **prompt** charge when a clean buffer is dirtied, from the
  memory-level model (file-offset randomness; allocation unknown);
  overwriting an already-dirty buffer is free — the I/O was already
  paid for (this is what SCS cannot know, the 837× "write-mem" case);
- a **revision** when the data reaches the block level: actual
  normalized cost (seeks, amplification, true layout) minus the
  prompt estimate, charged or refunded;
- deleted-before-writeback buffers are refunded via the buffer-free
  hook;
- reads and journal/metadata writes are charged at completion to the
  request's *cause set* — so delegated I/O bills the right accounts.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.block.request import BlockRequest
from repro.cache.page import PageKey
from repro.core.hooks import SplitScheduler
from repro.schedulers.tokens import BucketRegistry, TokenBucket


class SplitToken(SplitScheduler):
    """Token-bucket resource limits with two-stage split accounting."""

    name = "split-token"
    framework = "split"

    def __init__(self, prompt_charging: bool = True, block_revision: bool = True):
        """Both stages of cost estimation can be disabled for ablation:

        - ``prompt_charging=False`` drops the memory-level estimate
          (accounting becomes accurate but *late* — a burst dirties
          gigabytes before the first charge lands);
        - ``block_revision=False`` drops the block-level correction
          (accounting becomes prompt but *wrong* — randomness and
          amplification are never billed).
        """
        super().__init__()
        self.prompt_charging = prompt_charging
        self.block_revision = block_revision
        self.buckets: Optional[BucketRegistry] = None
        #: Prompt (memory-level) charges per page: key -> [(bucket, amount)].
        self._page_charges: Dict[PageKey, List[Tuple[TokenBucket, float]]] = {}
        self._dispatch_fifo: deque = deque()
        #: Reads held because their account is out of tokens.
        self._held_reads: deque = deque()
        #: Nominal charges applied at read dispatch (revised later):
        #: request id -> {bucket: amount}.  Without this, a queue of
        #: held reads would all look affordable the instant the balance
        #: recovers and dispatch as one burst.
        self._read_charges: Dict[int, Dict[TokenBucket, float]] = {}
        self._kick_timer_armed = False
        self.os = None

    def attach_stack(self, os) -> None:
        self.os = os
        self.buckets = BucketRegistry(os.env)

    def set_limit(self, tasks, rate: float, cap: float = None) -> TokenBucket:
        """Throttle *tasks* to *rate* normalized bytes/second."""
        return self.buckets.set_limit(tasks, rate, cap)

    # ------------------------------------------------------------------
    # system-call level: block dirtying calls while out of tokens
    # ------------------------------------------------------------------

    THROTTLED_CALLS = ("write", "fsync", "creat", "mkdir")

    def syscall_entry(self, task, call, info):
        if call not in self.THROTTLED_CALLS:
            return None  # reads are never throttled above the cache
        bucket = self.buckets.bucket_for(task)
        if bucket is None or bucket.balance >= 0:
            return None
        return self._block_until_positive(bucket)

    def _block_until_positive(self, bucket: TokenBucket):
        while True:
            wait = bucket.time_until(0.0)
            if wait <= 0:
                return
            yield self.os.env.timeout(wait)

    # ------------------------------------------------------------------
    # memory level: prompt charging
    # ------------------------------------------------------------------

    def on_buffer_dirty(self, page, old_causes) -> None:
        if not self.prompt_charging:
            return
        if old_causes:
            return  # overwrite of dirty data: no new I/O work
        estimate = self.os.memory_cost_model.estimate(page)
        charges = []
        buckets = self.buckets.buckets_for_causes(page.causes)
        if buckets:
            share = estimate / len(page.causes)
            for bucket in buckets.values():
                bucket.charge(share)
                charges.append((bucket, share))
        if charges:
            self._page_charges[page.key] = charges

    def on_buffer_free(self, page) -> None:
        """The work disappeared before writeback: refund the estimate."""
        for bucket, amount in self._page_charges.pop(page.key, ()):
            bucket.refund(amount)

    # ------------------------------------------------------------------
    # block level: hold broke readers, revise write costs
    # ------------------------------------------------------------------

    def add_request(self, request: BlockRequest) -> None:
        if request.is_read and self._broke(request):
            self._held_reads.append(request)
        else:
            self._dispatch_fifo.append(request)

    def _broke(self, request: BlockRequest) -> bool:
        """Is any throttled account behind this request out of tokens?"""
        buckets = self.buckets.buckets_for_causes(request.causes)
        return any(bucket.balance < 0 for bucket in buckets.values())

    def next_request(self) -> Optional[BlockRequest]:
        self._release_held_reads()
        while self._dispatch_fifo:
            request = self._dispatch_fifo.popleft()
            if request.is_read and self._broke(request):
                # The account went broke since this read was queued
                # (e.g. a burst of peers drained it): hold it now.
                self._held_reads.append(request)
                continue
            if request.is_read:
                self._charge_read_dispatch(request)
            return request
        if self._held_reads:
            self._arm_kick_timer()
        return None

    def _charge_read_dispatch(self, request: BlockRequest) -> None:
        """Nominal charge when a read leaves for the disk.

        The balance drops immediately, so the next held read of the
        same account stays held until tokens truly accrue; the
        completion revision converts the nominal charge into actual
        normalized cost.
        """
        buckets = self.buckets.buckets_for_causes(request.causes)
        if not buckets or not request.causes:
            return
        share = request.nbytes / len(request.causes)
        charged: Dict[TokenBucket, float] = {}
        # dict.fromkeys, not set(): insertion-ordered dedupe keeps the
        # charge sequence independent of PYTHONHASHSEED (SIM002).
        for bucket in dict.fromkeys(buckets.values()):
            pids_in_bucket = sum(1 for b in buckets.values() if b is bucket)
            amount = share * pids_in_bucket
            bucket.charge(amount)
            charged[bucket] = amount
        self._read_charges[request.id] = charged

    def _release_held_reads(self) -> None:
        still_held = deque()
        while self._held_reads:
            request = self._held_reads.popleft()
            if self._broke(request):
                still_held.append(request)
            else:
                self._dispatch_fifo.append(request)
        self._held_reads = still_held

    def _arm_kick_timer(self) -> None:
        """Re-kick the queue when the poorest waiting account recovers."""
        if self._kick_timer_armed or self.queue is None:
            return
        waits = []
        for request in self._held_reads:
            for bucket in self.buckets.buckets_for_causes(request.causes).values():
                waits.append(bucket.time_until(0.0))
        if not waits:
            return
        delay = max(min(waits), 1e-4)
        self._kick_timer_armed = True
        env = self.queue.env

        def timer():
            yield env.timeout(delay)
            self._kick_timer_armed = False
            self.queue.kick()

        env.process(timer(), name="split-token-kick")

    def request_completed(self, request: BlockRequest) -> None:
        # Wall-clock-union charge: equals complete - dispatch under
        # serial dispatch, but never double-bills overlapping service
        # when the multi-queue engine keeps several requests in flight.
        duration = self.service_charge(request)
        # Degraded-mode repricing: while the health monitor judges the
        # device sick, service intervals are inflated by the measured
        # slowdown through no fault of the tenant.  Dividing the charge
        # by that factor re-prices token contracts against degraded
        # throughput, so isolation sigma holds while the device limps.
        health = getattr(self.queue, "health", None)
        if health is not None:
            factor = health.billing_factor()
            if factor > 1.0:
                duration /= factor
        actual = self.os.disk_cost_model.normalized_bytes(request, duration)

        preliminary: Dict[TokenBucket, float] = {}
        for page in request.pages:
            for bucket, amount in self._page_charges.pop(page.key, ()):
                preliminary[bucket] = preliminary.get(bucket, 0.0) + amount
        for bucket, amount in self._read_charges.pop(request.id, {}).items():
            preliminary[bucket] = preliminary.get(bucket, 0.0) + amount

        buckets = self.buckets.buckets_for_causes(request.causes)
        if buckets and request.causes and self.block_revision:
            share = actual / len(request.causes)
            # insertion-ordered dedupe — see _charge_read (SIM002)
            for bucket in dict.fromkeys(buckets.values()):
                pids_in_bucket = sum(1 for b in buckets.values() if b is bucket)
                target = share * pids_in_bucket
                delta = target - preliminary.get(bucket, 0.0)
                if delta >= 0:
                    bucket.charge(delta)
                else:
                    bucket.refund(-delta)
        if self._held_reads:
            self._arm_kick_timer()

    def has_work(self) -> bool:
        return bool(self._dispatch_fifo) or bool(self._held_reads)
