"""CFQ (Completely Fair Queuing), the Linux default block scheduler.

Faithful in the ways that matter to the paper:

- per-*submitter* queues — CFQ can only see who handed the request to
  the block layer, so all delegated writeback appears to come from the
  priority-4 pdflush task (Figure 3's unfairness);
- priority-weighted time slices (weight ``8 - prio``), with the idle
  class served only when nobody else wants the disk;
- anticipation ("idling") on sync queues, so a sequential reader does
  not lose its slice between dependent reads.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.block.elevator import BlockScheduler
from repro.block.request import BlockRequest
from repro.proc import Task


def priority_weight(priority: int) -> int:
    """CFQ-style weight: priority 0 (highest) = 8 ... 7 (lowest) = 1."""
    return 8 - priority


class CFQ(BlockScheduler):
    """Completely Fair Queuing: per-submitter queues + priority slices."""

    name = "cfq"
    framework = "block"

    def __init__(self, base_slice: float = 0.1, idle_window: float = 0.008):
        super().__init__()
        self.base_slice = base_slice
        self.idle_window = idle_window
        self._queues: Dict[int, deque] = {}
        self._tasks: Dict[int, Task] = {}
        self._rr: deque = deque()  # round-robin order of pids
        self._active_pid: Optional[int] = None
        self._slice_used = 0.0
        self._slice_budget = 0.0
        self._anticipating = False
        self._anticipation_id = 0
        self.disk_time: Dict[int, float] = {}  # pid -> disk seconds used

    # -- elevator hooks ---------------------------------------------------------

    def add_request(self, request: BlockRequest) -> None:
        pid = request.submitter.pid
        queue = self._queues.get(pid)
        if queue is None:
            queue = deque()
            self._queues[pid] = queue
            self._tasks[pid] = request.submitter
            self._rr.append(pid)
        queue.append(request)
        if self._anticipating and pid == self._active_pid:
            self._anticipating = False  # the awaited request arrived

    def next_request(self) -> Optional[BlockRequest]:
        # Continue the active slice while it has requests and budget.
        if self._active_pid is not None:
            queue = self._queues.get(self._active_pid)
            if queue and self._slice_used < self._slice_budget:
                return queue.popleft()
            if (
                (not queue or not len(queue))
                and self._anticipating
                and self._slice_used < self._slice_budget
            ):
                return None  # idling: wait briefly for the next sync I/O

        return self._switch_queue()

    def _switch_queue(self) -> Optional[BlockRequest]:
        self._anticipating = False
        pid = self._select_pid()
        if pid is None:
            self._active_pid = None
            return None
        self._active_pid = pid
        task = self._tasks[pid]
        self._slice_used = 0.0
        self._slice_budget = self.base_slice * priority_weight(task.priority) / 4.0
        return self._queues[pid].popleft()

    def _select_pid(self) -> Optional[int]:
        """Next non-empty queue in round-robin order; idle class last."""
        candidates = [pid for pid in self._rr if self._queues[pid]]
        if not candidates:
            return None
        normal = [pid for pid in candidates if not self._tasks[pid].idle_class]
        pool = normal or candidates
        # Rotate the RR list to just past the chosen pid.
        chosen = None
        for _ in range(len(self._rr)):
            pid = self._rr[0]
            self._rr.rotate(-1)
            if pid in pool:
                chosen = pid
                break
        return chosen

    def request_completed(self, request: BlockRequest) -> None:
        duration = (request.complete_time or 0.0) - (request.dispatch_time or 0.0)
        # Slice budgets bill wall-clock device occupancy: with several
        # requests outstanding the overlap is charged once (identical to
        # `duration` when dispatch is serial).
        charge = self.service_charge(request)
        pid = request.submitter.pid
        self.disk_time[pid] = self.disk_time.get(pid, 0.0) + duration
        if pid == self._active_pid:
            self._slice_used += charge
            queue = self._queues.get(pid)
            if request.sync and not queue and self._slice_used < self._slice_budget:
                self._start_anticipation()

    def has_work(self) -> bool:
        return any(self._queues.values())

    # -- anticipation timer ---------------------------------------------------------

    def _start_anticipation(self) -> None:
        if self.queue is None:
            return
        self._anticipating = True
        self._anticipation_id += 1
        my_id = self._anticipation_id
        env = self.queue.env

        def timer():
            yield env.timeout(self.idle_window)
            if self._anticipation_id == my_id and self._anticipating:
                self._anticipating = False
                self.queue.kick()

        env.process(timer(), name="cfq-idle-timer")
