"""Token buckets for resource-limit schedulers.

Tokens represent *normalized bytes* (sequential-equivalent I/O).  A
bucket accrues tokens continuously at its configured rate, up to a
burst cap; balances may go negative (costs are often only known after
the I/O completes), in which case further I/O is blocked until the
balance recovers.

Several tasks may share one bucket (a throttling *account*), as in the
paper's multi-thread and HDFS experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc import Task
    from repro.sim.core import Environment


class TokenBucket:
    """One throttling account."""

    def __init__(self, env: "Environment", rate: float, cap: Optional[float] = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = float(rate)
        self.cap = float(cap) if cap is not None else max(self.rate, 1.0)
        self._balance = self.cap
        self._last_update = env.now
        self.charged_total = 0.0
        #: Cumulative refunds (freed-before-writeback pages, block-level
        #: revisions downward).  ``charged_total - refunded_total`` is
        #: the account's net normalized-byte consumption — the quantity
        #: the sharded runs aggregate into a cluster-wide token ledger.
        self.refunded_total = 0.0

    @property
    def balance(self) -> float:
        self._accrue()
        return self._balance

    def _accrue(self) -> None:
        now = self.env.now
        if now > self._last_update:
            self._balance = min(self.cap, self._balance + self.rate * (now - self._last_update))
            self._last_update = now

    def charge(self, amount: float) -> None:
        """Deduct *amount* tokens; the balance may go negative."""
        self._accrue()
        self._balance -= amount
        if amount > 0:
            self.charged_total += amount

    def refund(self, amount: float) -> None:
        self._accrue()
        self._balance = min(self.cap, self._balance + amount)
        if amount > 0:
            self.refunded_total += amount

    def time_until(self, level: float) -> float:
        """Seconds until the balance reaches *level* (0 if already).

        Waits are clamped to at least a microsecond so float rounding
        in the accrual can never produce a zero-length sleep loop.
        """
        deficit = level - self.balance
        if deficit <= 1e-9:
            return 0.0
        return max(deficit / self.rate, 1e-6)


class BucketRegistry:
    """Maps tasks to their (possibly shared) buckets."""

    def __init__(self, env: "Environment"):
        self.env = env
        self._by_pid: Dict[int, TokenBucket] = {}

    def set_limit(self, tasks, rate: float, cap: Optional[float] = None) -> TokenBucket:
        """Throttle *tasks* (a Task or iterable) under one shared bucket."""
        from repro.proc import Task as TaskType

        if isinstance(tasks, TaskType):
            tasks = [tasks]
        bucket = TokenBucket(self.env, rate, cap)
        for task in tasks:
            self._by_pid[task.pid] = bucket
        return bucket

    def bucket_for(self, task: "Task") -> Optional[TokenBucket]:
        return self._by_pid.get(task.pid)

    def bucket_for_pid(self, pid: int) -> Optional[TokenBucket]:
        return self._by_pid.get(pid)

    def buckets_for_causes(self, causes) -> Dict[int, TokenBucket]:
        """Buckets of the throttled pids inside a cause set."""
        found = {}
        for pid in causes:
            bucket = self._by_pid.get(pid)
            if bucket is not None:
                found[pid] = bucket
        return found
