"""Stride scheduling (Waldspurger & Weihl), used by AFQ.

Deterministic proportional sharing: each client holds *tickets*; its
*stride* is inversely proportional; every unit of service advances its
*pass* by ``stride × cost``.  Always serving the minimum-pass client
yields service proportional to tickets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.proc import Task
from repro.schedulers.cfq import priority_weight

STRIDE1 = float(1 << 20)


class StrideClient:
    """Per-task stride state."""

    __slots__ = ("pid", "tickets", "stride", "pass_value")

    def __init__(self, pid: int, tickets: int):
        if tickets <= 0:
            raise ValueError("tickets must be positive")
        self.pid = pid
        self.tickets = tickets
        self.stride = STRIDE1 / tickets
        self.pass_value = 0.0

    def charge(self, cost: float) -> None:
        """Account *cost* units of service."""
        self.pass_value += self.stride * cost


class StrideScheduler:
    """A set of stride clients with a shared virtual-time floor."""

    def __init__(self):
        self._clients: Dict[int, StrideClient] = {}

    def client(self, task: Task) -> StrideClient:
        """Get (creating if needed) the stride state for *task*.

        Tickets follow the CFQ priority weighting (priority 0 → 8
        tickets ... priority 7 → 1), with idle-class tasks getting a
        single ticket; their real starvation is enforced by admission
        rules, not ticket counts.
        """
        state = self._clients.get(task.pid)
        if state is None:
            tickets = 1 if task.idle_class else priority_weight(task.priority)
            state = StrideClient(task.pid, tickets)
            state.pass_value = self.floor()
            self._clients[task.pid] = state
        return state

    def client_by_pid(self, pid: int) -> Optional[StrideClient]:
        return self._clients.get(pid)

    def floor(self) -> float:
        """Current virtual time: the minimum pass among clients."""
        if not self._clients:
            return 0.0
        return min(client.pass_value for client in self._clients.values())

    def reenter(self, task: Task) -> StrideClient:
        """A task waking from idleness may not hoard old credit."""
        state = self.client(task)
        state.pass_value = max(state.pass_value, self.floor())
        return state

    def min_pass_pid(self, pids: Iterable[int]) -> Optional[int]:
        """The pid with the smallest pass among *pids* (None if empty)."""
        best_pid, best_pass = None, None
        for pid in pids:
            state = self._clients.get(pid)
            if state is None:
                continue
            if best_pass is None or state.pass_value < best_pass:
                best_pid, best_pass = pid, state.pass_value
        return best_pid
