"""AFQ — Actually Fair Queuing (paper §5.1).

A two-level split scheduler providing priority-proportional fairness:

- **reads** are scheduled at the **block level** (below the cache, so
  hits stay free) by stride scheduling over per-task read queues;
- **writes, fsync, and metadata calls** are scheduled at the
  **system-call level**, *before* the filesystem can entangle them in a
  journal transaction.  Beneath the journal, block writes dispatch
  immediately — reordering there would invert priorities through
  commit dependencies;
- every completed block request charges the *responsible* tasks (via
  split tags) with its measured disk cost, so delegated writeback and
  journal I/O count against the right processes — the thing CFQ
  cannot do.

Idle-class tasks are only admitted at the syscall level when the rest
of the system is not using the storage stack (the ionice contract CFQ
cannot honor for buffered writes — Figure 1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.block.request import BlockRequest
from repro.core.hooks import SplitScheduler
from repro.schedulers.stride import StrideScheduler
from repro.units import KB, MB


class _WaitingCall:
    """A syscall parked in the AFQ entry hook."""

    __slots__ = ("task", "call", "info", "event")

    def __init__(self, task, call, info, event):
        self.task = task
        self.call = call
        self.info = info
        self.event = event


class AFQ(SplitScheduler):
    """Actually Fair Queuing: stride scheduling at two split levels."""

    name = "afq"
    framework = "split"

    #: Fixed charge for metadata calls (journal descriptor + commit).
    METADATA_COST = 16 * KB
    #: Extra cost charged per fsync beyond the data it flushes.
    FSYNC_OVERHEAD = 16 * KB

    def __init__(
        self,
        write_window: int = 64 * MB,
        fsync_slots: int = 1,
        burst_per_ticket: int = 1 * MB,
        active_window: float = 0.5,
    ):
        super().__init__()
        self.write_window = write_window
        self.fsync_slots = fsync_slots
        #: How many bytes per ticket a client may run ahead of the
        #: stride virtual-time floor before its writes are paced.
        self.burst_per_ticket = burst_per_ticket
        self.active_window = active_window
        self.stride = StrideScheduler()
        #: Syscall level: per-pid FIFO of parked calls.
        self._waiting: Dict[int, deque] = {}
        self._fsyncs_inflight = 0
        self._last_admit: Dict[int, float] = {}
        self._repump_armed = False
        #: Idle-class gate: idle tasks run only after the rest of the
        #: system has been quiet for this long (the ionice contract).
        self.idle_grace = 0.02
        self._last_nonidle_activity = float("-inf")
        #: Block level: per-pid read queues + a write FIFO.
        self._read_queues: Dict[int, deque] = {}
        self._write_fifo: deque = deque()
        #: Read batching + anticipation: stick with one task's reads for
        #: a bounded budget, idling briefly for its next sequential
        #: request, so readers are not seek-thrashed by per-request
        #: switching (CFQ gets the same effect from time slices).
        self._read_batch_pid: Optional[int] = None
        self._read_batch_left = 0
        self.read_batch = 8
        self.read_idle_window = 0.004
        self._anticipating = False
        self._anticipation_id = 0
        self.os = None

    # ------------------------------------------------------------------
    # system-call level
    # ------------------------------------------------------------------

    def syscall_entry(self, task, call, info):
        if not task.idle_class:
            self._last_nonidle_activity = self.os.env.now
        if call == "read":
            return None  # reads are scheduled at the block level
        if call not in ("write", "fsync", "creat", "mkdir", "unlink"):
            return None
        return self._park(task, call, info)

    def _park(self, task, call, info):
        self.stride.reenter(task)
        event = self.os.env.event()
        waiting = self._waiting.setdefault(task.pid, deque())
        waiting.append(_WaitingCall(task, call, info, event))
        self._pump_syscalls()
        yield event

    def syscall_return(self, task, call, info) -> None:
        if call == "fsync":
            self._fsyncs_inflight -= 1
            self._pump_syscalls()

    def _pump_syscalls(self) -> None:
        """Admit parked calls in stride order while resources allow."""
        while True:
            candidates = [pid for pid, queue in self._waiting.items() if queue]
            admitted = False
            # Walk pids in pass order so an ineligible head doesn't block
            # eligible lower-priority work behind it.
            while candidates:
                pid = self.stride.min_pass_pid(candidates)
                if pid is None:
                    break
                candidates.remove(pid)
                queue = self._waiting[pid]
                call = queue[0]
                if not self._eligible(call):
                    continue
                queue.popleft()
                self._admit(call)
                admitted = True
                break
            if not admitted:
                if any(queue for queue in self._waiting.values()):
                    self._arm_repump()
                return

    def _eligible(self, call: _WaitingCall) -> bool:
        if call.task.idle_class and self._system_busy(call.task):
            return False
        if call.call == "write":
            # A single write larger than the window must still be
            # admittable (once the backlog has drained).
            nbytes = min(call.info.get("nbytes", 0), self.write_window // 2)
            if self.os.cache.dirty_bytes + nbytes > self.write_window:
                # Window full: have pdflush drain it (we rely on Linux
                # for writeback and merely pace admission — §4.2's
                # first option).
                self.os.writeback.request_flush(self.write_window // 2)
                return False
            # Stride pacing: a client may run ahead of the virtual-time
            # floor by at most burst_per_ticket bytes per ticket.  The
            # client AT the floor is always admissible — otherwise one
            # write larger than its whole allowance would deadlock it
            # (and stride scheduling must be work-conserving).
            state = self.stride.client(call.task)
            from repro.schedulers.stride import STRIDE1

            floor = self._active_floor()
            if state.pass_value <= floor + 1e-9:
                return True
            allowance = STRIDE1 * self.burst_per_ticket
            return state.pass_value + state.stride * nbytes <= floor + allowance
        if call.call == "fsync":
            return self._fsyncs_inflight < self.fsync_slots
        return True  # creat/mkdir/unlink

    def _active_floor(self) -> float:
        """Virtual time: min pass among parked or recently-served tasks."""
        now = self.os.env.now
        floor = None
        for pid, queue in self._waiting.items():
            if not queue:
                continue
            state = self.stride.client_by_pid(pid)
            if state is not None and (floor is None or state.pass_value < floor):
                floor = state.pass_value
        for pid, last in self._last_admit.items():
            if now - last > self.active_window:
                continue
            state = self.stride.client_by_pid(pid)
            if state is not None and (floor is None or state.pass_value < floor):
                floor = state.pass_value
        return floor if floor is not None else 0.0

    def _system_busy(self, idle_task) -> bool:
        """Anyone else using the storage stack? (ionice idle contract)

        "Busy" includes a grace window after the last non-idle
        activity, so an idle task cannot slip in through the
        sub-millisecond gaps between a reader's dependent requests.
        """
        if self.os.env.now - self._last_nonidle_activity < self.idle_grace:
            return True
        if self.queue is not None and self.queue.in_flight is not None:
            if self.queue.in_flight.submitter.pid != idle_task.pid:
                return True
        for pid, queue in self._read_queues.items():
            if queue and pid != idle_task.pid:
                return True
        if self._write_fifo:
            return True
        for pid, queue in self._waiting.items():
            if queue and pid != idle_task.pid and not queue[0].task.idle_class:
                return True
        return False

    def _arm_repump(self) -> None:
        """Guarantee progress: re-evaluate parked calls shortly.

        The stride floor can be pinned by a recently-active task that
        went quiet; without a timer, parked writers would wait for the
        next block completion that may never come.
        """
        if self._repump_armed or self.os is None:
            return
        self._repump_armed = True
        env = self.os.env

        def timer():
            yield env.timeout(0.005)
            self._repump_armed = False
            self._pump_syscalls()

        env.process(timer(), name="afq-repump")

    def _admit(self, call: _WaitingCall) -> None:
        self._last_admit[call.task.pid] = self.os.env.now
        if call.call == "write":
            # Prompt charge at admission keeps dequeue order honest even
            # while the true disk cost is still unknown; the block-level
            # completion charge later corrects for actual expense.
            self.stride.client(call.task).charge(call.info.get("nbytes", 0))
        elif call.call == "fsync":
            self._fsyncs_inflight += 1
            # Prompt charge: an fsync costs roughly the data it flushes.
            state = self.stride.client(call.task)
            state.charge(call.info.get("dirty_bytes", 0) + self.FSYNC_OVERHEAD)
        elif call.call in ("creat", "mkdir", "unlink"):
            self.stride.client(call.task).charge(self.METADATA_COST)
        call.event.succeed()

    # ------------------------------------------------------------------
    # memory level
    # ------------------------------------------------------------------

    def on_buffer_dirty(self, page, old_causes) -> None:
        # Nothing to do promptly: write admission is paced at the
        # syscall level and true costs are charged at block completion.
        pass

    def on_buffer_free(self, page) -> None:
        pass

    # ------------------------------------------------------------------
    # block level
    # ------------------------------------------------------------------

    def add_request(self, request: BlockRequest) -> None:
        if request.is_read and not request.submitter.idle_class:
            self._last_nonidle_activity = self.queue.env.now
        if request.is_read:
            self._read_queues.setdefault(request.submitter.pid, deque()).append(request)
            if self._anticipating and request.submitter.pid == self._read_batch_pid:
                self._anticipating = False  # the awaited read arrived
        else:
            # Writes dispatch immediately: beneath the journal, holding
            # a low-priority block may stall a high-priority fsync.
            self._write_fifo.append(request)

    def next_request(self) -> Optional[BlockRequest]:
        if self._write_fifo:
            return self._write_fifo.popleft()
        pending = [pid for pid, queue in self._read_queues.items() if queue]
        if self._read_batch_pid is not None and self._read_batch_left > 0:
            if self._read_batch_pid in pending:
                self._read_batch_left -= 1
                return self._read_queues[self._read_batch_pid].popleft()
            if self._anticipating:
                return None  # idle briefly: its next read is likely near
        if not pending:
            return None
        for pid in pending:
            task = self.os.process_table.get(pid)
            if task is not None:
                self.stride.client(task)
        pid = self.stride.min_pass_pid(pending)
        if pid is None:
            pid = pending[0]
        self._read_batch_pid = pid
        self._read_batch_left = self.read_batch - 1
        return self._read_queues[pid].popleft()

    def request_completed(self, request: BlockRequest) -> None:
        """Charge measured disk cost to the true causes (split tags)."""
        if (
            request.is_read
            and request.submitter.pid == self._read_batch_pid
            and self._read_batch_left > 0
            and not self._read_queues.get(request.submitter.pid)
        ):
            self._start_anticipation()
        # Wall-clock-union charge (== complete - dispatch at depth 1) so
        # overlapping service under multi-queue dispatch bills each
        # device second to exactly one request.
        duration = self.service_charge(request)
        cost = self.os.disk_cost_model.normalized_bytes(request, duration)
        causes = list(request.causes)
        if causes:
            share = cost / len(causes)
            for pid in causes:
                task = self.os.process_table.get(pid)
                if task is None or task.kernel:
                    continue
                self.stride.client(task).charge(share)
        # Draining the disk may unblock parked writes (window space).
        self._pump_syscalls()

    def _start_anticipation(self) -> None:
        if self.queue is None:
            return
        self._anticipating = True
        self._anticipation_id += 1
        my_id = self._anticipation_id
        env = self.queue.env

        def timer():
            yield env.timeout(self.read_idle_window)
            if self._anticipation_id == my_id and self._anticipating:
                self._anticipating = False
                self._read_batch_left = 0  # give up the batch
                self.queue.kick()

        env.process(timer(), name="afq-idle-timer")

    def has_work(self) -> bool:
        return bool(self._write_fifo) or any(self._read_queues.values())
