"""Split-Deadline: latency goals via fsync scheduling (paper §5.2).

Built by restructuring the deadline scheduler around the split hooks:

- block **reads** keep FIFO deadlines + a location queue, as in
  Block-Deadline;
- the block-write deadline queue is replaced by an **fsync-deadline
  queue at the system-call level**: an fsync that would flood the disk
  (estimated from buffer-dirty state) is *held*, its file drained by
  asynchronous writeback (which creates no synchronization point), and
  issued only once the remaining dirty data is small enough that other
  deadlines are safe;
- at the block level, sync (fsync/journal) writes precede location-
  ordered async writeback, so a deferred checkpoint cannot stall a log
  append.

Two writeback regimes match the paper's PostgreSQL study (Figure 19):
with pdflush running, Split-Deadline merely caps global dirty bytes by
throttling write syscalls (*Split-Pdflush*); with ``own_writeback=True``
(and the stack's daemon disabled) the scheduler controls writeback
completely, flushing only when no deadline is imminent.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.block.request import BlockRequest
from repro.core.hooks import SplitScheduler
from repro.sim.events import AllOf
from repro.units import MB


class SplitDeadline(SplitScheduler):
    """Deadline scheduling with an fsync queue at the syscall level."""

    name = "split-deadline"
    framework = "split"

    def __init__(
        self,
        read_deadline: float = 0.05,
        fsync_deadline: float = 0.5,
        big_fsync_threshold: int = 256 * 1024,
        own_writeback: bool = False,
        dirty_cap: Optional[int] = 64 * MB,
        slack: float = 0.005,
        drain_chunk_pages: int = 256,
        commit_overhead: float = 0.02,
    ):
        super().__init__()
        self.read_deadline = read_deadline
        self.fsync_deadline = fsync_deadline
        self.big_fsync_threshold = big_fsync_threshold
        self.own_writeback = own_writeback
        self.dirty_cap = None if own_writeback else dirty_cap
        self.slack = slack
        self.drain_chunk_pages = drain_chunk_pages
        self.commit_overhead = commit_overhead
        #: Per-task deadline overrides.
        self._fsync_deadlines: Dict[int, float] = {}
        self._read_deadlines: Dict[int, float] = {}
        #: Active (held or running) fsync deadlines, pid -> absolute time.
        self._active_fsyncs: Dict[int, float] = {}
        #: Big fsyncs currently draining their files asynchronously.
        self._draining = 0
        # Block-level queues.
        self._read_fifo: deque = deque()
        self._read_sorted: List[Tuple[int, int, BlockRequest]] = []
        self._sync_writes: deque = deque()
        self._async_sorted: List[Tuple[int, int, BlockRequest]] = []
        self._head = 0
        self.os = None
        self.fsyncs_deferred = 0

    # -- configuration -------------------------------------------------------

    def set_fsync_deadline(self, task, deadline: float) -> None:
        self._fsync_deadlines[task.pid] = deadline

    def set_read_deadline(self, task, deadline: float) -> None:
        self._read_deadlines[task.pid] = deadline

    def fsync_deadline_for(self, task) -> float:
        return self._fsync_deadlines.get(task.pid, self.fsync_deadline)

    def read_deadline_for(self, task) -> float:
        return self._read_deadlines.get(task.pid, self.read_deadline)

    # -- lifecycle -----------------------------------------------------------

    def attach_stack(self, os) -> None:
        self.os = os
        if self.own_writeback:
            os.env.process(self._writeback_loop(), name="split-deadline-wb")

    # ------------------------------------------------------------------
    # system-call level: the fsync-deadline queue
    # ------------------------------------------------------------------

    def syscall_entry(self, task, call, info):
        if call == "fsync":
            return self._schedule_fsync(task, info)
        if call == "write" and self.dirty_cap is not None:
            return self._cap_dirty(task, info)
        return None

    def syscall_return(self, task, call, info) -> None:
        if call == "fsync":
            self._active_fsyncs.pop(task.pid, None)

    def _cap_dirty(self, task, info):
        """Split-Pdflush mode: bound the backlog pdflush can burst."""
        while self.os.cache.dirty_bytes > self.dirty_cap:
            self.os.writeback.kick()
            yield self.os.env.timeout(0.005)

    def _schedule_fsync(self, task, info):
        env = self.os.env
        inode = info["inode"]
        deadline = env.now + self.fsync_deadline_for(task)
        self._active_fsyncs[task.pid] = deadline

        # A big fsync is never issued directly: its data is drained by
        # asynchronous writeback (no synchronization point, so other
        # deadlines are unaffected) until the residue is small — even
        # if that overruns this fsync's own (long) deadline.
        if self.os.cache.dirty_bytes_of(inode.id) > self.big_fsync_threshold:
            self.fsyncs_deferred += 1
            self._draining += 1
            try:
                while self.os.cache.dirty_bytes_of(inode.id) > self.big_fsync_threshold:
                    yield from self._drain_chunk(inode)
            finally:
                self._draining -= 1

        # Small fsyncs: go immediately while nothing heavy is being
        # managed; under contention, wait until just before the
        # deadline so the drain can use the slack.
        while self._draining > 0:
            dirty = self.os.cache.dirty_bytes_of(inode.id)
            issue_at = deadline - self._flush_estimate(dirty) - self.slack
            now = env.now
            if now >= issue_at:
                break
            yield env.timeout(min(issue_at - now, 0.05))
        # The call body now runs: remaining flush + journal commit.

    def _flush_estimate(self, dirty_bytes: int) -> float:
        """Expected seconds to flush *dirty_bytes* plus a commit."""
        rate = self.os.disk_cost_model.sequential_rate
        return self.commit_overhead + 3.0 * dirty_bytes / rate

    def _drain_chunk(self, inode):
        pages = self.os.cache.dirty_pages_of(inode.id)[: self.drain_chunk_pages]
        if not pages:
            yield self.os.env.timeout(0.002)
            return
        events = self.os.fs.writepages(self.os.writeback.task, inode, pages, sync=False)
        if events:
            yield AllOf(self.os.env, events)
        else:
            yield self.os.env.timeout(0.002)

    # ------------------------------------------------------------------
    # scheduler-owned writeback (pdflush disabled)
    # ------------------------------------------------------------------

    def _writeback_loop(self):
        env = self.os.env
        low_water = 8 * MB
        while True:
            yield env.timeout(0.01)
            cache = self.os.cache
            if cache.dirty_bytes < low_water and not self._aged_dirty(5.0):
                continue
            if self._deadline_imminent():
                continue  # stay out of the way
            pages = cache.dirty_pages_by_age(limit=self.drain_chunk_pages)
            by_inode: Dict[int, list] = {}
            for page in pages:
                by_inode.setdefault(page.key.inode_id, []).append(page)
            events = []
            for inode_id, file_pages in by_inode.items():
                inode = self.os.fs.inode_by_id(inode_id)
                if inode is None:
                    continue
                file_pages.sort(key=lambda p: p.key.index)
                events.extend(
                    self.os.fs.writepages(self.os.writeback.task, inode, file_pages)
                )
            if events:
                yield AllOf(env, events)

    def _aged_dirty(self, age: float) -> bool:
        oldest = self.os.cache.dirty_pages_by_age(limit=1)
        return bool(oldest) and self.os.env.now - oldest[0].dirtied_at >= age

    def _deadline_imminent(self, margin: float = 0.05) -> bool:
        now = self.os.env.now
        if self._read_fifo and self._read_fifo[0].deadline - now < margin:
            return True
        for deadline in self._active_fsyncs.values():
            if deadline - now < margin:
                return True
        return False

    # ------------------------------------------------------------------
    # block level
    # ------------------------------------------------------------------

    def add_request(self, request: BlockRequest) -> None:
        now = self.queue.env.now if self.queue is not None else 0.0
        if request.is_read:
            if request.deadline is None:
                request.deadline = now + self.read_deadline_for(request.submitter)
            self._read_fifo.append(request)
            bisect.insort(self._read_sorted, (request.block, request.id, request))
        elif request.sync:
            self._sync_writes.append(request)
        else:
            bisect.insort(self._async_sorted, (request.block, request.id, request))

    def next_request(self) -> Optional[BlockRequest]:
        now = self.queue.env.now if self.queue is not None else 0.0
        # 1. Expired reads.
        if self._read_fifo and self._read_fifo[0].deadline <= now:
            request = self._read_fifo.popleft()
            self._remove_sorted(self._read_sorted, request)
            self._head = request.end_block
            return request
        # 2. Sync writes (fsync data + journal commits).
        if self._sync_writes:
            request = self._sync_writes.popleft()
            self._head = request.end_block
            return request
        # 3. Reads in location order.
        if self._read_sorted:
            request = self._pop_located(self._read_sorted)
            self._read_fifo.remove(request)
            return request
        # 4. Async writeback in location order.
        if self._async_sorted:
            return self._pop_located(self._async_sorted)
        return None

    def _pop_located(self, entries: List[Tuple[int, int, BlockRequest]]) -> BlockRequest:
        index = bisect.bisect_left(entries, (self._head, -1))
        if index >= len(entries):
            index = 0
        _, _, request = entries.pop(index)
        self._head = request.end_block
        return request

    @staticmethod
    def _remove_sorted(entries: List[Tuple[int, int, BlockRequest]], request: BlockRequest) -> None:
        index = bisect.bisect_left(entries, (request.block, request.id))
        while index < len(entries):
            if entries[index][2] is request:
                entries.pop(index)
                return
            index += 1

    def has_work(self) -> bool:
        return bool(self._read_fifo or self._sync_writes or self._async_sorted)
