"""Static analysis and runtime sanitizers for the simulation stack.

Two complementary halves, both targeting the same contract — bit-exact
determinism and isolation across execution vehicles (serial, parallel,
sharded, fast-forward):

- :mod:`repro.analysis.simlint` — an AST-based lint pass
  (``python -m repro lint``) with custom SIM001–SIM008 rules for the
  hazard classes this codebase has actually hit: unseeded randomness,
  unsorted set iteration feeding schedulers, object-identity ordering
  keys, float tie-breaks, kernel-internal queue pokes, mutable
  defaults, unguarded bus publishes, and missing ``__slots__`` on
  hot-loop classes.
- :mod:`repro.analysis.sanitizer` — the dynamic complement
  (``StackConfig.sanitize`` / ``--sanitize``): invariant checks that
  run *while* the simulation executes — monotonic clock, exact
  ``(priority, eid)`` cohort dispatch order, conservative-sync
  causality, token conservation, slot-count bounds — raising
  :class:`~repro.analysis.sanitizer.SanitizerError` with an event
  history snippet.  Provably zero-cost when off: the sanitized
  environment is a subclass used only when enabled, and stack checks
  are bus subscribers that otherwise never exist.
"""

from repro.analysis.sanitizer import (
    SanitizedEnvironment,
    SanitizerError,
    StackSanitizer,
    attach_sanitizer,
)
from repro.analysis.simlint import LintViolation, lint_paths, lint_source

__all__ = [
    "SanitizedEnvironment",
    "SanitizerError",
    "StackSanitizer",
    "attach_sanitizer",
    "LintViolation",
    "lint_paths",
    "lint_source",
]
