"""simlint: AST-based determinism/isolation lint for the simulation stack.

``python -m repro lint [paths…]`` — zero third-party dependencies.

Generic linters cannot see this repo's core contract (bit-exact
determinism across serial/parallel/sharded/fast-forward execution), so
each rule here encodes a hazard class the codebase has actually hit:

========  ==============================================================
SIM001    wall-clock or unseeded ``random`` module calls — real time and
          interpreter-seeded randomness differ across runs/hosts; use
          the virtual clock (``env.now``) and seeded per-stack RNGs.
SIM002    iteration over a set (or redundant ``.keys()``) — set order
          follows PYTHONHASHSEED, so anything it feeds (scheduling,
          token accrual, message order) drifts between processes; use
          ``sorted(...)`` or ``dict.fromkeys(...)`` for ordered dedupe.
SIM003    ``id()`` in an ordering key or tie-break — object identity is
          an allocator address, unstable across runs; use an explicit
          sequence number.
SIM004    float arithmetic in a tie-break element of a heap entry —
          accumulated rounding can reorder "equal" entries; keep
          tie-break positions integral.
SIM005    direct pokes at another object's ``_queue``/``_next``/
          ``_heap``/``_eid`` — bypassing ``Environment.schedule``
          silently skips sanitizer/bookkeeping hooks; go through the
          public API (the kernel's own fused paths carry suppressions).
SIM006    mutable default argument — shared across calls; plans/configs
          built from it alias state between experiment cells.
SIM007    unguarded ``bus.publish(...)`` — event construction on the
          hot path costs even with zero subscribers; guard with the
          cached ``self._sub_*``/listener check (repo idiom).
SIM008    class instantiated inside a loop without ``__slots__`` — the
          per-instance ``__dict__`` dominates hot-loop allocation cost.
========  ==============================================================

Suppression: append ``# simlint: disable=SIM002`` (comma-separate for
several, bare ``disable`` for all) to the offending line.  On a line of
its own the same comment opens a *region* — every following line is
suppressed until a matching ``# simlint: enable=SIM002`` (or end of
file); use regions for intentional blocks like the kernel's fused
event constructors.

Public API: :func:`lint_source` (one buffer), :func:`lint_paths`
(files/dirs, with the cross-file class registry SIM008 needs),
:func:`format_text` / :func:`format_json` reporters.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# ---------------------------------------------------------------------------
# Rule metadata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """Static metadata for one SIMnnn rule."""

    id: str
    summary: str
    why: str
    fixit: str


RULES: Dict[str, Rule] = {
    r.id: r
    for r in [
        Rule(
            "SIM001",
            "wall-clock or unseeded random call in simulation code",
            "real time and interpreter-seeded randomness differ across "
            "runs and hosts, breaking bit-exact replay",
            "use the virtual clock (env.now) and a seeded per-stack "
            "random.Random instance",
        ),
        Rule(
            "SIM002",
            "iteration over an unordered set (or redundant .keys())",
            "set iteration order follows PYTHONHASHSEED, so anything it "
            "feeds — scheduling, token accrual, message order — drifts "
            "between processes",
            "wrap in sorted(...), or use dict.fromkeys(...) for an "
            "insertion-ordered dedupe",
        ),
        Rule(
            "SIM003",
            "id() used in an ordering key or tie-break",
            "object identity is an allocator address — unstable across "
            "runs, so ordering built on it is nondeterministic",
            "use an explicit monotonically-assigned sequence number",
        ),
        Rule(
            "SIM004",
            "float arithmetic in a tie-break element of a heap entry",
            "accumulated rounding error can reorder entries that should "
            "compare equal, and the drift depends on evaluation order",
            "keep tie-break tuple positions integral (priority ranks, "
            "sequence numbers); only the leading time may be float",
        ),
        Rule(
            "SIM005",
            "direct manipulation of another object's scheduling internals",
            "writing _queue/_next/_heap/_eid from outside bypasses "
            "Environment.schedule and skips sanitizer and bookkeeping "
            "hooks",
            "call schedule()/timeout() instead; kernel-internal fused "
            "paths must carry an explicit suppression",
        ),
        Rule(
            "SIM006",
            "mutable default argument",
            "the default is evaluated once and shared by every call — "
            "plans and configs built from it alias state across "
            "experiment cells",
            "default to None and create the list/dict/set in the body",
        ),
        Rule(
            "SIM007",
            "bus publish not guarded for the zero-subscriber fast path",
            "constructing the event object costs on the hot path even "
            "when nobody is listening",
            "guard with the cached subscriber check, e.g. "
            "`if self._sub_x: bus.publish(X(...))`",
        ),
        Rule(
            "SIM008",
            "class instantiated in a loop without __slots__",
            "each instance carries a __dict__, which dominates "
            "allocation cost in the event hot loop",
            "add __slots__ = (...) to the class (and its bases)",
        ),
    ]
}


@dataclass
class LintViolation:
    """One finding: rule id, location, and the rule's why/fix-it text."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    why: str = ""
    fixit: str = ""

    def __post_init__(self):
        if not self.why:
            self.why = RULES[self.rule].why
        if not self.fixit:
            self.fixit = RULES[self.rule].fixit


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(?P<action>disable|enable)"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+))?"
)

#: Marker meaning "every rule suppressed on this line".
_ALL = "ALL"


def _suppressions(source: str):
    """Parse suppression comments.

    Returns ``(line_map, regions)``: *line_map* maps a line number to
    the rule ids suppressed by a trailing comment on that line;
    *regions* is a list of ``(start, end, rule)`` spans opened by a
    standalone ``disable`` comment and closed by a standalone
    ``enable`` (or end of file).
    """
    line_map: Dict[int, Set[str]] = {}
    open_regions: Dict[str, int] = {}
    regions: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = m.group("rules")
            names = (
                {r.strip().upper() for r in rules.split(",") if r.strip()}
                if rules
                else {_ALL}
            )
            standalone = tok.line[: tok.start[1]].strip() == ""
            if not standalone:
                if m.group("action") == "disable":
                    line_map.setdefault(tok.start[0], set()).update(names)
                continue
            line = tok.start[0]
            if m.group("action") == "disable":
                for name in names:
                    open_regions.setdefault(name, line)
            else:
                targets = list(open_regions) if _ALL in names else names
                for name in targets:
                    start = open_regions.pop(name, None)
                    if start is not None:
                        regions.append((start, line, name))
    except tokenize.TokenError:
        pass  # unterminated string etc. — the ast parse will complain
    for name, start in open_regions.items():
        regions.append((start, 1 << 31, name))
    return line_map, regions


def _is_suppressed(
    violation: "LintViolation",
    line_map: Dict[int, Set[str]],
    regions: List[Tuple[int, int, str]],
) -> bool:
    rules_here = line_map.get(violation.line, ())
    if _ALL in rules_here or violation.rule in rules_here:
        return True
    return any(
        start <= violation.line <= end and rule in (_ALL, violation.rule)
        for start, end, rule in regions
    )


# ---------------------------------------------------------------------------
# Cross-file class registry (SIM008)
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    """What SIM008 needs to know about one class definition."""

    name: str
    has_slots: bool
    bases: Tuple[str, ...]
    exempt: bool  # NamedTuple/Enum/Exception/dataclass etc.


#: Base names whose subclasses never need __slots__ (either slotted
#: already, carry __dict__ by design, or are not hot-loop material).
_SIM008_EXEMPT_BASES = {
    "NamedTuple",
    "Enum",
    "IntEnum",
    "Flag",
    "Exception",
    "BaseException",
    "ValueError",
    "RuntimeError",
    "TypeError",
    "KeyError",
    "OSError",
    "AssertionError",
    "Protocol",
    "ABC",
    "TestCase",
    "type",
    "dict",
    "list",
    "tuple",
    "str",
}

_SIM008_EXEMPT_DECORATORS = {"dataclass", "total_ordering", "runtime_checkable"}


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[T] etc.
        return _base_name(node.value)
    return ""


def _class_info(node: ast.ClassDef) -> ClassInfo:
    has_slots = any(
        isinstance(stmt, ast.Assign)
        and any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
        )
        for stmt in node.body
    ) or any(
        isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and stmt.target.id == "__slots__"
        for stmt in node.body
    )
    bases = tuple(_base_name(b) for b in node.bases)
    deco_names = {
        _base_name(d.func) if isinstance(d, ast.Call) else _base_name(d)
        for d in node.decorator_list
    }
    exempt = bool(
        set(bases) & _SIM008_EXEMPT_BASES or deco_names & _SIM008_EXEMPT_DECORATORS
    )
    return ClassInfo(node.name, has_slots, bases, exempt)


def build_class_registry(sources: Iterable[Tuple[str, str]]) -> Dict[str, ClassInfo]:
    """Collect class definitions across *(path, source)* pairs.

    Last definition wins on a name clash — good enough for a lint whose
    purpose is flagging obvious hot-loop __dict__ churn, not type
    resolution.
    """
    registry: Dict[str, ClassInfo] = {}
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                registry[node.name] = _class_info(node)
    return registry


def _sim008_needs_slots(name: str, registry: Dict[str, ClassInfo]) -> bool:
    """True when *name* resolves to a project class that should be slotted."""
    info = registry.get(name)
    if info is None or info.exempt or info.has_slots:
        return False
    # Walk the base chain: an unknown base (stdlib or third-party other
    # than the exempt set) means adding __slots__ here is moot.
    seen = set()
    stack = list(info.bases)
    while stack:
        base = stack.pop()
        if not base or base in seen:
            continue
        seen.add(base)
        if base == "object":
            continue
        parent = registry.get(base)
        if parent is None:
            # Unknown (stdlib/third-party) base: it almost certainly has
            # a __dict__, so slotting the leaf would be moot — skip.
            return False
        if parent.exempt:
            return False
        if not parent.has_slots:
            # base itself is unslotted: flagging the leaf alone would be
            # misleading, but the hazard is real — still flag.
            pass
        stack.extend(parent.bases)
    return True


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

_WALLCLOCK_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "expovariate",
    "seed",
    "getrandbits",
}

_SCHED_INTERNALS = {"_queue", "_next", "_heap", "_eid"}

_ORDERING_FUNCS = {"sorted", "min", "max", "heappush", "heappushpop", "heapreplace"}


class _Checker(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        registry: Optional[Dict[str, ClassInfo]] = None,
        select: Optional[Set[str]] = None,
    ):
        self.path = path
        self.registry = registry or {}
        self.select = select
        self.violations: List[LintViolation] = []
        self._parents: List[ast.AST] = []
        self._loop_depth = 0
        #: names bound to the `time`/`random`/`datetime` modules or
        #: wall-clock functions by imports in this file
        self._module_aliases: Dict[str, str] = {}
        self._func_aliases: Dict[str, Tuple[str, str]] = {}

    # -- plumbing ----------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.select is not None and rule not in self.select:
            return
        self.violations.append(
            LintViolation(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def generic_visit(self, node: ast.AST) -> None:
        self._parents.append(node)
        try:
            super().generic_visit(node)
        finally:
            self._parents.pop()

    def _ancestors(self) -> List[ast.AST]:
        return self._parents

    # -- imports (SIM001 name tracking) ------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("time", "random", "datetime"):
                self._module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "random", "datetime"):
            for alias in node.names:
                self._func_aliases[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )
        self.generic_visit(node)

    # -- loops (SIM002 iterable + SIM008 context) --------------------------

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, ast.Set):
            self._emit(
                "SIM002",
                iter_node,
                "iteration over a set literal — order follows PYTHONHASHSEED",
            )
        elif isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                self._emit(
                    "SIM002",
                    iter_node,
                    f"iteration over {func.id}(...) — order follows "
                    "PYTHONHASHSEED",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "keys":
                self._emit(
                    "SIM002",
                    iter_node,
                    "redundant .keys() iteration — hides whether order "
                    "matters; iterate the dict (insertion order) or "
                    "sorted(d)",
                )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self._loop_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._loop_depth -= 1

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- defs (SIM006) ------------------------------------------------------

    def _check_defaults(self, node) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._emit(
                    "SIM006",
                    default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- calls (SIM001/003/005/007/008 + heappush tuples for SIM004) -------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func

        # SIM001: wall-clock / module-level random
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = self._module_aliases.get(func.value.id) or (
                "datetime"
                if self._func_aliases.get(func.value.id) == ("datetime", "datetime")
                else None
            )
            base = func.value.id if owner is None else owner
            if owner == "random" and func.attr in _RANDOM_FUNCS:
                self._emit(
                    "SIM001",
                    node,
                    f"random.{func.attr}() uses the interpreter-global "
                    "unseeded RNG",
                )
            elif (base, func.attr) in _WALLCLOCK_ATTRS and (
                owner is not None or base in ("datetime", "date")
            ):
                self._emit(
                    "SIM001",
                    node,
                    f"{func.value.id}.{func.attr}() reads the wall clock",
                )
        elif isinstance(func, ast.Name) and func.id in self._func_aliases:
            module, original = self._func_aliases[func.id]
            if (module, original) in _WALLCLOCK_ATTRS or (
                module == "random" and original in _RANDOM_FUNCS
            ):
                self._emit(
                    "SIM001",
                    node,
                    f"{func.id}() resolves to {module}.{original} "
                    "(wall clock / unseeded RNG)",
                )

        # SIM003: id() feeding an ordering construct
        if isinstance(func, ast.Name) and func.id == "id" and self._in_ordering():
            self._emit(
                "SIM003",
                node,
                "id() in an ordering key — allocator addresses are not "
                "stable across runs",
            )

        # SIM004: float arithmetic in tie-break elements of heap entries
        if isinstance(func, ast.Name) and func.id in (
            "heappush",
            "heappushpop",
            "heapreplace",
        ):
            entry = node.args[-1] if node.args else None
            if isinstance(entry, ast.Tuple):
                for element in entry.elts[1:]:
                    if self._has_float_arith(element):
                        self._emit(
                            "SIM004",
                            element,
                            "float arithmetic in a tie-break element of a "
                            "heap entry",
                        )

        # SIM007: unguarded bus publish
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "publish"
            and self._names_bus(func.value)
            and not self._publish_guarded()
        ):
            self._emit(
                "SIM007",
                node,
                "bus.publish(...) without a zero-subscriber guard "
                "constructs the event even when nobody listens",
            )

        # SIM008: hot-loop instantiation of an unslotted project class
        if (
            self._loop_depth > 0
            and isinstance(func, ast.Name)
            and _sim008_needs_slots(func.id, self.registry)
        ):
            self._emit(
                "SIM008",
                node,
                f"{func.id} is instantiated inside a loop but has no "
                "__slots__",
            )

        self.generic_visit(node)

    def _in_ordering(self) -> bool:
        """Is the current node inside a sort key / heap entry / compare?"""
        for ancestor in reversed(self._parents):
            if isinstance(ancestor, ast.Compare):
                return True
            if isinstance(ancestor, ast.Call):
                fname = (
                    ancestor.func.id
                    if isinstance(ancestor.func, ast.Name)
                    else ancestor.func.attr
                    if isinstance(ancestor.func, ast.Attribute)
                    else ""
                )
                if fname in _ORDERING_FUNCS or fname in ("schedule", "sort"):
                    return True
            if isinstance(ancestor, ast.Lambda):
                # lambda passed as key= to a sort — look one level out
                continue
        return False

    def _has_float_arith(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(
                sub.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
            ):
                for operand in (sub.left, sub.right):
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, float
                    ):
                        return True
        return False

    def _names_bus(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Name):
            return "bus" in value.id
        if isinstance(value, ast.Attribute):
            return "bus" in value.attr
        return False

    def _publish_guarded(self) -> bool:
        """Is the publish call under an `if` testing a subscriber cache?"""
        for ancestor in reversed(self._parents):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(ancestor, ast.If):
                for sub in ast.walk(ancestor.test):
                    if isinstance(sub, ast.Attribute) and (
                        sub.attr.startswith("_sub") or "listener" in sub.attr
                    ):
                        return True
                    if isinstance(sub, ast.Name) and (
                        sub.id.startswith("_sub")
                        or "listener" in sub.id
                        or "sub" in sub.id
                    ):
                        return True
        return False

    # -- attributes (SIM005) ------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _SCHED_INTERNALS and not (
            isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            owner = (
                node.value.id
                if isinstance(node.value, ast.Name)
                else ast.unparse(node.value)
                if hasattr(ast, "unparse")
                else "<expr>"
            )
            self._emit(
                "SIM005",
                node,
                f"direct access to {owner}.{node.attr} bypasses "
                "Environment.schedule",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    registry: Optional[Dict[str, ClassInfo]] = None,
    select: Optional[Set[str]] = None,
) -> List[LintViolation]:
    """Lint one source buffer; returns violations sorted by location.

    *registry* supplies cross-file class info for SIM008 — when omitted
    it is built from this buffer alone.  *select* restricts to a subset
    of rule ids.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule="SIM000",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                why="the file does not parse; no rules were checked",
                fixit="fix the syntax error",
            )
        ]
    if registry is None:
        registry = build_class_registry([(path, source)])
    checker = _Checker(path, registry=registry, select=select)
    checker.visit(tree)
    line_map, regions = _suppressions(source)
    out = [
        v for v in checker.violations if not _is_suppressed(v, line_map, regions)
    ]
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


# SIM000 (syntax error) participates in reporting but is not a real rule.
RULES.setdefault(
    "SIM000",
    Rule("SIM000", "syntax error", "the file does not parse", "fix the syntax"),
)


def _iter_py_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    # de-duplicate while keeping deterministic order
    return list(dict.fromkeys(files))


def lint_paths(
    paths: Sequence[str], select: Optional[Set[str]] = None
) -> List[LintViolation]:
    """Lint every ``.py`` file under *paths* (files or directories).

    Two passes: the first builds the cross-file class registry SIM008
    needs (a class defined in one module, instantiated in a loop in
    another); the second runs the rules per file.
    """
    files = _iter_py_files(paths)
    sources: List[Tuple[str, str]] = []
    for f in files:
        try:
            sources.append((str(f), f.read_text()))
        except (OSError, UnicodeDecodeError):
            continue
    registry = build_class_registry(sources)
    violations: List[LintViolation] = []
    for path, source in sources:
        violations.extend(lint_source(source, path, registry=registry, select=select))
    return violations


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def format_text(violations: Sequence[LintViolation]) -> str:
    """Human-readable report: location, rule, message, why, fix-it."""
    if not violations:
        return "simlint: clean"
    lines = []
    for v in violations:
        lines.append(f"{v.path}:{v.line}:{v.col}: {v.rule} {v.message}")
        lines.append(f"    why: {v.why}")
        lines.append(f"    fix: {v.fixit}")
    lines.append(f"simlint: {len(violations)} violation(s)")
    return "\n".join(lines)


def format_json(violations: Sequence[LintViolation]) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    return json.dumps([asdict(v) for v in violations], indent=2, sort_keys=True)
