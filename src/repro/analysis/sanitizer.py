"""Runtime simulation sanitizer: invariants enforced while running.

The repo's determinism guarantees ("byte-identical for any ``--jobs``,
any ``--shards``, any queue depth") are normally verified *after the
fact* by hashing experiment output.  The sanitizer turns them into
properties checked *while the simulation runs*, so a violation names
the exact event that broke the contract instead of a diff two layers
later.  Three attachment points:

- :class:`SanitizedEnvironment` — a drop-in :class:`Environment`
  subclass whose dispatch path verifies, per event, that the virtual
  clock never runs backwards and that no pending same-instant entry
  with a smaller ``(time, priority, eid)`` key was skipped (the exact
  class of the PR 8 cohort-dispatch bug, where URGENT interlopers
  parked in the front slot were dispatched after the cohort
  remainder).  The checked loop replaces the inlined fast path of
  :meth:`Environment.run`, so the production kernel keeps zero
  sanitizer attributes and zero extra branches when the sanitizer is
  off — enabling it swaps the class, not the code.
- :class:`StackSanitizer` — per-machine checks (dispatch-slot count
  bounded by device channels, block-layer request conservation, token
  conservation per tenant bucket) implemented as stack-bus
  subscribers.  With the sanitizer off no subscriber exists, so the
  zero-subscriber fast path never even constructs the events.
- the shard layer — :class:`~repro.sim.shard.channel.InterShardChannel`
  and :class:`~repro.sim.shard.environment.ShardEnvironment` call
  :func:`check_delivery` / duplicate-sequence guards when built with
  sanitize on, enforcing conservative-sync causality
  (``arrival >= send + link_latency``, never into a shard's past).

Every violation raises :class:`SanitizerError` carrying a structured
snippet of recent event history, formatted into the message.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop
from typing import Any, List, Optional, Tuple

from repro.sim.core import EmptySchedule, Environment, StopSimulation
from repro.sim.events import Event, NORMAL

#: Dispatch records kept for the error snippet (per environment).
HISTORY_DEPTH = 32


class SanitizerError(AssertionError):
    """A simulation invariant was violated while the sanitizer was on.

    ``history`` holds structured ``(time, priority, eid, kind)`` records
    of the most recent dispatches (oldest first); ``context`` carries
    check-specific details.  Both are rendered into ``str(error)`` so a
    bare traceback is already actionable.
    """

    def __init__(
        self,
        message: str,
        history: Optional[List[Tuple]] = None,
        context: Optional[dict] = None,
    ):
        self.history = list(history or ())
        self.context = dict(context or {})
        parts = [message]
        if self.context:
            details = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
            parts.append(f"  context: {details}")
        if self.history:
            parts.append("  recent dispatches (oldest first):")
            for record in self.history:
                t, priority, eid, kind = record
                parts.append(f"    t={t!r} priority={priority} eid={eid} {kind}")
        super().__init__("\n".join(parts))


class SanitizedEnvironment(Environment):
    """An :class:`Environment` whose dispatch path checks invariants.

    Semantics are identical to the base class — same queue structures,
    same cohort batching (``_run_cohort`` is *inherited*, so kernel
    bugs there are caught, not masked), same results — but every
    dispatched entry is verified:

    - **monotonic clock**: an entry's time is never below the previous
      dispatch's time;
    - **cohort order**: at the moment an entry is dispatched, no
      pending entry (heap head or front slot) sorts before it.  In a
      correct kernel the dispatched entry is always the minimum of
      everything pending; the PR 8 bug — front-slot URGENT interlopers
      dispatched after the cohort remainder — breaks exactly this.
    - **scheduling sanity**: ``schedule()`` rejects negative delays
      (the unchecked fast path would silently rewind the clock).

    The cost is one non-inlined dispatch per event (~2× the fast
    path); the payoff is that "byte-identical" failures surface at the
    first out-of-order event with the event history attached.
    """

    __slots__ = ("_san_history", "_san_prev_time")

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time)
        self._san_history: deque = deque(maxlen=HISTORY_DEPTH)
        self._san_prev_time = float(initial_time)

    # -- invariant checks ---------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        if delay < 0:
            raise SanitizerError(
                "schedule() with a negative delay would rewind the clock",
                history=list(self._san_history),
                context={"delay": delay, "now": self._now, "event": type(event).__name__},
            )
        super().schedule(event, priority, delay)

    def _dispatch(self, entry: Tuple[float, int, int, Event]) -> None:
        t = entry[0]
        if t < self._san_prev_time:
            raise SanitizerError(
                "monotonic clock violation: dispatching into the past",
                history=list(self._san_history),
                context={"entry_time": t, "previous_time": self._san_prev_time},
            )
        self._san_prev_time = t
        pending = self._next
        if pending is not None and pending < entry:
            self._cohort_order_violation(entry, pending, "front slot")
        queue = self._queue
        if queue and queue[0] < entry:
            self._cohort_order_violation(entry, queue[0], "heap head")
        self._san_history.append(
            (entry[0], entry[1], entry[2], type(entry[3]).__name__)
        )
        super()._dispatch(entry)

    def _cohort_order_violation(self, entry, pending, where: str) -> None:
        raise SanitizerError(
            f"cohort order violation: dispatching an entry while the {where} "
            "holds a pending entry that sorts before it — same-instant "
            "(priority, eid) order depends on unrelated traffic",
            history=list(self._san_history),
            context={
                "dispatching": (entry[0], entry[1], entry[2], type(entry[3]).__name__),
                "pending": (pending[0], pending[1], pending[2], type(pending[3]).__name__),
            },
        )

    # -- checked run loop ---------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """The checked twin of :meth:`Environment.run`.

        Same entry-selection logic, but every event goes through
        :meth:`_dispatch` (checked) instead of the inlined fast path,
        and the cohort path uses the *inherited* ``_run_cohort`` — the
        production batching code — whose per-event dispatches resolve
        to the checked method.  Keeping the fast path free of sanitizer
        hooks is what makes the feature zero-cost when off.
        """
        if self._halted:
            return self._halt_reason
        until = self._resolve_until(until)
        if isinstance(until, tuple) and until[0] is self._ALREADY_DONE:
            return until[1]

        queue = self._queue
        try:
            while not self._halted:
                nxt = self._next
                if nxt is not None and not (queue and queue[0] < nxt):
                    self._next = None
                    entry = nxt
                elif queue:
                    entry = heappop(queue)
                else:
                    raise EmptySchedule()
                tnow = entry[0]
                self._now = tnow
                if (queue and queue[0][0] == tnow) or (
                    self._next is not None and self._next[0] == tnow
                ):
                    self._run_cohort(entry, tnow)
                    continue
                self._dispatch(entry)
            return self._halt_reason
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "no scheduled events left but until event was not triggered"
                )
            return None


class StackSanitizer:
    """Per-machine invariant checks, attached as stack-bus subscribers.

    Attached by ``build_node`` when the sanitize flag is on; with the
    flag off this object is never constructed, no subscription exists,
    and the bus's zero-subscriber fast path skips even building the
    events — the same inertness contract the tracer and health monitor
    follow.

    Checks (all cheap — a few comparisons per block-layer event):

    - **slot bound**: the device never serves more concurrent attempts
      than it has channels (``device.active <= channels``);
    - **inflight bound**: dispatched-and-uncompleted requests never
      exceed the engine's slot count;
    - **request conservation**: ``submitted >= completed + failed +
      inflight`` at every completion (an over-completion means an event
      fired twice);
    - **token conservation** per tenant bucket: refunds never exceed
      charges, and the balance never exceeds the burst cap.
    """

    #: Relative slack for float token accounting.
    EPSILON = 1e-6

    def __init__(self, machine):
        from repro.obs.bus import BlockComplete, DeviceStart

        self.machine = machine
        self.queue = machine.block_queue
        self.device = machine.block_queue.device
        self._history: deque = deque(maxlen=16)
        bus = machine.bus
        self._unsubs = [
            bus.subscribe(DeviceStart, self._on_device_start),
            bus.subscribe(BlockComplete, self._on_block_complete),
        ]

    def close(self) -> None:
        """Detach every subscription (test hygiene)."""
        for unsub in self._unsubs:
            unsub()
        self._unsubs = []

    def _fail(self, message: str, **context) -> None:
        raise SanitizerError(message, history=list(self._history), context=context)

    def _on_device_start(self, event) -> None:
        self._history.append((event.time, 0, 0, f"DeviceStart/{event.op}"))
        channels = max(1, getattr(self.device, "channels", 1))
        active = getattr(self.device, "active", 0)
        if active > channels:
            self._fail(
                "slot bound violation: more concurrent device attempts than "
                "channels — a begin_service/end_service bracket leaked",
                active=active,
                channels=channels,
                device=getattr(self.device, "name", "?"),
            )

    def _on_block_complete(self, event) -> None:
        queue = self.queue
        self._history.append(
            (event.time, 0, 0, f"BlockComplete/#{getattr(event.request, 'id', '?')}")
        )
        if queue.inflight_count > queue.nslots:
            self._fail(
                "inflight bound violation: more outstanding requests than "
                "dispatch slots",
                inflight=queue.inflight_count,
                nslots=queue.nslots,
            )
        accounted = queue.completed + queue.failed + queue.inflight_count
        if accounted > queue.submitted:
            self._fail(
                "request conservation violation: completed + failed + "
                "inflight exceeds submitted — a done event fired twice?",
                submitted=queue.submitted,
                completed=queue.completed,
                failed=queue.failed,
                inflight=queue.inflight_count,
            )
        self._check_token_buckets()

    def _check_token_buckets(self) -> None:
        registry = getattr(self.machine.scheduler, "buckets", None)
        if registry is None:
            return
        # dict.fromkeys: deterministic dedupe of shared buckets
        # (insertion order), where set() would hash-order them.
        for bucket in dict.fromkeys(registry._by_pid.values()):
            slack = self.EPSILON * max(1.0, bucket.charged_total)
            if bucket.refunded_total > bucket.charged_total + slack:
                self._fail(
                    "token conservation violation: a tenant bucket was "
                    "refunded more than it was ever charged",
                    charged=bucket.charged_total,
                    refunded=bucket.refunded_total,
                )
            if bucket.balance > bucket.cap + self.EPSILON * max(1.0, bucket.cap):
                self._fail(
                    "token conservation violation: bucket balance exceeds "
                    "its burst cap",
                    balance=bucket.balance,
                    cap=bucket.cap,
                )


def attach_sanitizer(machine) -> StackSanitizer:
    """Attach a :class:`StackSanitizer` to one built machine."""
    return StackSanitizer(machine)


def check_delivery(env_now: float, arrival: float, message) -> None:
    """Conservative-sync causality: never deliver into a shard's past.

    Called by the shard layer (inject path) when sanitize is on; a
    message whose arrival precedes the receiving shard's clock means
    the epoch protocol released it late — the sync window no longer
    bounds the link latency.
    """
    if arrival < env_now:
        raise SanitizerError(
            "conservative-sync causality violation: message would arrive in "
            "the receiving shard's past",
            context={
                "arrival": arrival,
                "shard_now": env_now,
                "src_node": getattr(message, "src_node", "?"),
                "dst_node": getattr(message, "dst_node", "?"),
                "seq": getattr(message, "seq", "?"),
                "kind": getattr(message, "kind", "?"),
            },
        )
