"""Common units and constants for the storage stack.

All sizes are in bytes, all times in seconds, and disk space is managed
in 4 KiB blocks (one block backs one page-cache page).
"""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Size of a page-cache page and of a disk block.
PAGE_SIZE = 4 * KB

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def pages_for(nbytes: int) -> int:
    """Number of pages needed to hold *nbytes* (at least one for nbytes>0)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count {nbytes}")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def align_down(nbytes: int, unit: int = PAGE_SIZE) -> int:
    """Round *nbytes* down to a multiple of *unit*."""
    return (nbytes // unit) * unit


def align_up(nbytes: int, unit: int = PAGE_SIZE) -> int:
    """Round *nbytes* up to a multiple of *unit*."""
    return ((nbytes + unit - 1) // unit) * unit
