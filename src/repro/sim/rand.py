"""Seeded random-number streams for reproducible experiments.

Each subsystem/workload draws from its own named stream so that adding a
new consumer of randomness does not perturb the draws seen by existing
ones (a standard DES hygiene practice).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """Factory of independent, deterministically-seeded RNGs."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for *name*, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            mixed = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 0x9E3779B1)
            rng = random.Random(mixed & 0xFFFFFFFF)
            self._streams[name] = rng
        return rng

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)
