"""Analytical fast-forward: replay steady-state syscall streams in
closed form instead of event-by-event.

Long simulations spend most of their wall-clock in *steady-state
phases*: a reader streaming a file at a constant per-call cost (every
page either a cache hit or a readahead-pipelined miss), or a writer
overwriting an in-cache region at memory speed.  Event-accurate
execution prices every one of those syscalls through the full stack —
per-page cache operations, readahead, block requests, device pricing —
even though each call is *identical* to the previous one.  In the
spirit of CAWL's cache-aware write model and Boukhobza & Timsit's
analytical disk simulation, this module detects such phases and
advances them analytically: the clock moves by the measured per-call
cost, per-tenant byte accounting moves by the measured per-call delta,
and the whole cache/fs/block machinery is skipped.

Detection is signature-based and conservative.  Per ``(task, inode,
op)`` stream the controller measures every call's simulated cost and
byte deltas; a stream becomes *replayable* after
:data:`STEADY_THRESHOLD` consecutive calls that are sequential
(``offset`` continues where the last call ended), identical in size,
cost, and accounting delta, and undisturbed — no other stream issued a
syscall, no writeback batch, journal transaction, fault injection, or
health transition fired anywhere in the stack between or during them.
Write streams must additionally be a cache *fixed point* (dirty bytes,
cache occupancy, and file size unchanged by the call — a pure overwrite
of already-dirty pages), so appends that are genuinely filling the
cache toward a writeback threshold are never fast-forwarded.

Any transient — a burst arrival, an fsync, a foreign syscall, a
writeback or journal event, a fault, a health transition — bumps the
stack-wide disturbance counter, and every stream drops back to
event-accurate execution on its next call (replay is re-earned through
a fresh measurement window).  Hedges and fault-plan activations are
covered structurally: stacks whose device carries a fault injector are
never given a controller at all, and hedging implies a health monitor
whose transitions disturb.

What replay preserves: simulated time, per-tenant ``bytes_read`` /
``bytes_written``, syscall results, workload-visible behaviour, and
scheduler entry/return hooks (they still run around every replayed
call).  What it approximates: per-page cache state (replayed reads do
not populate or touch pages; drop-back re-misses what would have been
cached), fs/cache hit-miss counters, scheduler token billing for the
skipped block I/O, and journal metadata joins from replayed overwrites.
All of these only matter under contention — exactly when disturbance
has already forced event-accurate mode — which is why figure *shapes*
survive with fast-forward on while uncontended phases run an order of
magnitude faster.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.obs.bus import (
    BlockAdd,
    BlockComplete,
    FaultInjected,
    HealthTransition,
    JournalCheckpoint,
    JournalTxnCommit,
    JournalTxnOpen,
    StackBus,
    WritebackBatch,
)
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Consecutive identical, undisturbed calls before a stream replays.
STEADY_THRESHOLD = 4
#: Relative tolerance for "the same cost": float accumulation across
#: different absolute clock values jitters in the last ulps; genuine
#: contention moves costs by orders of magnitude more than this.
REL_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * (abs(a) + abs(b) + 1e-30)


class _Stream:
    """Steady-state signature of one ``(task, inode, op)`` syscall run."""

    __slots__ = (
        "nbytes",
        "cost",
        "result",
        "expected_offset",
        "matches",
        "activity",
        "read_delta",
        "write_delta",
        "fixed_point",
    )

    def __init__(self):
        self.nbytes = -1
        self.cost = 0.0
        self.result = 0
        self.expected_offset = -1
        self.matches = 0
        #: Disturbance counter value when this stream last ran; replay
        #: requires the world not to have moved since.
        self.activity = -1
        self.read_delta = 0.0
        self.write_delta = 0.0
        #: Write streams only: the measured call left cache occupancy,
        #: dirty bytes, and file size unchanged (pure dirty overwrite).
        self.fixed_point = False


class FastForward:
    """Per-stack steady-state detector and closed-form replayer.

    Created by the OS facade when ``fast_forward`` is on (and the
    device carries no fault injector); consulted by ``OS.read`` /
    ``OS.write`` around the syscall body.  When off, no instance exists
    anywhere — no bus subscriber, no branch beyond one ``is None``
    check — so event-accurate runs are byte-identical with the feature
    compiled in.
    """

    def __init__(self, env: "Environment", bus: StackBus):
        self.env = env
        self.bus = bus
        #: Bumped by anything that can change what a steady-state call
        #: would cost; compared against per-stream snapshots.
        self.disturbance = 0
        self._last_key: Optional[Tuple[int, int, str]] = None
        self._streams: Dict[Tuple[int, int, str], _Stream] = {}
        # -- instrumentation ------------------------------------------------
        self.replayed = 0  # syscalls advanced in closed form
        self.measured = 0  # syscalls run event-accurately under watch
        self.replayed_seconds = 0.0  # simulated time advanced by replay
        bus.subscribe(WritebackBatch, self._disturb)
        bus.subscribe(JournalTxnOpen, self._disturb)
        bus.subscribe(JournalTxnCommit, self._disturb)
        bus.subscribe(JournalCheckpoint, self._disturb)
        bus.subscribe(FaultInjected, self._disturb)
        bus.subscribe(HealthTransition, self._disturb)
        bus.subscribe(BlockAdd, self._block_write)
        bus.subscribe(BlockComplete, self._block_write)

    # -- disturbance tracking ----------------------------------------------

    def _disturb(self, _event=None) -> None:
        self.disturbance += 1

    def _block_write(self, event) -> None:
        # Write block I/O (writeback flushes, journal commits reaching
        # the device) perturbs every stream — on submission AND on
        # completion, so a drained batch still serving from the
        # elevator keeps the stack event-accurate until the last write
        # finishes.  Read I/O is the measured stream's own streaming
        # and judged by its cost signature.
        if not event.request.is_read:
            self.disturbance += 1

    def enter(self, task, call: str, info: dict) -> None:
        """Syscall-entry hook: classify the call as steady or transient.

        Reads and writes are only disturbing when they *switch
        streams* — interleaved tenants invalidate each other, a single
        stream invalidates nothing.  Everything else (fsync, creat,
        truncate, unlink, mkdir) is a transient by definition.
        """
        if call == "read" or call == "write":
            inode = info.get("inode")
            key = (task.pid, inode.id if inode is not None else -1, call)
            if key != self._last_key:
                self._last_key = key
                self.disturbance += 1
        else:
            self.disturbance += 1

    # -- the read path -------------------------------------------------------

    def read(self, os, task, inode, offset: int, nbytes: int):
        """Generator: one buffered read, replayed or measured."""
        key = (task.pid, inode.id, "read")
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = _Stream()
        if (
            stream.matches >= STEADY_THRESHOLD
            and self.disturbance == stream.activity
            and offset == stream.expected_offset
            and nbytes == stream.nbytes
            and stream.result > 0
        ):
            n = stream.result
            stream.expected_offset = offset + n
            task.bytes_read += stream.read_delta
            task.bytes_written += stream.write_delta
            # Keep the fs's sequential-read detector warm so a
            # drop-back read still readaheads like its predecessors.
            os.fs._last_read_end[inode.id] = (offset + n - 1) // PAGE_SIZE + 1
            self.replayed += 1
            self.replayed_seconds += stream.cost
            yield self.env.timeout(stream.cost)
            return n

        env = self.env
        start = env.now
        before = self.disturbance
        bytes_read = task.bytes_read
        bytes_written = task.bytes_written
        yield from os.cpu.consume(task, os.cpu.syscall_cost(nbytes))
        n = yield from os.fs.read(task, inode, offset, nbytes)
        self._note(
            stream, offset, nbytes, n, env.now - start, before,
            task.bytes_read - bytes_read, task.bytes_written - bytes_written,
            fixed_point=True,
        )
        return n

    # -- the write path ------------------------------------------------------

    def write(self, os, task, inode, offset: int, nbytes: int):
        """Generator: one buffered write, replayed or measured.

        Replay additionally requires the measured call to have been a
        cache fixed point — re-dirtying already-dirty, already-resident
        pages without growing the file — so dirty-ratio dynamics are
        never fast-forwarded past a threshold.
        """
        key = (task.pid, inode.id, "write")
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = _Stream()
        if (
            stream.matches >= STEADY_THRESHOLD
            and stream.fixed_point
            and self.disturbance == stream.activity
            and offset == stream.expected_offset
            and nbytes == stream.nbytes
            and stream.result > 0
        ):
            n = stream.result
            stream.expected_offset = offset + n
            task.bytes_read += stream.read_delta
            task.bytes_written += stream.write_delta
            self.replayed += 1
            self.replayed_seconds += stream.cost
            yield self.env.timeout(stream.cost)
            return n

        env = self.env
        cache = os.cache
        start = env.now
        before = self.disturbance
        bytes_read = task.bytes_read
        bytes_written = task.bytes_written
        dirty_before = cache.dirty_bytes
        pages_before = len(cache)
        size_before = inode.size
        yield from os.cpu.consume(task, os.cpu.syscall_cost(nbytes))
        n = yield from os.fs.write(task, inode, offset, nbytes)
        self._note(
            stream, offset, nbytes, n, env.now - start, before,
            task.bytes_read - bytes_read, task.bytes_written - bytes_written,
            fixed_point=(
                cache.dirty_bytes == dirty_before
                and len(cache) == pages_before
                and inode.size == size_before
            ),
        )
        return n

    # -- signature bookkeeping ----------------------------------------------

    def _note(
        self,
        stream: _Stream,
        offset: int,
        nbytes: int,
        result: int,
        cost: float,
        disturbance_before: int,
        read_delta: float,
        write_delta: float,
        fixed_point: bool,
    ) -> None:
        """Fold one measured call into the stream's signature."""
        self.measured += 1
        if (
            stream.activity == disturbance_before
            and self.disturbance == disturbance_before
            and offset == stream.expected_offset
            and nbytes == stream.nbytes
            and result == stream.result
            and fixed_point == stream.fixed_point
            and _close(cost, stream.cost)
            and _close(read_delta, stream.read_delta)
            and _close(write_delta, stream.write_delta)
        ):
            stream.matches += 1
        else:
            stream.matches = 1
            stream.nbytes = nbytes
            stream.result = result
            stream.cost = cost
            stream.read_delta = read_delta
            stream.write_delta = write_delta
            stream.fixed_point = fixed_point
        stream.expected_offset = offset + result
        stream.activity = self.disturbance

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Replay statistics for reports and benchmarks."""
        total = self.replayed + self.measured
        return {
            "replayed_syscalls": self.replayed,
            "measured_syscalls": self.measured,
            "replay_fraction": self.replayed / total if total else 0.0,
            "replayed_seconds": self.replayed_seconds,
        }
