"""Shared resources: semaphores, counters, and item stores.

These follow the SimPy resource idiom: ``request()``/``put()``/``get()``
return events that a process yields; releasing wakes waiters in FIFO (or
priority) order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, List

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class Request(Event):
    """Pending request for one slot of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A semaphore with *capacity* slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        if request in self.queue:
            self.queue.remove(request)

    def release(self, request: Request) -> None:
        """Free the slot held by *request* (no-op if never granted)."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """Request with a priority (lower value is served first)."""

    __slots__ = ("priority", "time")

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.time = resource.env.now
        super().__init__(resource)


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by (priority, arrival)."""

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: List[Any] = []
        self._seq = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self._seq += 1
            heapq.heappush(
                self._heap,
                (getattr(request, "priority", 0), request.time, self._seq, request),
            )
            self.queue.append(request)

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        while self._heap and len(self.users) < self.capacity:
            _, _, _, nxt = heapq.heappop(self._heap)
            if nxt not in self.queue:
                continue  # cancelled
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed()


class Container:
    """A continuous quantity (e.g. tokens, bytes) with put/get events."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: List[Any] = []  # (amount, event)
        self._putters: List[Any] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add *amount*; waits if it would exceed capacity."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._putters.append((amount, event))
        self._trigger()
        return event

    def get(self, amount: float) -> Event:
        """Remove *amount*; waits until that much is available."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._trigger()
        return event

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event.succeed()
                    progress = True
            if self._getters:
                amount, event = self._getters[0]
                if self._level >= amount:
                    self._level -= amount
                    self._getters.pop(0)
                    event.succeed()
                    progress = True


class Store:
    """FIFO store of arbitrary items with blocking put/get."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[Any] = []  # (item, event)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        self._putters.append((item, event))
        self._trigger()
        return event

    def get(self) -> Event:
        event = Event(self.env)
        self._getters.append(event)
        self._trigger()
        return event

    def __len__(self) -> int:
        return len(self.items)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                item, event = self._putters.pop(0)
                self.items.append(item)
                event.succeed()
                progress = True
            while self._getters and self.items:
                event = self._getters.pop(0)
                event.succeed(self.items.pop(0))
                progress = True
