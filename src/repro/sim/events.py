"""Event primitives for the simulation kernel.

Events move through three states: *pending* (created, not yet scheduled),
*triggered* (scheduled onto the environment's queue with a value), and
*processed* (callbacks have run).  Processes wait on events by yielding
them; the process is resumed with the event's value, or the event's
exception is thrown into it if the event failed.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

#: Queue priorities: urgent events (process initialisation, interrupts)
#: run before normal events scheduled for the same instant.  Defined
#: here (rather than in :mod:`repro.sim.core`, which re-exports them)
#: so the fused scheduling fast paths below can use them without an
#: import cycle.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt({self.cause!r})"


#: Sentinel meaning "this event has not been given a value yet".
PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Callbacks are ``f(event)`` callables run when the environment
    processes the event.  ``succeed``/``fail`` trigger the event; a
    triggered event is immutable.

    Events are the single most-allocated object in the simulation, so
    the class is slotted and the callback list is recycled through the
    environment's pool (see :attr:`Environment._cb_pool`) instead of
    being allocated fresh per event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        pool = env._cb_pool
        self.callbacks: Optional[List[Callable[["Event"], None]]] = (
            pool.pop() if pool else []
        )
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set when a failed event's exception was delivered somewhere.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Fused fast path for env.schedule(self): succeed() dominates
        # event scheduling, so skip the method call and insert directly.
        # A succeeded event fires at the current instant, so it usually
        # wins the environment's front slot and bypasses the heap.
        # simlint: disable=SIM005  (kernel-internal fused scheduling)
        env = self.env
        env._eid += 1
        entry = (env._now, NORMAL, env._eid, self)
        nxt = env._next
        if nxt is None:
            env._next = entry
        elif entry < nxt:
            heappush(env._queue, nxt)
            env._next = entry
        else:
            heappush(env._queue, entry)
        # simlint: enable=SIM005
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def cancel(self) -> None:
        """Lazily discard this event: nobody wants its callbacks any more.

        The event keeps its slot in the environment's heap, but the run
        loop sweeps it on pop without executing callbacks (cheaper than
        eagerly removing it, which would need an O(n) heap search).  Only
        cancel an event you know has no live subscribers — e.g. the
        losing timer of an ``AnyOf(timer, kick)`` race.  A failed event
        is defused by cancellation, never raised.
        """
        self.defused = True
        self.callbacks = None

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Used as a callback to chain events together.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)

    def __and__(self, other: "Event") -> "Condition":
        """``a & b`` waits for both events."""
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        """``a | b`` waits for whichever event comes first."""
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed delay.

    ``yield env.timeout(d)`` is the single hottest operation in the
    simulation, so construction is fully fused: no ``super().__init__``
    or ``env.schedule`` calls, a pooled callback list, and one direct
    heap push.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        self.defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        # simlint: disable=SIM005  (kernel-internal fused scheduling)
        env._eid += 1
        entry = (env._now + delay, NORMAL, env._eid, self)
        nxt = env._next
        if nxt is None:
            env._next = entry
        elif entry < nxt:
            heappush(env._queue, nxt)
            env._next = entry
        else:
            heappush(env._queue, entry)
        # simlint: enable=SIM005

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Immediately-scheduled event that starts a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any):
        self.env = env
        pool = env._cb_pool
        self.callbacks = pool.pop() if pool else []
        # The process object itself is the callback (Process.__call__
        # aliases _resume): the run loop recognises it by type and
        # resumes the generator without the callback indirection.
        self.callbacks.append(process)
        self.defused = False
        self._ok = True
        self._value = None
        # simlint: disable=SIM005  (kernel-internal fused scheduling)
        env._eid += 1
        entry = (env._now, URGENT, env._eid, self)
        nxt = env._next
        if nxt is None:
            env._next = entry
        elif entry < nxt:
            heappush(env._queue, nxt)
            env._next = entry
        else:
            heappush(env._queue, entry)
        # simlint: enable=SIM005


class ConditionValue:
    """Mapping of the events that triggered a condition to their values."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event that triggers once *evaluate* says it should.

    ``evaluate(events, count)`` receives the watched events and the number
    that have triggered so far.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # An event is "done" once its callbacks have been consumed;
            # the one being processed right now also qualifies.
            self.succeed(ConditionValue(e for e in self._events if e.callbacks is None))

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers when all of the given events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers when any of the given events has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
