"""The sharded-run coordinator: lockstep epochs over fleet partitions.

:class:`ShardedRun` drives a :class:`~repro.config.ClusterConfig` plus
a set of :class:`~repro.sim.shard.cluster.StreamSpec` tenant streams to
a merged metrics dict.  The fleet's nodes are partitioned contiguously
into shards; all shards advance through epochs of width equal to the
cluster link latency, exchanging messages only at epoch barriers (the
conservative window guarantees no message can arrive inside its
sending epoch, so barrier-only exchange loses nothing).

Two execution vehicles, same observable results by construction:

- **inline** — every shard lives in this process and steps
  sequentially inside the epoch loop.  This is the reference
  semantics, and the automatic fallback when worker processes are
  unavailable (e.g. inside a daemonic pool worker, which may not
  spawn children).
- **processes** — one worker process per shard, talking to the
  coordinator over a :func:`multiprocessing.Pipe` with a two-verb
  protocol (``epoch`` / ``finish``).  Cluster configs travel as dicts
  through :meth:`ClusterConfig.from_dict` — the same
  serialize-and-rebuild machinery the parallel experiment runner uses
  for stack configs — and session defaults (fault plan, tracing,
  queue depth) are re-installed in each worker just as the runner's
  pool initialiser does.

A run stops *hard* at ``duration``: only bytes acked by then count,
and in-flight messages are dropped identically under any shard layout.
Invariant-checking callers pass ``drain=True`` to instead run extra
epochs until every shard quiesces, so conservation sums balance.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Dict, List, Optional, Sequence

from repro.config import ClusterConfig
from repro.sim.shard.channel import InterShardChannel
from repro.sim.shard.cluster import StreamSpec
from repro.sim.shard.environment import ShardEnvironment
from repro.units import MB

#: Safety valve for drain mode: a fleet that hasn't quiesced after this
#: many post-duration epochs is wedged (a lost ack), not slow.
MAX_DRAIN_EPOCHS = 100_000


def partition_nodes(nodes: int, shards: int) -> List[List[int]]:
    """Split node indices 0..nodes-1 into contiguous near-equal shards.

    Contiguity keeps the mapping obvious in traces; near-equality
    (sizes differ by at most one) balances worker load.  ``shards`` is
    clamped to ``nodes`` so every shard owns at least one node.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, nodes)
    base, extra = divmod(nodes, shards)
    out: List[List[int]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _shard_worker(conn, cluster_dict, shard_index, node_indices, specs, duration, session):
    """Worker-process main: host one shard and speak the epoch protocol.

    ``session`` carries the coordinator's session defaults (fault spec,
    trace flag, queue depth, hedge, fast-forward) so --fault-*/--trace
    style settings keep applying inside shard workers, mirroring the
    experiment runner's pool initialiser.  State is cleared first: a
    forked worker inherits the parent's tracked queues and span
    builders, which belong to the parent's stacks, not this shard's.
    """
    from repro.experiments import common

    try:
        common.clear_default_fault_plan()
        common.disable_tracing()
        if session.get("fault_spec") is not None:
            plan, seed = session["fault_spec"]
            common.set_default_fault_plan(plan, seed)
        if session.get("trace"):
            common.enable_tracing()
        common.set_default_queue_depth(session.get("queue_depth", 1))
        common.set_default_hedge(session.get("hedge", False))
        common.set_default_fast_forward(session.get("fast_forward", False))
        common.set_default_sanitize(session.get("sanitize", False))

        cluster = ClusterConfig.from_dict(cluster_dict)
        shard = ShardEnvironment(
            cluster, shard_index, node_indices,
            [StreamSpec(*spec) for spec in specs], duration,
        )
        while True:
            request = conn.recv()
            verb = request[0]
            if verb == "epoch":
                _verb, t_next, messages = request
                shard.inject(messages)
                shard.run_until(t_next)
                conn.send(("ok", shard.drain_outbox(), shard.busy()))
            elif verb == "finish":
                payload = shard.finish()
                payload["faults"] = common.drain_fault_summaries()
                payload["spans"] = common.drain_spans()
                conn.send(("done", payload))
                return
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"unknown verb {verb!r}")
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class _InlineShard:
    """Adapter running one shard inside the coordinator process."""

    def __init__(self, cluster, shard_index, node_indices, specs, duration):
        self.shard = ShardEnvironment(cluster, shard_index, node_indices, specs, duration)

    def epoch(self, t_next, messages):
        self.shard.inject(messages)
        self.shard.run_until(t_next)
        return self.shard.drain_outbox(), self.shard.busy()

    def finish(self):
        # Faults/spans of inline shards sit in this process's session
        # state already; the caller's normal drain picks them up.
        return self.shard.finish()

    def close(self):
        """Nothing to tear down for an in-process shard."""


class _ProcessShard:
    """Adapter running one shard in a dedicated worker process."""

    def __init__(self, cluster, shard_index, node_indices, specs, duration, session):
        self._conn, child = multiprocessing.Pipe()
        self._proc = multiprocessing.Process(
            target=_shard_worker,
            args=(
                child, cluster.to_dict(), shard_index, list(node_indices),
                [tuple(spec) for spec in specs], duration, session,
            ),
            name=f"shard-{shard_index}",
        )
        self._proc.start()
        child.close()

    def send_epoch(self, t_next, messages):
        self._conn.send(("epoch", t_next, messages))

    def recv(self):
        reply = self._conn.recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        return reply[1:]

    def finish(self):
        self._conn.send(("finish",))
        (payload,) = self.recv()
        return payload

    def close(self):
        self._conn.close()
        self._proc.join(timeout=30)
        if self._proc.is_alive():  # pragma: no cover - wedged worker
            self._proc.terminate()
            self._proc.join()


class ShardedRun:
    """Coordinate one cluster scenario across N lockstep shards."""

    def __init__(
        self,
        cluster: ClusterConfig,
        streams: Sequence[StreamSpec],
        duration: float,
        shards: Optional[int] = None,
        processes: Optional[bool] = None,
        drain: bool = False,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        for spec in streams:
            if not 0 <= spec.gateway < cluster.nodes:
                raise ValueError(
                    f"stream {spec.stream_id} gateway {spec.gateway} outside "
                    f"fleet of {cluster.nodes} nodes"
                )
            if cluster.contract(spec.tenant) is None:
                raise ValueError(
                    f"stream {spec.stream_id} names unknown tenant {spec.tenant!r}"
                )
        if shards is None:
            from repro.experiments.common import default_shards

            shards = default_shards()
        self.cluster = cluster
        self.streams = list(streams)
        self.duration = float(duration)
        self.shards = min(max(1, shards), cluster.nodes)
        self.drain = drain
        if processes is None:
            # Workers of a ProcessPoolExecutor are daemonic and may not
            # spawn children; fall back to inline stepping there (the
            # results are identical by design — only wall-clock differs).
            processes = (
                self.shards > 1 and not multiprocessing.current_process().daemon
            )
        self.processes = bool(processes) and self.shards > 1
        self.epochs_run = 0

    # -- internals ----------------------------------------------------------

    def _session(self) -> Dict:
        from repro.experiments import common

        return {
            "fault_spec": common.default_fault_plan(),
            "trace": common.tracing_enabled(),
            "queue_depth": common.default_queue_depth(),
            "hedge": common.default_hedge(),
            "fast_forward": common.default_fast_forward(),
            "sanitize": common.default_sanitize(),
        }

    def _spawn_shards(self, partitions):
        owners = []
        for shard_index, node_indices in enumerate(partitions):
            node_set = set(node_indices)
            specs = [s for s in self.streams if s.gateway in node_set]
            owners.append((shard_index, node_indices, specs))
        if self.processes:
            session = self._session()
            return [
                _ProcessShard(self.cluster, i, nodes, specs, self.duration, session)
                for i, nodes, specs in owners
            ]
        return [
            _InlineShard(self.cluster, i, nodes, specs, self.duration)
            for i, nodes, specs in owners
        ]

    def run(self) -> Dict:
        """Execute the epoch loop; return the merged metrics dict."""
        partitions = partition_nodes(self.cluster.nodes, self.shards)
        node_to_shard = {
            node: shard for shard, nodes in enumerate(partitions) for node in nodes
        }
        from repro.experiments.common import default_sanitize

        epoch = self.cluster.link_latency
        channel = InterShardChannel(epoch, sanitize=default_sanitize())
        vehicles = self._spawn_shards(partitions)
        try:
            t = 0.0
            busy = True
            while True:
                past_duration = t >= self.duration
                if past_duration and not self.drain:
                    break
                if past_duration and not busy and channel.pending_count() == 0:
                    break
                if self.epochs_run - int(self.duration / epoch) > MAX_DRAIN_EPOCHS:
                    raise RuntimeError(
                        f"fleet failed to quiesce after {MAX_DRAIN_EPOCHS} "
                        "drain epochs — protocol deadlock?"
                    )
                t_next = t + epoch if past_duration else min(t + epoch, self.duration)
                due = channel.due(t, t_next)
                per_shard: List[List] = [[] for _ in vehicles]
                for node, messages in due.items():
                    per_shard[node_to_shard[node]].extend(messages)
                if self.processes:
                    for vehicle, messages in zip(vehicles, per_shard):
                        vehicle.send_epoch(t_next, messages)
                    busy = False
                    for vehicle in vehicles:
                        outbox, shard_busy = vehicle.recv()
                        channel.push(outbox)
                        busy = busy or shard_busy
                else:
                    busy = False
                    for vehicle, messages in zip(vehicles, per_shard):
                        outbox, shard_busy = vehicle.epoch(t_next, messages)
                        channel.push(outbox)
                        busy = busy or shard_busy
                t = t_next
                self.epochs_run += 1
            payloads = [vehicle.finish() for vehicle in vehicles]
        finally:
            for vehicle in vehicles:
                vehicle.close()
        return self._merge(payloads)

    def _merge(self, payloads: List[Dict]) -> Dict:
        """Fold per-shard payloads into the canonical result dict."""
        from repro.experiments import common

        payloads = sorted(payloads, key=lambda p: p["shard"])
        stream_reports: List[Dict] = []
        nodes: Dict[int, Dict] = {}
        for payload in payloads:
            stream_reports.extend(payload["streams"])
            nodes.update(payload["nodes"])
            # Worker shards ship their fault summaries and spans home so
            # the runner's drains see them exactly as if built inline.
            common.add_forwarded_fault_summaries(payload.get("faults", []))
            common.add_forwarded_spans(payload.get("spans", []))
        stream_reports.sort(key=lambda r: r["stream_id"])

        tenants: Dict[str, Dict] = {}
        for contract in self.cluster.tenants:
            tenants[contract.name] = {
                "bytes": 0,
                "streams": 0,
                "chunk_errors": 0,
                "latencies": [],
            }
        for report in stream_reports:
            bucket = tenants[report["tenant"]]
            bucket["bytes"] += report["bytes_acked"]
            bucket["streams"] += 1
            bucket["chunk_errors"] += report["chunk_errors"]
            bucket["latencies"].extend(report["latencies"])
        for name, bucket in tenants.items():
            samples = bucket.pop("latencies")
            bucket["mbps"] = bucket["bytes"] / self.duration / MB
            bucket["chunk_p50"] = _percentile(samples, 50)
            bucket["chunk_p99"] = _percentile(samples, 99)
            ledger = {"charged": 0.0, "refunded": 0.0, "net": 0.0}
            for node in nodes.values():
                entry = node["ledger"].get(name)
                if entry is not None:
                    for key in ledger:
                        ledger[key] += entry[key]
            bucket["tokens"] = ledger

        conservation = {"submitted": 0, "completed": 0, "failed": 0, "inflight": 0}
        for node in nodes.values():
            for key in conservation:
                conservation[key] += node["conservation"][key]

        return {
            "tenants": tenants,
            "per_stream": stream_reports,
            "per_node": {
                index: {
                    "bytes_written": node["bytes_written"],
                    "chunk_errors": node["chunk_errors"],
                    "conservation": node["conservation"],
                }
                for index, node in sorted(nodes.items())
            },
            "conservation": conservation,
            "meta": {
                "nodes": self.cluster.nodes,
                "streams": len(self.streams),
                "shards": self.shards,
                "processes": self.processes,
                "epochs": self.epochs_run,
                "duration": self.duration,
                "drained": self.drain,
            },
        }


def run_cluster(
    cluster: ClusterConfig,
    streams: Sequence[StreamSpec],
    duration: float,
    shards: Optional[int] = None,
    processes: Optional[bool] = None,
    drain: bool = False,
) -> Dict:
    """One-call convenience wrapper around :class:`ShardedRun`."""
    return ShardedRun(
        cluster, streams, duration, shards=shards, processes=processes, drain=drain
    ).run()
