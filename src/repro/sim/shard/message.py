"""Timestamped inter-node messages and their canonical ordering.

A :class:`ShardMessage` is the only way state crosses node boundaries
in a sharded run.  Its identity triple ``(arrival, src_node, seq)`` is
*shard-layout independent* — the send time, sending node, and that
node's own send counter don't change when the fleet is re-partitioned
— so sorting any batch of messages by :func:`canonical_order` yields
the same delivery sequence whether the batch was collected from one
shard or sixteen, in whatever order the shard processes happened to
finish their epoch.  That sort key is the heart of the determinism
guarantee.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Tuple


class ShardMessage(NamedTuple):
    """One timestamped message between two cluster nodes.

    Plain picklable data: messages cross process boundaries between
    shard workers and the coordinator every epoch.
    """

    arrival: float  # simulated delivery time (send time + link latency)
    src_node: int  # sending node index (cluster-wide)
    seq: int  # per-source send counter (cluster-wide meaning)
    dst_node: int  # receiving node index
    kind: str  # handler selector, e.g. "write_chunk", "ack"
    payload: Dict[str, Any]  # JSON-able handler arguments


def canonical_order(message: ShardMessage) -> Tuple[float, int, int]:
    """The shard-layout-independent sort key for per-epoch delivery."""
    return (message.arrival, message.src_node, message.seq)
