"""Cluster node runtime: DataNode-style machines over the message fabric.

Each :class:`ClusterNode` is one full simulated machine (built through
:func:`repro.experiments.common.build_node` into the shard's shared
Environment) plus the replication-protocol handlers: ``write_chunk``
appends to the local replica file under the billing account's local
task (which the node's Split-Token scheduler throttles — the paper's
account-propagation protocol), ``sync`` makes a closed block durable,
and ``ack`` resolves the gateway-side completion events client streams
wait on.

:class:`ClientStream` drives one tenant stream end to end: per block,
a NameNode-style placement RPC (placement itself is the pure function
:func:`place_block`, so no central NameNode process serializes the
fleet), then chunk-by-chunk pipelined writes to all replicas — a chunk
completes when the *slowest* replica acks, exactly the HDFS pipeline
bottleneck of the paper's Figure 21 — and a replica sync on block
close.

Determinism rules baked in here:

- tenant account tasks are pre-spawned at node build, in contract
  order, so their pids never depend on runtime interleaving;
- block placement derives from ``(seed, stream, block_index)`` — no
  shared RNG whose draw order could depend on the shard layout;
- all throughput/latency samples are taken at the *gateway* node from
  ack arrival times, which the conservative sync protocol makes
  layout-independent.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional

from repro.config import ClusterConfig
from repro.faults.errors import EIO
from repro.sim.shard.channel import ShardRouter
from repro.sim.shard.message import ShardMessage


class StreamSpec(NamedTuple):
    """One declarative tenant stream (picklable, shard-shippable)."""

    stream_id: int  # cluster-wide stream index
    tenant: str  # billing account / contract name
    gateway: int  # node whose shard hosts the client driver
    size: int  # bytes to write (duration usually stops it first)


def place_block(seed: int, stream_id: int, block_index: int, nodes: int, replication: int) -> List[int]:
    """Replica nodes for one block — a pure function of its identity.

    NameNode-style random placement (the load-imbalance source Figure
    21 studies), derived from ``(seed, stream, block)`` so every shard
    — and every shard *count* — computes the identical placement
    without consulting a central entity.
    """
    mix = (seed * 1_000_003 + stream_id) * 1_000_033 + block_index
    return random.Random(mix).sample(range(nodes), replication)


class ClusterNode:
    """One fleet machine: local stack, tenant tasks, protocol handlers."""

    __slots__ = (
        "env",
        "router",
        "cluster",
        "index",
        "machine",
        "tasks",
        "buckets",
        "bytes_written",
        "chunk_errors",
        "_pending",
        "_corr",
    )

    def __init__(self, env, router: ShardRouter, cluster: ClusterConfig, index: int):
        from repro.experiments.common import build_node, default_fault_plan

        config = cluster.node_config(index)
        plan = config.make_fault_plan()
        if plan is None or plan.empty:
            session = default_fault_plan()
            plan = session[0] if session is not None else None
        if plan is not None and plan.power_loss_at is not None:
            # A power cut halts the whole shard Environment, which would
            # take co-hosted nodes down with it — a shard-layout-
            # dependent blast radius.  Refuse rather than silently
            # desynchronize; single-stack experiments still crash freely.
            raise ValueError(
                f"node {index}: power_loss_at is not supported in cluster "
                "runs (a halt would stop every co-hosted node)"
            )
        self.env = env
        self.router = router
        self.cluster = cluster
        self.index = index
        self.machine = build_node(env, config, node_index=index)
        #: Tenant name -> pre-spawned local billing task.
        self.tasks: Dict[str, object] = {}
        #: Tenant name -> local token bucket (throttled tenants only).
        self.buckets: Dict[str, object] = {}
        for contract in cluster.tenants:
            task = self.machine.spawn(f"dn{index}-{contract.name}")
            self.tasks[contract.name] = task
            if contract.rate_per_node is not None:
                scheduler = self.machine.scheduler
                if scheduler is None or not hasattr(scheduler, "set_limit"):
                    raise ValueError(
                        f"node {index}: tenant {contract.name!r} has a rate "
                        "contract but the node scheduler cannot throttle"
                    )
                self.buckets[contract.name] = scheduler.set_limit(
                    task, contract.rate_per_node
                )
        self.bytes_written = 0
        self.chunk_errors = 0
        #: Gateway-side pending completions: corr -> [event, remaining].
        self._pending: Dict[int, list] = {}
        self._corr = 0

    # -- gateway side (client requests) ------------------------------------

    def _await_all(self, replicas: List[int], kind: str, payload: Dict):
        """Send *kind* to every replica; an event triggering on all acks."""
        self._corr += 1
        corr = self._corr
        event = self.env.event()
        self._pending[corr] = [event, len(replicas), 0]
        message = dict(payload, reply_to=self.index, corr=corr)
        for replica in replicas:
            self.router.send(self.index, replica, kind, message)
        return event

    def request_chunk(self, replicas: List[int], tenant: str, path: str, nbytes: int):
        """Pipeline one chunk to all replicas; event fires on last ack."""
        return self._await_all(
            replicas, "write_chunk", {"tenant": tenant, "path": path, "nbytes": nbytes}
        )

    def request_sync(self, replicas: List[int], tenant: str, path: str):
        """Block close: ask all replicas to make the replica durable."""
        return self._await_all(replicas, "sync", {"tenant": tenant, "path": path})

    # -- replica side (message handlers) -----------------------------------

    def on_message(self, message: ShardMessage) -> None:
        """Dispatch one delivered message (called at its arrival time)."""
        kind = message.kind
        if kind == "ack":
            self._on_ack(message.payload)
        elif kind == "write_chunk":
            self.env.process(
                self._handle_write_chunk(message),
                name=f"dn{self.index}-write",
            )
        elif kind == "sync":
            self.env.process(
                self._handle_sync(message), name=f"dn{self.index}-sync"
            )
        else:
            raise ValueError(f"node {self.index}: unknown message kind {kind!r}")

    def _on_ack(self, payload: Dict) -> None:
        entry = self._pending.get(payload["corr"])
        if entry is None:
            return  # duplicate/late ack for an already-resolved request
        event, remaining, errors = entry
        remaining -= 1
        errors += payload.get("error", 0)
        if remaining <= 0:
            del self._pending[payload["corr"]]
            event.succeed({"errors": errors})
        else:
            entry[1] = remaining
            entry[2] = errors

    def _handle_write_chunk(self, message: ShardMessage):
        payload = message.payload
        task = self.tasks[payload["tenant"]]
        error = 0
        try:
            handle = yield from self.machine.open(task, payload["path"], create=True)
            n = yield from handle.append(payload["nbytes"])
            self.bytes_written += n
        except EIO:
            self.chunk_errors += 1
            error = 1
        self.router.send(
            self.index, payload["reply_to"], "ack",
            {"corr": payload["corr"], "error": error},
        )

    def _handle_sync(self, message: ShardMessage):
        payload = message.payload
        task = self.tasks[payload["tenant"]]
        error = 0
        inode = self.machine.fs.lookup(payload["path"])
        if inode is not None:
            try:
                yield from self.machine.fsync(task, inode)
            except EIO:
                self.chunk_errors += 1
                error = 1
        self.router.send(
            self.index, payload["reply_to"], "ack",
            {"corr": payload["corr"], "error": error},
        )

    # -- reporting ----------------------------------------------------------

    def token_ledger(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant normalized-byte accounting on this node."""
        ledger = {}
        for name, bucket in self.buckets.items():
            ledger[name] = {
                "charged": bucket.charged_total,
                "refunded": bucket.refunded_total,
                "net": bucket.charged_total - bucket.refunded_total,
            }
        return ledger

    def conservation(self) -> Dict[str, int]:
        """Block-layer request accounting for the invariant checks."""
        queue = self.machine.block_queue
        return {
            "submitted": queue.submitted,
            "completed": queue.completed,
            "failed": queue.failed,
            "inflight": queue.inflight_count,
        }


class ClientStream:
    """One tenant stream: pipelined block writes through a gateway node."""

    __slots__ = (
        "node",
        "spec",
        "cluster",
        "until",
        "bytes_acked",
        "chunk_errors",
        "latencies",
        "process",
    )

    def __init__(self, gateway: "ClusterNode", spec: StreamSpec, duration: float):
        self.node = gateway
        self.spec = spec
        self.cluster = gateway.cluster
        self.until = duration
        self.bytes_acked = 0
        self.chunk_errors = 0
        #: Client-observed chunk round-trip latencies (send -> last ack).
        self.latencies: List[float] = []
        self.process: Optional[object] = None

    def start(self) -> None:
        self.process = self.node.env.process(
            self._run(), name=f"stream{self.spec.stream_id}-{self.spec.tenant}"
        )

    @property
    def finished(self) -> bool:
        return self.process is not None and not self.process.is_alive

    def _run(self):
        env = self.node.env
        cluster = self.cluster
        spec = self.spec
        written = 0
        block_index = 0
        while written < spec.size and env.now < self.until:
            replicas = place_block(
                cluster.seed, spec.stream_id, block_index,
                cluster.nodes, cluster.replication,
            )
            # NameNode lookup RPC: placement is a pure function, but the
            # client still pays one control-plane round trip per block.
            yield env.timeout(2 * cluster.link_latency)
            block_remaining = min(cluster.block_size, spec.size - written)
            path = f"/{spec.tenant}-s{spec.stream_id}.blk{block_index}"
            while block_remaining > 0:
                if env.now >= self.until:
                    return written
                nbytes = min(cluster.chunk, block_remaining)
                sent_at = env.now
                outcome = yield self.node.request_chunk(
                    replicas, spec.tenant, path, nbytes
                )
                block_remaining -= nbytes
                written += nbytes
                if outcome["errors"]:
                    self.chunk_errors += outcome["errors"]
                else:
                    self.bytes_acked += nbytes
                self.latencies.append(env.now - sent_at)
            if env.now >= self.until:
                return written
            # Block close: replicas sync to disk (HDFS semantics), which
            # keeps the pipeline disk-bound instead of cache-absorbed.
            yield self.node.request_sync(replicas, spec.tenant, path)
            block_index += 1
        return written

    def report(self) -> Dict:
        """Picklable per-stream raw metrics (merged by the coordinator)."""
        return {
            "stream_id": self.spec.stream_id,
            "tenant": self.spec.tenant,
            "gateway": self.spec.gateway,
            "bytes_acked": self.bytes_acked,
            "chunk_errors": self.chunk_errors,
            "latencies": self.latencies,
        }
