"""Shard-aware simulation core: partitioned Environments in lockstep.

A cluster scenario too large for one event loop is partitioned into
*shards*: each :class:`~repro.sim.shard.environment.ShardEnvironment`
owns a subset of the fleet's nodes (full syscall→cache→fs→block→device
stacks sharing one :class:`~repro.sim.core.Environment`) and the
client streams gatewayed through those nodes.  Shards exchange
timestamped messages (replication pipeline hops, NameNode-style RPCs)
through the :class:`~repro.sim.shard.channel.InterShardChannel` under
conservative time-windowed synchronization: all shards advance in
lockstep epochs no wider than the minimum inter-node link latency, so
a message sent in epoch *k* always arrives in epoch *k+1* or later —
no shard ever receives a message from its past.

Determinism is the design center, not an afterthought.  *Every*
inter-node message — even between nodes co-hosted in one shard — takes
the channel with the same latency and the same canonical per-epoch
delivery order ``(arrival, src_node, seq)``, and each node's stack is
built with node-local id namespaces and seeds.  A node's event
sequence therefore depends only on the cluster config and the message
schedule, never on which shard (or process) hosts it: running the same
:class:`~repro.config.ClusterConfig` with 1 shard or K shards, inline
or across worker processes, produces identical tenant metrics.  The
serial-vs-sharded equivalence test in CI holds this property.

:class:`~repro.sim.shard.run.ShardedRun` coordinates the epoch loop,
either inline (one process hosting every shard — the reference
semantics) or with one worker process per shard, reusing the runner's
serialize-config-and-rebuild machinery to build worker fleets.
"""

from repro.sim.shard.channel import InterShardChannel, ShardRouter
from repro.sim.shard.cluster import ClientStream, ClusterNode, StreamSpec, place_block
from repro.sim.shard.environment import ShardEnvironment
from repro.sim.shard.message import ShardMessage
from repro.sim.shard.run import ShardedRun, partition_nodes, run_cluster

__all__ = [
    "ClientStream",
    "ClusterNode",
    "InterShardChannel",
    "ShardEnvironment",
    "ShardMessage",
    "ShardRouter",
    "ShardedRun",
    "StreamSpec",
    "partition_nodes",
    "place_block",
    "run_cluster",
]
