"""One shard: a private Environment hosting a partition of the fleet.

A :class:`ShardEnvironment` owns a contiguous slice of the cluster's
node indices.  Each node is a full simulated machine (built via
:func:`repro.experiments.common.build_node` into the shard's single
event loop) and the shard also hosts the client stream drivers whose
gateway node lives here.  The coordinator talks to a shard in exactly
four verbs, all timestep-shaped so the same class serves the inline
reference executor and the per-process workers:

``inject(messages)``
    Schedule this epoch's inbound messages for delivery at their
    arrival times, in the canonical order the channel sorted them.
``run_until(t)``
    Advance the shard's event loop to the epoch boundary.
``drain_outbox()``
    Hand back every message sent during the epoch.
``finish()``
    Render per-stream and per-node metrics as picklable dicts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.config import ClusterConfig
from repro.sim.shard.channel import ShardRouter
from repro.sim.shard.cluster import ClientStream, ClusterNode, StreamSpec
from repro.sim.shard.message import ShardMessage


class ShardEnvironment:
    """A partition of the fleet sharing one event loop."""

    def __init__(
        self,
        cluster: ClusterConfig,
        shard_index: int,
        node_indices: Sequence[int],
        specs: Iterable[StreamSpec],
        duration: float,
    ):
        if not node_indices:
            raise ValueError(f"shard {shard_index} owns no nodes")
        from repro.experiments.common import default_sanitize, make_environment

        self.cluster = cluster
        self.shard_index = shard_index
        #: With the session sanitize flag on, the shard's event loop is
        #: a SanitizedEnvironment and inject() enforces conservative-
        #: sync causality per delivered message.
        self.sanitize = default_sanitize()
        self.env = make_environment(self.sanitize)
        self.router = ShardRouter(self.env, shard_index, cluster.link_latency)
        #: Node index -> machine, built in ascending index order so the
        #: build sequence (and thus each node's id namespace) matches
        #: the 1-shard run exactly.
        self.nodes: Dict[int, ClusterNode] = {}
        for index in sorted(node_indices):
            self.nodes[index] = ClusterNode(self.env, self.router, cluster, index)
        #: Client drivers gatewayed through this shard's nodes, started
        #: in stream_id order (their only interleaving at t=0).
        self.clients: List[ClientStream] = []
        for spec in sorted(specs, key=lambda s: s.stream_id):
            if spec.gateway not in self.nodes:
                raise ValueError(
                    f"stream {spec.stream_id} gateway {spec.gateway} is not "
                    f"hosted by shard {shard_index}"
                )
            client = ClientStream(self.nodes[spec.gateway], spec, duration)
            client.start()
            self.clients.append(client)

    # -- epoch verbs --------------------------------------------------------

    def inject(self, messages: List[ShardMessage]) -> None:
        """Deliver *messages* (canonically pre-sorted) at their arrivals.

        Every message gets its own timeout event, and all of them are
        created here at the epoch barrier.  That pins the tie-break
        position of each delivery relative to the receiving node's own
        events regardless of shard layout: events pending from before
        the barrier always fire first at a shared timestamp (older
        ids), events created during the epoch always fire after
        (younger ids), and same-arrival deliveries fire in the
        canonical order because they are created in it.  A single
        walker process would instead create each timeout at the
        *previous* message's arrival — a creation time that shifts
        with whichever co-hosted node's traffic precedes it, leaking
        the shard layout into same-timestamp event ordering.
        """
        now = self.env.now
        if self.sanitize:
            from repro.analysis.sanitizer import check_delivery

            for message in messages:
                check_delivery(now, message.arrival, message)
        for message in messages:
            event = self.env.timeout(message.arrival - now)
            event.callbacks.append(self._make_delivery(message))

    def _make_delivery(self, message: ShardMessage):
        node = self.nodes[message.dst_node]
        return lambda _event: node.on_message(message)

    def run_until(self, t: float) -> None:
        """Advance the shard's clock to the epoch boundary *t*."""
        self.env.run(until=t)

    def drain_outbox(self) -> List[ShardMessage]:
        """Messages sent this epoch (epoch-barrier handoff)."""
        return self.router.drain_outbox()

    def busy(self) -> bool:
        """Does the shard still have protocol work in flight?

        Used by the coordinator's drain mode to decide when the fleet
        has quiesced: a shard is busy while any client driver is alive,
        any gateway still awaits acks, or any node's block queue has
        requests in flight.
        """
        if any(not client.finished for client in self.clients):
            return True
        for node in self.nodes.values():
            if node._pending or node.conservation()["inflight"]:
                return True
        return False

    # -- reporting ----------------------------------------------------------

    def finish(self) -> Dict:
        """Picklable per-shard results, in canonical node/stream order."""
        return {
            "shard": self.shard_index,
            "now": self.env.now,
            "streams": [client.report() for client in self.clients],
            "nodes": {
                index: {
                    "bytes_written": node.bytes_written,
                    "chunk_errors": node.chunk_errors,
                    "ledger": node.token_ledger(),
                    "conservation": node.conservation(),
                }
                for index, node in sorted(self.nodes.items())
            },
        }
