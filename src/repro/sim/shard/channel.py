"""The inter-shard message fabric: routers, channel, epoch delivery.

Two halves:

- :class:`ShardRouter` lives inside one shard's Environment.  Node
  runtimes call :meth:`ShardRouter.send` in simulated time; the router
  stamps each message with its arrival time (now + link latency) and a
  per-source sequence number, and parks it in the shard's outbox.  At
  the epoch barrier the coordinator drains every outbox.

- :class:`InterShardChannel` is the coordinator-side store.  It pools
  the drained messages (in any order — shard completion order is
  scheduling noise) and, per epoch, hands each shard the batch of
  messages arriving inside that epoch, sorted canonically by
  ``(arrival, src_node, seq)``.  Because the sort key never mentions a
  shard, delivery order is a pure function of the message set — the
  property the ordering property test pins down.

The conservative-synchronization invariant is checked, not assumed:
a router refuses to send with a latency below the channel's epoch
width, and the channel refuses to release a message into an epoch
that has already started.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim.shard.message import ShardMessage, canonical_order


class ShardRouter:
    """One shard's sending side of the message fabric."""

    def __init__(self, env, shard_index: int, link_latency: float):
        if link_latency <= 0:
            raise ValueError(f"link_latency must be positive, got {link_latency}")
        self.env = env
        self.shard_index = shard_index
        self.link_latency = link_latency
        self._outbox: List[ShardMessage] = []
        #: Per-source send counters.  Keyed by cluster-wide node index,
        #: so a node's sequence numbers are identical under any
        #: partitioning of the fleet.
        self._seqs: Dict[int, int] = {}

    def send(
        self, src_node: int, dst_node: int, kind: str, payload: Dict[str, Any]
    ) -> ShardMessage:
        """Emit one message; it arrives ``link_latency`` later.

        Self-sends and co-shard sends take the same path as remote
        ones — uniform latency and barrier delivery are what make the
        simulation insensitive to the shard layout.
        """
        seq = self._seqs.get(src_node, 0)
        self._seqs[src_node] = seq + 1
        message = ShardMessage(
            arrival=self.env.now + self.link_latency,
            src_node=src_node,
            seq=seq,
            dst_node=dst_node,
            kind=kind,
            payload=payload,
        )
        self._outbox.append(message)
        return message

    def drain_outbox(self) -> List[ShardMessage]:
        """Messages sent since the last drain (epoch-barrier handoff)."""
        out = self._outbox
        self._outbox = []
        return out


class InterShardChannel:
    """Coordinator-side message pool with canonical per-epoch delivery."""

    def __init__(self, epoch: float, sanitize: bool = False):
        if epoch <= 0:
            raise ValueError(f"epoch width must be positive, got {epoch}")
        self.epoch = epoch
        self._pending: List[ShardMessage] = []
        #: Start of the earliest epoch not yet delivered; push() rejects
        #: messages that would have to arrive before it (a message from
        #: the receiving shard's past — the conservative-sync bug this
        #: class exists to make impossible).
        self._released_until = 0.0
        #: Sanitize mode: additionally track every (src_node, seq) pair
        #: ever pushed and fail on a duplicate — a re-sent or doubly
        #: drained message would silently reorder canonical delivery.
        self.sanitize = bool(sanitize)
        self._seen_seqs = set() if self.sanitize else None

    def push(self, messages: List[ShardMessage]) -> None:
        """Pool freshly drained outbox messages (any order)."""
        for message in messages:
            if message.arrival < self._released_until:
                raise RuntimeError(
                    f"message {message!r} arrives at {message.arrival} but "
                    f"epochs up to {self._released_until} already ran — "
                    "link latency below the sync window?"
                )
        if self._seen_seqs is not None:
            from repro.analysis.sanitizer import SanitizerError

            for message in messages:
                key = (message.src_node, message.seq)
                if key in self._seen_seqs:
                    raise SanitizerError(
                        "duplicate shard message: the same (src_node, seq) "
                        "was pushed twice — a re-send or double drain would "
                        "silently reorder canonical delivery",
                        context={
                            "src_node": message.src_node,
                            "seq": message.seq,
                            "kind": message.kind,
                            "arrival": message.arrival,
                        },
                    )
                self._seen_seqs.add(key)
        self._pending.extend(messages)

    def pending_count(self) -> int:
        return len(self._pending)

    def due(self, t_start: float, t_end: float) -> Dict[int, List[ShardMessage]]:
        """Messages arriving in ``[t_start, t_end)``, per destination node.

        The returned lists are sorted by the canonical key, so every
        destination shard injects them in the same order no matter how
        the pool was filled.  Marks the epoch as released.
        """
        due: List[ShardMessage] = []
        keep: List[ShardMessage] = []
        for message in self._pending:
            (due if t_start <= message.arrival < t_end else keep).append(message)
        self._pending = keep
        self._released_until = max(self._released_until, t_end)
        due.sort(key=canonical_order)
        by_node: Dict[int, List[ShardMessage]] = {}
        for message in due:
            by_node.setdefault(message.dst_node, []).append(message)
        return by_node
