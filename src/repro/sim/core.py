"""The simulation environment: virtual clock and event queue."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

# URGENT/NORMAL live in repro.sim.events (the fused scheduling paths
# need them there); re-exported here for backwards compatibility.
from repro.sim.events import Event, NORMAL, Timeout, URGENT
from repro.sim.process import Process

#: Processed callback lists are recycled through a bounded per-
#: environment pool; beyond this many spares, lists are simply dropped.
_CB_POOL_MAX = 1024


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run`."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until``."""


class Environment:
    """Execution environment for a simulation.

    Time advances only as events are processed; the clock unit is the
    *second* throughout the storage simulation.

    Two queue structures back the schedule: the classic binary heap in
    :attr:`_queue` and a one-entry front slot in :attr:`_next`.  The
    dominant scheduling pattern — a process sleeps, wakes, and
    immediately schedules the next thing it waits on — makes the most
    recently created entry very often the next one dispatched, so the
    fused constructors park it in the front slot and the run loop
    consumes it without ever touching the heap.  The slot holds *a*
    pending entry, not necessarily the minimum: every consumer compares
    it against the heap head, so correctness never depends on the
    placement heuristic.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_cb_pool",
        "active_process",
        "_halted",
        "_halt_reason",
        "_next",
        "_cohort",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        #: Recycled callback lists (see Event.__init__): the dispatch
        #: loop returns each processed event's emptied list here so the
        #: next event allocates nothing.
        self._cb_pool: List[list] = []
        self.active_process: Optional[Process] = None
        self._halted = False
        self._halt_reason: Any = None
        #: Front-slot entry bypassing the heap (see class docstring).
        self._next: Optional[Tuple[float, int, int, Event]] = None
        #: Recycled cohort buffer: same-timestamp events are drained
        #: into this list and dispatched as one batch, and the emptied
        #: list is kept for the next cohort (pooled like callback lists).
        self._cohort: Optional[list] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def halted(self) -> bool:
        """True once :meth:`halt` was called (e.g. a simulated power loss)."""
        return self._halted

    def halt(self, reason: Any = None) -> None:
        """Stop the world permanently (a power cut, not a pause).

        Pending events are abandoned; every subsequent :meth:`run` call
        returns *reason* immediately.  Crash-recovery code inspects the
        frozen state afterwards.
        """
        self._halted = True
        self._halt_reason = reason

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put *event* on the queue to be processed after *delay*."""
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* seconds.

        Fused fast path: ``yield env.timeout(d)`` happens once per
        simulated tick, so the Timeout is built inline (no constructor
        frame) with a pooled callback list and a direct queue insert
        (front slot when free, heap otherwise).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        pool = self._cb_pool
        event.callbacks = pool.pop() if pool else []
        event.defused = False
        event.delay = delay
        event._ok = True
        event._value = value
        self._eid += 1
        entry = (self._now + delay, NORMAL, self._eid, event)
        nxt = self._next
        if nxt is None:
            self._next = entry
        elif entry < nxt:
            heappush(self._queue, nxt)
            self._next = entry
        else:
            heappush(self._queue, entry)
        return event

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        nxt = self._next
        queue = self._queue
        if nxt is not None:
            if queue and queue[0][0] < nxt[0]:
                return queue[0][0]
            return nxt[0]
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process the next event; advance the clock to its time.

        The debug-friendly single-step API: :meth:`run` inlines the
        equivalent of this loop for speed, so semantic changes here
        must be mirrored there (and in :meth:`_dispatch`).
        """
        nxt = self._next
        queue = self._queue
        if nxt is not None and not (queue and queue[0] < nxt):
            self._next = None
            entry = nxt
        else:
            try:
                entry = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
        self._now = entry[0]
        self._dispatch(entry)

    def _dispatch(self, entry: Tuple[float, int, int, Event]) -> None:
        """Run one popped entry's callbacks (cohort and step path).

        Receives the full ``(time, priority, eid, event)`` queue entry —
        not just the event — so subclasses (the runtime sanitizer) can
        observe the scheduling key of everything dispatched.  Mirrors
        the fast path inlined in :meth:`run` — keep the two in sync.
        Events whose callbacks are gone (``cancel()``) are swept without
        processing; a single waiting :class:`Process` is resumed without
        the generic callback indirection.
        """
        event = entry[3]
        callbacks = event.callbacks
        if callbacks is None:
            return  # lazily-swept cancelled event
        event.callbacks = None
        if len(callbacks) == 1:
            cb = callbacks[0]
            if type(cb) is Process and event._ok:
                # Inlined Process._resume fast path: advance the
                # generator and subscribe it to whatever it yields.
                self.active_process = cb
                try:
                    nev = cb._generator.send(event._value)
                except StopIteration as exc:
                    cb._target = None
                    self.active_process = None
                    cb.succeed(exc.value)
                except BaseException as exc:
                    cb._target = None
                    self.active_process = None
                    cb._ok = False
                    cb._value = exc
                    self.schedule(cb)
                else:
                    try:
                        ncbs = nev.callbacks
                    except AttributeError:
                        cb._generator.throw(
                            TypeError(f"process {cb.name} yielded a non-event: {nev!r}")
                        )
                        cb._resume(event)
                    else:
                        if ncbs is not None:
                            ncbs.append(cb)
                            cb._target = nev
                            self.active_process = None
                        else:
                            # Already-processed target: continue inline.
                            cb._resume(nev)
                callbacks.clear()
                if len(self._cb_pool) < _CB_POOL_MAX:
                    self._cb_pool.append(callbacks)
                return
            cb(event)
        else:
            for callback in callbacks:
                callback(event)

        if event._ok or event.defused:
            callbacks.clear()
            if len(self._cb_pool) < _CB_POOL_MAX:
                self._cb_pool.append(callbacks)
        else:
            # An untended failure: crash the simulation loudly rather
            # than silently dropping the error (Zen: errors should never
            # pass silently).
            raise event._value

    def _run_cohort(self, entry: Tuple[float, int, int, Event], tnow: float) -> None:
        """Dispatch every event scheduled at *tnow* as one cohort.

        All same-instant entries are drained from the queue into a
        recycled buffer and executed through a single dispatch pass, so
        the heap is touched once per cohort instead of once per event.
        Ordering is preserved exactly:

        - the buffer is filled by ascending heap pops, so cohort
          entries run in (priority, eid) order;
        - entries scheduled *during* the cohort that sort before a
          not-yet-dispatched cohort entry (an URGENT interrupt at the
          current instant) are pulled from the heap — or from the
          front slot, where schedule() parks an entry that beats the
          heap head — and run first;
        - on any exception — StopSimulation from an until-event, an
          untended failure, a crashing callback — the undispatched
          remainder is pushed back onto the heap before re-raising, so
          the queue state matches what event-at-a-time dispatch leaves.
        """
        queue = self._queue
        cohort = self._cohort
        if cohort is None:  # re-entrant run(): fall back to a fresh list
            cohort = []
        else:
            self._cohort = None
        cohort.append(entry)
        nxt = self._next
        if nxt is not None and nxt[0] == tnow:
            heappush(queue, nxt)
            self._next = None
        while queue and queue[0][0] == tnow:
            cohort.append(heappop(queue))
        i = 0
        n = len(cohort)
        dispatch = self._dispatch
        try:
            while i < n:
                if self._halted:
                    break
                # Same-instant interlopers: an event scheduled during
                # the cohort that sorts before the next buffered entry
                # may sit at the heap head or in the front slot
                # (schedule() prefers the slot when the entry beats the
                # heap head), so both must be checked.
                nxt = self._next
                if nxt is not None and nxt[0] == tnow and nxt < cohort[i]:
                    if queue and queue[0] < nxt:
                        dispatch(heappop(queue))
                    else:
                        self._next = None
                        dispatch(nxt)
                    continue
                if queue and queue[0][0] == tnow and queue[0] < cohort[i]:
                    dispatch(heappop(queue))
                    continue
                entry = cohort[i]
                i += 1
                dispatch(entry)
        except BaseException:
            while i < n:
                heappush(queue, cohort[i])
                i += 1
            cohort.clear()
            self._cohort = cohort
            raise
        while i < n:  # halted mid-cohort: abandon the rest on the heap
            heappush(queue, cohort[i])
            i += 1
        cohort.clear()
        self._cohort = cohort

    #: Sentinel from :meth:`_resolve_until`: the run target is already
    #: satisfied and run() should return immediately.
    _ALREADY_DONE = object()

    def _resolve_until(self, until: Any) -> Any:
        """Normalize run()'s *until* argument (shared with subclasses).

        Returns the armed until-Event, None (run to exhaustion), or a
        ``(_ALREADY_DONE, value)`` pair when there is nothing to do.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until ({at}) is in the past (now={self._now})")
            if at == self._now:
                return (self._ALREADY_DONE, None)  # zero-length advance
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, priority=URGENT, delay=at - self._now)
        if isinstance(until, Event):
            if until.callbacks is None:
                return (self._ALREADY_DONE, until._value)
            until.callbacks.append(_stop_simulation)
        return until

    def run(self, until: Any = None) -> Any:
        """Run until *until* (a time, an event, or exhaustion).

        - ``until`` is None: run until no events remain.
        - ``until`` is a number: run until the clock reaches it; a
          target equal to the current time is a no-op.
        - ``until`` is an Event: run until it triggers; returns its value.

        A halted environment (see :meth:`halt`) returns immediately.
        """
        if self._halted:
            return self._halt_reason
        until = self._resolve_until(until)
        if isinstance(until, tuple) and until[0] is self._ALREADY_DONE:
            return until[1]

        # The hot dispatch loop: _dispatch() inlined with the queue,
        # front slot, pop, callback-list pool, and hot globals hoisted
        # into locals.  Events sharing a timestamp are handed to
        # _run_cohort as one batch; the overwhelmingly common lone
        # event stays here.
        queue = self._queue
        pool = self._cb_pool
        pool_max = _CB_POOL_MAX
        process_type = Process
        pop = heappop
        try:
            while not self._halted:
                nxt = self._next
                if nxt is not None and not queue:
                    # Pure front-slot turnover: the heap is empty, so
                    # the slot entry is alone at its instant — no pop,
                    # no cohort checks.
                    self._next = None
                    entry = nxt
                    self._now = entry[0]
                else:
                    if nxt is not None:
                        if queue[0] < nxt:
                            entry = pop(queue)
                        else:
                            self._next = None
                            entry = nxt
                    elif queue:
                        entry = pop(queue)
                    else:
                        raise EmptySchedule()
                    tnow = entry[0]
                    self._now = tnow

                    if (queue and queue[0][0] == tnow) or (
                        self._next is not None and self._next[0] == tnow
                    ):
                        self._run_cohort(entry, tnow)
                        continue

                event = entry[3]
                callbacks = event.callbacks
                if callbacks is None:
                    continue  # lazily-swept cancelled event
                event.callbacks = None
                if len(callbacks) == 1:
                    # The overwhelmingly common case: one waiter.
                    cb = callbacks[0]
                    if type(cb) is process_type and event._ok:
                        # Inlined Process._resume (see _dispatch).
                        self.active_process = cb
                        try:
                            nev = cb._generator.send(event._value)
                        except StopIteration as exc:
                            cb._target = None
                            self.active_process = None
                            cb.succeed(exc.value)
                        except BaseException as exc:
                            cb._target = None
                            self.active_process = None
                            cb._ok = False
                            cb._value = exc
                            self.schedule(cb)
                        else:
                            try:
                                ncbs = nev.callbacks
                            except AttributeError:
                                cb._generator.throw(
                                    TypeError(
                                        f"process {cb.name} yielded a non-event: {nev!r}"
                                    )
                                )
                                cb._resume(event)
                            else:
                                if ncbs is not None:
                                    ncbs.append(cb)
                                    cb._target = nev
                                    self.active_process = None
                                else:
                                    # Already-processed target: continue.
                                    cb._resume(nev)
                        callbacks.clear()
                        if len(pool) < pool_max:
                            pool.append(callbacks)
                        continue
                    cb(event)
                else:
                    for callback in callbacks:
                        callback(event)

                if event._ok or event.defused:
                    callbacks.clear()
                    if len(pool) < pool_max:
                        pool.append(callbacks)
                else:
                    raise event._value
            return self._halt_reason
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError("no scheduled events left but until event was not triggered")
            return None


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        # Running until a failed event (e.g. a crashed process):
        # surface the error instead of returning it as a value.
        event.defused = True
        raise event._value
    raise StopSimulation(event._value)
