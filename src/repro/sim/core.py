"""The simulation environment: virtual clock and event queue."""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

#: Queue priorities: urgent events (process initialisation, interrupts)
#: run before normal events scheduled for the same instant.
URGENT = 0
NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run`."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until``."""


class Environment:
    """Execution environment for a simulation.

    Time advances only as events are processed; the clock unit is the
    *second* throughout the storage simulation.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self.active_process: Optional[Process] = None
        self._halted = False
        self._halt_reason: Any = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def halted(self) -> bool:
        """True once :meth:`halt` was called (e.g. a simulated power loss)."""
        return self._halted

    def halt(self, reason: Any = None) -> None:
        """Stop the world permanently (a power cut, not a pause).

        Pending events are abandoned; every subsequent :meth:`run` call
        returns *reason* immediately.  Crash-recovery code inspects the
        frozen state afterwards.
        """
        self._halted = True
        self._halt_reason = reason

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put *event* on the queue to be processed after *delay*."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event; advance the clock to its time."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An untended failure: crash the simulation loudly rather
            # than silently dropping the error (Zen: errors should never
            # pass silently).
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until *until* (a time, an event, or exhaustion).

        - ``until`` is None: run until no events remain.
        - ``until`` is a number: run until the clock reaches it.
        - ``until`` is an Event: run until it triggers; returns its value.

        A halted environment (see :meth:`halt`) returns immediately.
        """
        if self._halted:
            return self._halt_reason
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be in the future (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, priority=URGENT, delay=at - self._now)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until._value
            until.callbacks.append(_stop_simulation)

        try:
            while not self._halted:
                self.step()
            return self._halt_reason
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError("no scheduled events left but until event was not triggered")
            return None


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        # Running until a failed event (e.g. a crashed process):
        # surface the error instead of returning it as a value.
        event.defused = True
        raise event._value
    raise StopSimulation(event._value)
