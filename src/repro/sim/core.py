"""The simulation environment: virtual clock and event queue."""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

# URGENT/NORMAL live in repro.sim.events (the fused scheduling paths
# need them there); re-exported here for backwards compatibility.
from repro.sim.events import Event, NORMAL, Timeout, URGENT
from repro.sim.process import Process

#: Processed callback lists are recycled through a bounded per-
#: environment pool; beyond this many spares, lists are simply dropped.
_CB_POOL_MAX = 1024


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run`."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until``."""


class Environment:
    """Execution environment for a simulation.

    Time advances only as events are processed; the clock unit is the
    *second* throughout the storage simulation.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_cb_pool",
        "active_process",
        "_halted",
        "_halt_reason",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        #: Recycled callback lists (see Event.__init__): the dispatch
        #: loop returns each processed event's emptied list here so the
        #: next event allocates nothing.
        self._cb_pool: List[list] = []
        self.active_process: Optional[Process] = None
        self._halted = False
        self._halt_reason: Any = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def halted(self) -> bool:
        """True once :meth:`halt` was called (e.g. a simulated power loss)."""
        return self._halted

    def halt(self, reason: Any = None) -> None:
        """Stop the world permanently (a power cut, not a pause).

        Pending events are abandoned; every subsequent :meth:`run` call
        returns *reason* immediately.  Crash-recovery code inspects the
        frozen state afterwards.
        """
        self._halted = True
        self._halt_reason = reason

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put *event* on the queue to be processed after *delay*."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* seconds.

        Fused fast path: ``yield env.timeout(d)`` happens once per
        simulated tick, so the Timeout is built inline (no constructor
        frame) with a pooled callback list and a direct heap push.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        pool = self._cb_pool
        event.callbacks = pool.pop() if pool else []
        event.defused = False
        event.delay = delay
        event._ok = True
        event._value = value
        self._eid += 1
        heappush(self._queue, (self._now + delay, NORMAL, self._eid, event))
        return event

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event; advance the clock to its time.

        The debug-friendly single-step API: :meth:`run` inlines this
        loop for speed, so changes here must be mirrored there.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return  # cancelled while queued: sweep without processing

        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An untended failure: crash the simulation loudly rather
            # than silently dropping the error (Zen: errors should never
            # pass silently).
            exc = event._value
            raise exc

        callbacks.clear()
        if len(self._cb_pool) < _CB_POOL_MAX:
            self._cb_pool.append(callbacks)

    def run(self, until: Any = None) -> Any:
        """Run until *until* (a time, an event, or exhaustion).

        - ``until`` is None: run until no events remain.
        - ``until`` is a number: run until the clock reaches it; a
          target equal to the current time is a no-op.
        - ``until`` is an Event: run until it triggers; returns its value.

        A halted environment (see :meth:`halt`) returns immediately.
        """
        if self._halted:
            return self._halt_reason
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until ({at}) is in the past (now={self._now})")
            if at == self._now:
                return None  # zero-length advance: nothing to do
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, priority=URGENT, delay=at - self._now)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until._value
            until.callbacks.append(_stop_simulation)

        # The hot dispatch loop: step() inlined with the heap, pop, and
        # callback-list pool hoisted into locals.  Events whose
        # callbacks are gone (cancel()) are swept without processing.
        queue = self._queue
        pool = self._cb_pool
        pop = heappop
        try:
            while not self._halted:
                try:
                    entry = pop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                self._now = entry[0]
                event = entry[3]

                callbacks = event.callbacks
                if callbacks is None:
                    continue  # lazily-swept cancelled event
                event.callbacks = None
                if len(callbacks) == 1:
                    # The overwhelmingly common case: one waiter.
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)

                if event._ok or event.defused:
                    callbacks.clear()
                    if len(pool) < _CB_POOL_MAX:
                        pool.append(callbacks)
                else:
                    raise event._value
            return self._halt_reason
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError("no scheduled events left but until event was not triggered")
            return None


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        # Running until a failed event (e.g. a crashed process):
        # surface the error instead of returning it as a value.
        event.defused = True
        raise event._value
    raise StopSimulation(event._value)
