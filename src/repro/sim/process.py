"""Processes: generator coroutines driven by the event loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class ProcessDied(Exception):
    """Raised when interrupting or joining a process that already ended."""


class Process(Event):
    """A running activity, wrapping a generator.

    The process yields events to wait on them.  The Process object is
    itself an event that triggers when the generator returns (with its
    return value) or raises (with the exception), so processes can wait
    on each other by yielding a Process.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if it is
        #: about to run or has finished).
        self._target: Optional[Event] = None
        from repro.sim.events import Initialize

        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process."""
        if not self.is_alive:
            raise ProcessDied(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        # Unsubscribe from whatever we were waiting on so the original
        # event cannot resume this process a second time.  Processes
        # subscribe as themselves (Process.__call__ aliases _resume).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self)
            except ValueError:
                pass
        self._target = None

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        # Deliver before any other event at this instant.
        interrupt_event.callbacks = []
        interrupt_event.callbacks.append(self)
        from repro.sim.core import URGENT

        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s outcome."""
        env = self.env
        env.active_process = self
        generator = self._generator

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                env.active_process = None
                self.succeed(getattr(exc, "value", None))
                return
            except BaseException as exc:
                self._target = None
                env.active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                self._generator.throw(
                    TypeError(f"process {self.name} yielded a non-event: {next_event!r}")
                )
                continue

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event not yet processed: subscribe and go to sleep.
                # The process itself is the callback — no bound-method
                # allocation, and the run loop's inlined resume path
                # recognises it by type.
                callbacks.append(self)
                self._target = next_event
                break

            # Event already processed: continue immediately with its value.
            event = next_event

        env.active_process = None

    #: Calling a process delivers an event outcome to it, so a Process
    #: can sit directly in an event's callback list.
    __call__ = _resume

    def __repr__(self) -> str:
        return f"<Process {self.name} alive={self.is_alive}>"
