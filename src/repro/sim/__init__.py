"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: an
:class:`~repro.sim.core.Environment` drives a priority queue of
:class:`~repro.sim.events.Event` objects in virtual time, and
:class:`~repro.sim.process.Process` wraps generator coroutines that
``yield`` events to wait on them.

The storage-stack simulation (devices, block layer, page cache,
filesystem, applications) is built entirely on this kernel, so
experiments are deterministic and run in virtual time.
"""

from repro.sim.core import Environment, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process, ProcessDied
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rand import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "ProcessDied",
    "RandomStreams",
    "Resource",
    "StopSimulation",
    "Store",
    "Timeout",
]
