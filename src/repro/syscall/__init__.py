"""The system-call layer: the OS facade applications program against."""

from repro.syscall.cpu import CPU
from repro.syscall.os import OS, FileHandle, OpenFile

__all__ = ["CPU", "FileHandle", "OS", "OpenFile"]
