"""A simple CPU model: N cores as a shared resource.

I/O scheduling cannot isolate CPU-bound interference (paper Figure 15:
memory-bound and spin-loop B threads slow A despite perfect I/O
throttling); modelling cores lets that effect emerge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.resources import Resource
from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc import Task
    from repro.sim.core import Environment

#: Fixed kernel-entry cost per system call.
SYSCALL_OVERHEAD = 2e-6
#: Single-core memory copy bandwidth (page-cache copies).
COPY_BANDWIDTH = 3 * GB


class CPU:
    """A pool of cores; tasks consume core-time via :meth:`consume`."""

    def __init__(self, env: "Environment", cores: int = 8):
        if cores <= 0:
            raise ValueError("need at least one core")
        self.env = env
        self.cores = cores
        self._resource = Resource(env, capacity=cores)
        self.busy_time = 0.0

    def consume(self, task: "Task", seconds: float):
        """Generator: occupy one core for *seconds* of compute."""
        if seconds <= 0:
            return
        with self._resource.request() as req:
            yield req
            yield self.env.timeout(seconds)
            self.busy_time += seconds

    def syscall_cost(self, nbytes: int = 0) -> float:
        """CPU seconds for a syscall moving *nbytes* through the cache."""
        return SYSCALL_OVERHEAD + nbytes / COPY_BANDWIDTH
