"""The OS facade: assembles the stack and exposes the syscall API.

Workloads and applications interact with storage exclusively through
this class; every call is a generator driven by the simulation
(``yield from os.read(...)``).  Syscall entry/return hooks fire here —
this is the "system-call level" of the split framework.

Error semantics: when the device fails a request permanently (the block
layer exhausted its retries — see :mod:`repro.faults`), synchronous
calls (``read``, ``fsync``, direct I/O) raise
:class:`~repro.faults.errors.EIO`.  Buffered writes succeed into the
page cache; a later flush failure re-dirties the pages and surfaces at
the next ``fsync``, exactly like Linux.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.block.elevator import BlockScheduler
from repro.block.queue import BlockQueue
from repro.cache.cache import PageCache
from repro.cache.writeback import WritebackConfig, WritebackDaemon
from repro.core.costmodel import DiskCostModel, MemoryCostModel
from repro.core.framework import SplitFramework
from repro.core.hooks import SchedulerHooks
from repro.core.tags import TagManager
from repro.devices.hdd import HDD
from repro.fs.ext4 import Ext4
from repro.fs.inode import Inode
from repro.obs.bus import StackBus, SyscallEnter, SyscallReturn
from repro.proc import ProcessTable, Task
from repro.syscall.cpu import CPU
from repro.units import GB
from repro.vfs.handle import FileHandle, OpenFile, parse_mode
from repro.vfs.vfs import VFS

if TYPE_CHECKING:  # pragma: no cover
    from repro.devices.base import Device
    from repro.sim.core import Environment

__all__ = ["OS", "FileHandle", "OpenFile"]


class OS:
    """One simulated machine: CPU, memory, storage stack, scheduler."""

    def __init__(
        self,
        env: "Environment",
        device: Optional["Device"] = None,
        fs_class=Ext4,
        scheduler=None,
        memory_bytes: int = 16 * GB,
        cores: int = 8,
        writeback_config: Optional[WritebackConfig] = None,
        writeback_enabled: bool = True,
        fs_kwargs: Optional[Dict[str, Any]] = None,
        queue_depth: int = 1,
        hedge: bool = False,
        health: Any = None,
        fast_forward: bool = False,
    ):
        self.env = env
        #: One stack event bus shared by every layer of this machine.
        self.bus = StackBus()
        self._sub_sys_enter = self.bus.listeners(SyscallEnter)
        self._sub_sys_return = self.bus.listeners(SyscallReturn)
        self.tags = TagManager()
        self.process_table = ProcessTable()
        self.cpu = CPU(env, cores)
        self.device = device if device is not None else HDD()

        if scheduler is None:
            from repro.schedulers.noop import Noop

            scheduler = Noop()
        elif isinstance(scheduler, str):
            from repro.schedulers import make_scheduler

            scheduler = make_scheduler(scheduler)

        if isinstance(scheduler, SchedulerHooks):
            self.scheduler: Optional[SchedulerHooks] = scheduler
            elevator = scheduler.make_elevator()
        elif isinstance(scheduler, BlockScheduler):
            self.scheduler = None
            elevator = scheduler
        else:
            raise TypeError(f"unsupported scheduler {scheduler!r}")
        self.elevator = elevator

        # Health monitoring: explicit True/config attaches a monitor;
        # None (auto) attaches one exactly when something will consume
        # it — hedged dispatch or an injected fault plan — so a plain
        # stack publishes no health events and stays byte-identical.
        from repro.health import HealthConfig, HealthMonitor, resolve_health

        health = resolve_health(health)
        if health is None:
            health = hedge or hasattr(self.device, "injector")
        monitor = None
        if health is not False:
            monitor = HealthMonitor(
                env, self.device.name, self.bus,
                health if isinstance(health, HealthConfig) else None,
            )
        self.health = monitor

        # Fast-forward: replay steady-state read/write streams in
        # closed form (see repro.sim.fastforward).  Stacks with a fault
        # injector stay event-accurate — injected faults must hit every
        # real operation — and when the flag is off no controller (and
        # no bus subscriber) exists at all, so default runs are
        # byte-identical.
        self.fastforward = None
        if fast_forward and not hasattr(self.device, "injector"):
            from repro.sim.fastforward import FastForward

            self.fastforward = FastForward(env, self.bus)

        self.block_queue = BlockQueue(
            env, self.device, elevator, self.process_table, bus=self.bus,
            queue_depth=queue_depth, hedge=hedge, health=monitor,
            batch_pricing=fast_forward,
        )
        self.cache = PageCache(env, self.tags, memory_bytes, bus=self.bus)
        self.fs = fs_class(
            env, self.cache, self.block_queue, self.tags, self.process_table,
            **(fs_kwargs or {}),
        )
        self.writeback = WritebackDaemon(
            env, self.cache, self.fs, self.process_table,
            config=writeback_config, enabled=writeback_enabled,
        )
        self.fs.writeback = self.writeback
        #: The VFS layer: path namespace, per-task descriptor tables,
        #: ref-counted open files.  Pure bookkeeping (no simulated
        #: cost); the costed syscalls below delegate to it.
        self.vfs = VFS(self)
        self.memory_cost_model = MemoryCostModel()
        self.disk_cost_model = DiskCostModel(self.device)

        self.framework = SplitFramework(self)
        if self.scheduler is not None:
            self.framework.install(self.scheduler)

    # -- process management -------------------------------------------------

    def spawn(self, name: str, priority: int = 4, **kwargs) -> Task:
        """Create an application task."""
        return self.process_table.spawn(name, priority=priority, **kwargs)

    # -- hook plumbing --------------------------------------------------------

    def _entry(self, task: Task, call: str, info: Dict[str, Any]):
        if self._sub_sys_enter:
            self.bus.publish(SyscallEnter(self.env.now, task, call, info))
        if self.fastforward is not None:
            self.fastforward.enter(task, call, info)
        if self.scheduler is not None:
            gen = self.scheduler.syscall_entry(task, call, info)
            if gen is not None:
                yield from gen

    def _return(self, task: Task, call: str, info: Dict[str, Any]) -> None:
        if self.scheduler is not None:
            self.scheduler.syscall_return(task, call, info)
        if self._sub_sys_return:
            self.bus.publish(SyscallReturn(self.env.now, task, call, info))

    # -- the syscall API --------------------------------------------------------

    def creat(self, task: Task, path: str, mode: str = "r+",
              causes=None, readahead: int = 0):
        """Generator: create a file, returning an open handle."""
        info = {"path": path}
        yield from self._entry(task, "creat", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        inode = self.fs.create(task, path)
        self._return(task, "creat", info)
        return self.vfs.register(
            task, inode, mode=mode, causes=causes, readahead=readahead
        )

    def mkdir(self, task: Task, path: str, parents: bool = False):
        """Generator: create a directory.

        ``parents=True`` is ``mkdir -p``: missing ancestors are created
        first (each one a full mkdir, cost and hooks included) and an
        already-existing directory is not an error.
        """
        if parents:
            inode = self.fs.lookup(path)
            if inode is not None:
                if not inode.is_dir:
                    raise NotADirectoryError(path)
                return inode
            for ancestor in self.vfs.missing_parents(path):
                yield from self.mkdir(task, ancestor)
        info = {"path": path}
        yield from self._entry(task, "mkdir", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        inode = self.fs.create(task, path, is_dir=True)
        self._return(task, "mkdir", info)
        return inode

    def open(self, task: Task, path: str, create: bool = False,
             mode: Optional[str] = None, causes=None, readahead: int = 0):
        """Generator: open (optionally creating) a file.

        Legacy callers pass ``create=True``; frontends pass a Python
        mode string (``"r"``, ``"r+"``, ``"w"``, ``"a"``, ``"x"``, …)
        which implies its own create/truncate/append behaviour.  Like
        the legacy path, plain opens publish no syscall hook events —
        only the zero-cost ``VfsOpen`` bus event — so scheduler hook
        sequences and fast-forward disturbance counters do not move.
        """
        flags = parse_mode(mode) if mode is not None else None
        inode = self.fs.lookup(path)
        if inode is None:
            wants_create = create or (flags is not None and flags.create)
            if not wants_create:
                raise FileNotFoundError(path)
            return (
                yield from self.creat(
                    task, path, mode=mode or "r+",
                    causes=causes, readahead=readahead,
                )
            )
        if flags is not None and flags.exclusive:
            raise FileExistsError(path)
        if inode.is_dir:
            raise IsADirectoryError(path)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        if flags is not None and flags.truncate and inode.size:
            self.fs.truncate(task, inode, 0)
        handle = self.vfs.register(
            task, inode, mode=mode or "r+", causes=causes, readahead=readahead
        )
        if flags is not None and flags.append:
            handle.pos = inode.size
        return handle

    def close(self, handle: OpenFile):
        """Generator: release a descriptor.

        Returns True when this close freed an unlinked inode's
        resources (the POSIX deferred-free path).  Like ``open``, no
        syscall hook fires — only the zero-cost ``VfsClose`` bus event.
        """
        yield from self.cpu.consume(handle.task, self.cpu.syscall_cost())
        return self.vfs.release(handle)

    def rmdir(self, task: Task, path: str):
        """Generator: remove an empty directory."""
        info = {"path": path}
        yield from self._entry(task, "rmdir", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        self.vfs.rmdir(task, path)
        self._return(task, "rmdir", info)

    def rename(self, task: Task, old_path: str, new_path: str):
        """Generator: move a file or directory (subtrees move whole)."""
        info = {"path": old_path, "new_path": new_path}
        yield from self._entry(task, "rename", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        inode = self.vfs.rename(task, old_path, new_path)
        self._return(task, "rename", info)
        return inode

    def stat(self, task: Task, path: str):
        """Generator: file metadata (fsspec-shaped info dict)."""
        info = {"path": path}
        yield from self._entry(task, "stat", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        result = self.vfs.info(path)
        self._return(task, "stat", info)
        return result

    def ls(self, task: Task, path: str, detail: bool = False):
        """Generator: list a directory (one getdents-ish syscall)."""
        info = {"path": path}
        yield from self._entry(task, "ls", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        result = self.vfs.ls(path, detail=detail)
        self._return(task, "ls", info)
        return result

    def read(self, task: Task, inode: Inode, offset: int, nbytes: int, direct: bool = False):
        """Generator: read; returns bytes actually read.

        ``direct=True`` is O_DIRECT: the page cache is bypassed (used
        by hypervisors running with cache=none).
        """
        if offset < 0 or nbytes < 0:
            raise ValueError(f"negative read range: offset={offset} nbytes={nbytes}")
        info = {"inode": inode, "offset": offset, "nbytes": nbytes, "direct": direct}
        yield from self._entry(task, "read", info)
        if direct:
            yield from self.cpu.consume(task, self.cpu.syscall_cost(nbytes))
            n = yield from self.fs.read_direct(task, inode, offset, nbytes)
        elif self.fastforward is not None:
            n = yield from self.fastforward.read(self, task, inode, offset, nbytes)
        else:
            yield from self.cpu.consume(task, self.cpu.syscall_cost(nbytes))
            n = yield from self.fs.read(task, inode, offset, nbytes)
        info["result"] = n
        self._return(task, "read", info)
        return n

    def write(self, task: Task, inode: Inode, offset: int, nbytes: int, direct: bool = False):
        """Generator: write; returns bytes written.

        Buffered by default; ``direct=True`` is synchronous O_DIRECT.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError(f"negative write range: offset={offset} nbytes={nbytes}")
        info = {"inode": inode, "offset": offset, "nbytes": nbytes, "direct": direct}
        yield from self._entry(task, "write", info)
        if direct:
            yield from self.cpu.consume(task, self.cpu.syscall_cost(nbytes))
            n = yield from self.fs.write_direct(task, inode, offset, nbytes)
        elif self.fastforward is not None:
            n = yield from self.fastforward.write(self, task, inode, offset, nbytes)
        else:
            yield from self.cpu.consume(task, self.cpu.syscall_cost(nbytes))
            n = yield from self.fs.write(task, inode, offset, nbytes)
        info["result"] = n
        self._return(task, "write", info)
        return n

    def fsync(self, task: Task, inode: Inode):
        """Generator: force the file durable."""
        info = {"inode": inode, "dirty_bytes": self.cache.dirty_bytes_of(inode.id)}
        yield from self._entry(task, "fsync", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        yield from self.fs.fsync(task, inode)
        self._return(task, "fsync", info)

    def truncate(self, task: Task, inode: Inode, new_size: int):
        """Generator: resize a file (shrinking discards dirty buffers)."""
        info = {"inode": inode, "new_size": new_size}
        yield from self._entry(task, "truncate", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        self.fs.truncate(task, inode, new_size)
        self._return(task, "truncate", info)

    def unlink(self, task: Task, path: str):
        """Generator: delete a file (dirty buffers are discarded).

        With live handles on the file only the *name* disappears; the
        inode's pages and blocks survive until the last close (POSIX
        deferred free, bookkeeping in the VFS layer).
        """
        info = {"path": path}
        yield from self._entry(task, "unlink", info)
        yield from self.cpu.consume(task, self.cpu.syscall_cost())
        self.vfs.unlink(task, path)
        self._return(task, "unlink", info)
