"""The block request queue and multi-queue (blk-mq style) dispatch engine.

Requests pulled from the installed elevator are served on the device by
a set of *dispatch slots* — one serve process per slot, up to
``queue_depth`` of them — so a device with internal parallelism (an SSD
with several flash channels, NCQ-style tagged queuing) overlaps
requests while a single-channel disk serializes.  The effective slot
count is ``min(queue_depth, device.channels)``: tags beyond the
device's channels buy nothing in this model because the elevator is
consulted at dispatch time anyway (see DESIGN.md §6).  At the default
``queue_depth=1`` the engine is a single slot running exactly the
classic one-request-at-a-time dispatch loop, event for event.

Completion triggers the request's ``done`` event, cleans the pages a
write carried, performs per-cause byte accounting, and informs the
scheduler.

Failure handling mirrors the kernel block layer and is *per slot*: a
retryable :class:`~repro.devices.base.DeviceError` from the device
model is retried with exponential backoff on the slot that owns the
request; an attempt whose service time exceeds the per-request timeout
is aborted and retried; and once retries are exhausted the request
completes *failed* — its pages are re-dirtied instead of cleaned, the
scheduler is told via ``request_failed``, and waiters observe
``request.failed`` (the filesystem turns that into ``EIO`` at the
syscall layer).  The ``done`` event always succeeds so kernel daemons
survive I/O errors.  Each slot keeps its own error/retry/timeout
counters (surfaced by ``fault_summary`` when more than one slot exists)
so concurrent retries are never conflated; the queue-level totals are
their sums.

Hedged dispatch (opt-in, multi-slot only): when an attempt's service
time exceeds an adaptive deadline — a latency percentile from the
attached :class:`~repro.health.HealthMonitor`, falling back to the
static ``request_timeout`` — the request is speculatively re-issued on
a free slot.  First completion wins the race; the loser's timer is
cancelled, so a fail-slow channel costs one deadline's worth of
latency instead of the full degraded service time.  Scheduler billing
needs no change: the wall-clock-union ``service_charge`` already
charges exactly the interval the request occupied the device,
whichever attempt finished it.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.block.request import BlockRequest
from repro.devices.base import DeviceError
from repro.obs.bus import (
    BlockAdd,
    BlockComplete,
    BlockDispatch,
    DeviceStart,
    StackBus,
)
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.elevator import BlockScheduler
    from repro.devices.base import Device
    from repro.proc import ProcessTable
    from repro.sim.core import Environment


class RequestTimeout(DeviceError):
    """An attempt exceeded the block layer's per-request timeout."""

    retryable = True


class _CompletionListeners:
    """List-like shim mapping the legacy ``completion_listeners`` API
    onto :class:`~repro.obs.bus.BlockComplete` subscriptions.

    Callers historically did ``queue.completion_listeners.append(fn)``
    with ``fn(request)``; each append now subscribes an adapter on the
    stack bus, so legacy observers and new bus subscribers share one
    dispatch path (and one ordering).
    """

    __slots__ = ("_bus", "_entries")

    def __init__(self, bus: StackBus):
        self._bus = bus
        self._entries: List[tuple] = []  # (fn, unsubscribe)

    def append(self, fn: Callable[[BlockRequest], None]) -> None:
        unsub = self._bus.subscribe(BlockComplete, lambda event: fn(event.request))
        self._entries.append((fn, unsub))

    def remove(self, fn: Callable[[BlockRequest], None]) -> None:
        for i, (listener, unsub) in enumerate(self._entries):
            if listener == fn:
                unsub()
                del self._entries[i]
                return
        raise ValueError(f"{fn!r} is not a registered completion listener")

    def __iter__(self):
        return iter(fn for fn, _ in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class _HedgeState:
    """The race between a slow primary attempt and its hedge clone.

    One shared ``race`` event settles exactly once with the winner's
    name; whichever side finishes first cancels the loser's completion
    timer (the model of an NVMe abort), so the losing attempt neither
    completes the request a second time nor holds its channel.
    """

    __slots__ = ("request", "race", "primary_timer", "hedge_timer")

    def __init__(self, env: "Environment", request: BlockRequest):
        self.request = request
        self.race = env.event()
        self.primary_timer = None
        self.hedge_timer = None

    @property
    def settled(self) -> bool:
        return self.race.triggered

    def _primary_done(self, _event) -> None:
        if not self.race.triggered:
            self.race.succeed("primary")
            if self.hedge_timer is not None:
                self.hedge_timer.cancel()

    def _hedge_done(self, _event) -> None:
        if not self.race.triggered:
            self.race.succeed("hedge")
            if self.primary_timer is not None:
                self.primary_timer.cancel()


class DispatchSlot:
    """One hardware-queue slot: state and counters of one serve process.

    A slot is either idle (sleeping on its ``kick_event``) or serving
    exactly one request (``request`` is set).  Counters are per-slot so
    fault statistics stay attributable when several requests retry
    concurrently; the :class:`BlockQueue` totals are the sums.
    """

    __slots__ = (
        "index",
        "request",
        "kick_event",
        "seen_seq",
        "served",
        "errors",
        "retries",
        "timeouts",
        "failed",
        "hedges",
        "hedge_wins",
    )

    def __init__(self, index: int, env: "Environment"):
        self.index = index
        self.request: Optional[BlockRequest] = None
        self.kick_event = env.event()
        #: Queue kick counter value this slot last synchronised with; a
        #: mismatch against BlockQueue.kick_seq means a kick arrived
        #: since the slot started its current poll.
        self.seen_seq = 0
        self.served = 0  # requests fully completed on this slot
        self.errors = 0  # device errors observed (per attempt)
        self.retries = 0  # retry attempts issued
        self.timeouts = 0  # attempts aborted by the request timeout
        self.failed = 0  # requests failed permanently
        self.hedges = 0  # hedge attempts served on this slot
        self.hedge_wins = 0  # hedge attempts that won their race here

    def summary(self) -> dict:
        """Per-slot counters in ``fault_summary`` shape."""
        return {
            "slot": self.index,
            "served": self.served,
            "failed": self.failed,
            "device_errors": self.errors,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
        }


def _slot_index(slot: DispatchSlot) -> int:
    """Sort key: kicks wake sleeping slots in slot-index order."""
    return slot.index


class BlockQueue:
    """Request queue between the elevator and a device.

    ``queue_depth`` is the NCQ-style tag count: how many requests may be
    outstanding at the device simultaneously.  The effective concurrency
    is capped by the device's ``channels`` attribute (1 for mechanical
    disks), so raising the depth over an HDD changes nothing — exactly
    the degenerate single-slot engine the classic dispatch loop was.
    """

    def __init__(
        self,
        env: "Environment",
        device: "Device",
        scheduler: "BlockScheduler",
        process_table: Optional["ProcessTable"] = None,
        max_retries: int = 3,
        retry_backoff: float = 0.01,
        request_timeout: Optional[float] = 30.0,
        bus: Optional[StackBus] = None,
        queue_depth: int = 1,
        hedge: bool = False,
        health=None,
        batch_pricing: bool = False,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.env = env
        self.device = device
        self.scheduler = scheduler
        self.process_table = process_table
        #: Attempts after the first before a request fails permanently.
        self.max_retries = max_retries
        #: First backoff delay; doubles per retry (exponential).
        self.retry_backoff = retry_backoff
        #: Abort an attempt whose service time exceeds this (None = off).
        self.request_timeout = request_timeout
        #: The stack event bus (shared when assembled by the OS).
        self.bus = bus if bus is not None else StackBus()
        self._sub_add = self.bus.listeners(BlockAdd)
        self._sub_dispatch = self.bus.listeners(BlockDispatch)
        self._sub_complete = self.bus.listeners(BlockComplete)
        self._sub_devstart = self.bus.listeners(DeviceStart)
        attach = getattr(device, "attach_bus", None)
        if attach is not None:
            attach(self.bus, env)
        scheduler.attach(self)
        #: Requested tag count (NCQ depth).
        self.queue_depth = queue_depth
        #: Effective concurrency: tags beyond the device's channels
        #: cannot overlap, so we do not spin up slots for them.
        self.nslots = max(1, min(queue_depth, getattr(device, "channels", 1)))
        #: Hedged dispatch needs a spare slot to race on; at one slot
        #: the flag is inert, keeping depth-1 runs byte-identical.
        self.hedge = bool(hedge) and self.nslots > 1
        #: The device's HealthMonitor (None = no adaptive deadline;
        #: hedging then falls back to the static request_timeout).
        self.health = health
        self._pending_hedges: Deque[_HedgeState] = deque()
        self.hedges_issued = 0  # races started (primary passed deadline)
        self.hedge_wins = 0  # races the hedge clone won
        self.hedge_losses = 0  # races the primary won anyway
        #: Monotonic kick counter: bumped by every kick(); slots compare
        #: their seen_seq against it to detect kicks that raced a poll.
        self.kick_seq = 0
        #: Slots currently parked on their kick_event, in sleep order.
        self._sleeping: List[DispatchSlot] = []
        #: Cached device.serve (async device models); the device never
        #: changes after construction, so don't getattr per request.
        self._device_serve = getattr(device, "serve", None)
        #: Fast-forward batch pricing: a kick that wakes several slots
        #: prices their requests through one service_time_batch call.
        #: Only meaningful with real fan-out, a synchronous device
        #: model, and pricing that cannot raise (no fault wrapper) —
        #: otherwise the flag is inert and dispatch is event-accurate.
        self.batch_pricing = (
            bool(batch_pricing)
            and self.nslots > 1
            and self._device_serve is None
            and not getattr(device, "pricing_can_fail", False)
        )
        #: Requests pulled and priced by a batch pass, awaiting pickup.
        self._prepriced: Deque[BlockRequest] = deque()
        self.slots = [DispatchSlot(i, env) for i in range(self.nslots)]
        #: Requests dispatched and not yet completed, in dispatch order.
        self.outstanding: List[BlockRequest] = []
        self._dispatchers = [
            env.process(
                self._slot_loop(slot),
                name="block-dispatcher"
                if self.nslots == 1
                else f"block-dispatcher/{slot.index}",
            )
            for slot in self.slots
        ]
        #: Observers called with each completed request (metrics etc.),
        #: including permanently-failed ones (check ``request.failed``).
        #: A legacy shim over BlockComplete bus subscriptions.
        self.completion_listeners = _CompletionListeners(self.bus)
        #: BlockTracers attached to this queue (for drop reporting in
        #: fault_summary; tracers register themselves).
        self.tracers: List = []
        self.submitted = 0
        self.completed = 0
        # Failure counters (totals across slots; per-slot breakdowns
        # live on the DispatchSlot objects).
        self.errors = 0  # device errors observed (per attempt)
        self.retries = 0  # retry attempts issued
        self.timeouts = 0  # attempts aborted by the request timeout
        self.failed = 0  # requests failed permanently

    @property
    def in_flight(self) -> Optional[BlockRequest]:
        """The oldest outstanding request (legacy single-slot view).

        With one slot this is exactly the classic ``in_flight``
        attribute; with several it is the longest-dispatched request —
        callers needing the full set should read :attr:`outstanding`.
        """
        return self.outstanding[0] if self.outstanding else None

    @property
    def inflight_count(self) -> int:
        """How many requests are dispatched and not yet completed."""
        return len(self.outstanding)

    def submit(self, request: BlockRequest):
        """Enter *request* into the block layer; returns its done event."""
        request.submit_time = self.env.now
        request.done = self.env.event()
        self.submitted += 1
        if self._sub_add:
            self.bus.publish(BlockAdd(self.env.now, request))
        self.scheduler.add_request(request)
        self.kick()
        return request.done

    def kick(self) -> None:
        """Wake the dispatch slots (new request, or scheduler willing).

        Sequence-counted: the kick bumps :attr:`kick_seq` and wakes the
        parked slots (in slot-index order, matching the historical
        broadcast).  Busy slots are not touched at all — they re-sync
        with the counter when their current request completes, so a
        kick that lands while every slot is serving is re-polled the
        moment a slot frees instead of being lost (the multi-slot
        generalization of the PR 1 lost-kick fix), and the common
        kick-while-busy costs one integer bump instead of a walk over
        every slot's wake event.
        """
        self.kick_seq += 1
        sleeping = self._sleeping
        if sleeping:
            if len(sleeping) > 1:
                sleeping.sort(key=_slot_index)
                if self.batch_pricing:
                    self._preprice(len(sleeping))
            for slot in sleeping:
                slot.kick_event.succeed()
            sleeping.clear()

    def _preprice(self, limit: int) -> None:
        """Pull up to *limit* queued requests and price them through one
        ``service_time_batch`` call (fast-forward batch pricing).

        Each pulled request opens its ``begin_service`` bracket here —
        the slot that picks it up closes it — so the device prices the
        whole same-tick cohort at its full concurrency instead of
        watching ``active`` ramp up request by request.  Pricing is
        channel-blind (``serving_channel`` stays None), which is why
        fault-wrapped devices are never pre-priced.
        """
        scheduler = self.scheduler
        batch: List[BlockRequest] = []
        while len(batch) < limit:
            request = scheduler.next_request()
            if request is None:
                break
            batch.append(request)
        if not batch:
            return
        device = self.device
        for _ in batch:
            device.begin_service()
        durations = device.service_time_batch(
            [r.op for r in batch],
            [r.block for r in batch],
            [r.nblocks for r in batch],
        )
        prepriced = self._prepriced
        for request, duration in zip(batch, durations):
            request.priced_duration = duration
            prepriced.append(request)

    def _slot_loop(self, slot: DispatchSlot):
        env = self.env
        while True:
            # Sync with the kick counter *before* polling, so a kick
            # that arrives during next_request() (a submit issued from
            # inside the scheduler) shows up as a counter mismatch and
            # re-polls instead of being dropped.
            slot.seen_seq = self.kick_seq
            # A pending hedge outranks fresh work: its request is
            # already past the deadline, so it is the tail right now.
            while self._pending_hedges:
                state = self._pending_hedges.popleft()
                if state.settled:
                    continue  # race already decided; stale entry
                yield from self._serve_hedge(state, slot)
                break
            else:
                state = None
            if state is not None:
                continue
            if self._prepriced:
                request = self._prepriced.popleft()
            else:
                request = self.scheduler.next_request()
            if request is None:
                if slot.seen_seq != self.kick_seq:
                    continue  # a kick raced in while the scheduler was polled
                slot.kick_event = event = env.event()
                self._sleeping.append(slot)
                yield event
                continue

            request.dispatch_time = env.now
            request.slot = slot.index
            if self._sub_dispatch:
                self.bus.publish(
                    BlockDispatch(
                        env.now,
                        request,
                        slot.index if self.nslots > 1 else None,
                    )
                )
            slot.request = request
            self.outstanding.append(request)
            self.scheduler.on_dispatch(request)
            yield from self._serve(request, slot)
            slot.request = None
            self.outstanding.remove(request)
            request.complete_time = env.now
            slot.served += 1

            if request.failed:
                self.failed += 1
                slot.failed += 1
                # Failed writes re-dirty their pages: the data never
                # reached the device, so the cache must keep it dirty
                # for a later flush attempt.
                for page in request.pages:
                    page.write_failed()
                self.scheduler.request_failed(request)
            else:
                self.completed += 1
                self._account(request)
                for page in request.pages:
                    page.write_completed()
                self.scheduler.request_completed(request)
            if self._sub_complete:
                self.bus.publish(BlockComplete(self.env.now, request))
            if not request.done.triggered:
                request.done.succeed(request)

    def _serve(self, request: BlockRequest, slot: DispatchSlot):
        """Generator: serve one request on *slot*, retrying transient
        failures with per-slot attempt accounting."""
        serve = self._device_serve
        if serve is not None:
            # Asynchronous device (e.g. a VM disk backed by a host
            # file): service time emerges from the backing stack.
            request.attempts = 1
            if self._sub_devstart:
                self.bus.publish(
                    DeviceStart(
                        self.env.now, self.device.name, request.op,
                        request.block, request.nblocks, 1,
                    )
                )
            yield from serve(request)
            return

        attempt = 0
        while True:
            attempt += 1
            request.attempts = attempt
            if self._sub_devstart:
                self.bus.publish(
                    DeviceStart(
                        self.env.now, self.device.name, request.op,
                        request.block, request.nblocks, attempt,
                    )
                )
            error: Optional[DeviceError] = None
            duration = request.priced_duration
            if duration is not None:
                # Priced by kick()'s batch pass; the begin_service
                # bracket is already open and batch pricing cannot
                # raise (fault-wrapped devices are never pre-priced).
                request.priced_duration = None
            else:
                # The attempt occupies a device channel from here until
                # its yield finishes (success, error latency, or timeout
                # stall); channel-aware models read `device.active`
                # inside service_time to price contention.
                self.device.begin_service()
                self.device.serving_channel = slot.index
                try:
                    duration = self.device.service_time(
                        request.op, request.block, request.nblocks
                    )
                except DeviceError as exc:
                    self.device.serving_channel = None
                    if not exc.retryable:
                        self.device.end_service()
                        raise  # malformed request: a bug, not a device fault
                    error = exc
                    self.errors += 1
                    slot.errors += 1
                    if exc.latency > 0:
                        yield self.env.timeout(exc.latency)
                    self.device.end_service()
                else:
                    self.device.serving_channel = None
            if error is None:
                if self.request_timeout is not None and duration > self.request_timeout:
                    # The device stalled: the timeout fires and the
                    # attempt is abandoned after request_timeout seconds.
                    self.timeouts += 1
                    slot.timeouts += 1
                    error = RequestTimeout(
                        f"request #{request.id} timed out after "
                        f"{self.request_timeout}s (service wanted {duration:.3f}s)"
                    )
                    yield self.env.timeout(self.request_timeout)
                    self.device.end_service()
                else:
                    if self.hedge:
                        deadline = self._hedge_deadline(request.op)
                        if deadline is not None and deadline < duration:
                            yield from self._race_hedge(
                                request, slot, duration, deadline
                            )
                            self.device.end_service()
                            return
                    yield self.env.timeout(duration)
                    self.device.end_service()
                    return

            if attempt > self.max_retries:
                request.failed = True
                request.error = error
                return
            self.retries += 1
            slot.retries += 1
            backoff = self.retry_backoff * (2 ** (attempt - 1))
            if backoff > 0:
                yield self.env.timeout(backoff)

    # -- hedged dispatch -----------------------------------------------------

    def _hedge_deadline(self, op: str) -> Optional[float]:
        """Service time beyond which an attempt is hedged.

        Adaptive when a health monitor has warmed up (a percentile of
        recent service latencies times a margin), else the static
        ``request_timeout`` — which the timeout path preempts, so
        hedging effectively waits for the monitor's first verdicts.
        """
        if self.health is not None:
            deadline = self.health.deadline(op)
            if deadline is not None:
                return deadline
        return self.request_timeout

    def _race_hedge(
        self,
        request: BlockRequest,
        slot: DispatchSlot,
        duration: float,
        deadline: float,
    ):
        """Generator: finish a slow primary attempt under a hedge race.

        Runs on the primary's slot, which already owns the request and
        has ``begin_service`` counted.  Sleeps out the deadline (a fast
        attempt would have finished by then), then enqueues a hedge
        clone for any idle slot and waits for the race; the caller does
        the normal completion bookkeeping whoever won, at the winner's
        finish time.
        """
        env = self.env
        yield env.timeout(deadline)
        state = _HedgeState(env, request)
        state.primary_timer = timer = env.timeout(duration - deadline)
        timer.callbacks.append(state._primary_done)
        request.hedged = True
        self.hedges_issued += 1
        self._pending_hedges.append(state)
        self.kick()  # wake an idle slot to pick the clone up
        winner = yield state.race
        if winner == "hedge":
            self.hedge_wins += 1
        else:
            self.hedge_losses += 1

    def _serve_hedge(self, state: _HedgeState, slot: DispatchSlot):
        """Generator: run one hedge clone on an idle *slot*.

        The clone re-prices service from the device model (it may land
        on a healthy channel and be fast where the primary is sick).  A
        clone that errors or stalls is simply abandoned — the primary
        still owns the request's fate, so hedging can only subtract
        latency, never add failures.
        """
        env = self.env
        request = state.request
        slot.hedges += 1
        if self._sub_devstart:
            self.bus.publish(
                DeviceStart(
                    env.now, self.device.name, request.op,
                    request.block, request.nblocks, request.attempts,
                )
            )
        self.device.begin_service()
        self.device.serving_channel = slot.index
        try:
            duration = self.device.service_time(
                request.op, request.block, request.nblocks
            )
        except DeviceError as exc:
            self.device.serving_channel = None
            if not exc.retryable:
                self.device.end_service()
                raise
            self.errors += 1
            slot.errors += 1
            if exc.latency > 0:
                yield env.timeout(exc.latency)
            self.device.end_service()
            return
        self.device.serving_channel = None
        if self.request_timeout is not None and duration > self.request_timeout:
            self.device.end_service()
            return  # the clone stalled too; leave the race to the primary
        state.hedge_timer = timer = env.timeout(duration)
        timer.callbacks.append(state._hedge_done)
        winner = yield state.race
        self.device.end_service()
        if winner == "hedge":
            slot.hedge_wins += 1

    def _account(self, request: BlockRequest) -> None:
        """Charge completed bytes to the true causes, split evenly."""
        if self.process_table is None or not request.causes:
            return
        share = request.nblocks * PAGE_SIZE / len(request.causes)
        for pid in request.causes:
            task = self.process_table.get(pid)
            if task is None:
                continue
            if request.is_read:
                task.bytes_read += share
            else:
                task.bytes_written += share
