"""The block request queue and dispatch engine.

One dispatcher process pulls requests from the installed elevator and
serves them on the device, one at a time (the device is the contended
resource).  Completion triggers the request's ``done`` event, cleans the
pages a write carried, performs per-cause byte accounting, and informs
the scheduler.

Failure handling mirrors the kernel block layer: a retryable
:class:`~repro.devices.base.DeviceError` from the device model is
retried with exponential backoff; an attempt whose service time exceeds
the per-request timeout is aborted and retried; and once retries are
exhausted the request completes *failed* — its pages are re-dirtied
instead of cleaned, the scheduler is told via ``request_failed``, and
waiters observe ``request.failed`` (the filesystem turns that into
``EIO`` at the syscall layer).  The ``done`` event always succeeds so
kernel daemons survive I/O errors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.block.request import BlockRequest
from repro.devices.base import DeviceError
from repro.obs.bus import (
    BlockAdd,
    BlockComplete,
    BlockDispatch,
    DeviceStart,
    StackBus,
)
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.elevator import BlockScheduler
    from repro.devices.base import Device
    from repro.proc import ProcessTable
    from repro.sim.core import Environment


class RequestTimeout(DeviceError):
    """An attempt exceeded the block layer's per-request timeout."""

    retryable = True


class _CompletionListeners:
    """List-like shim mapping the legacy ``completion_listeners`` API
    onto :class:`~repro.obs.bus.BlockComplete` subscriptions.

    Callers historically did ``queue.completion_listeners.append(fn)``
    with ``fn(request)``; each append now subscribes an adapter on the
    stack bus, so legacy observers and new bus subscribers share one
    dispatch path (and one ordering).
    """

    __slots__ = ("_bus", "_entries")

    def __init__(self, bus: StackBus):
        self._bus = bus
        self._entries: List[tuple] = []  # (fn, unsubscribe)

    def append(self, fn: Callable[[BlockRequest], None]) -> None:
        unsub = self._bus.subscribe(BlockComplete, lambda event: fn(event.request))
        self._entries.append((fn, unsub))

    def remove(self, fn: Callable[[BlockRequest], None]) -> None:
        for i, (listener, unsub) in enumerate(self._entries):
            if listener == fn:
                unsub()
                del self._entries[i]
                return
        raise ValueError(f"{fn!r} is not a registered completion listener")

    def __iter__(self):
        return iter(fn for fn, _ in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


class BlockQueue:
    """Request queue between the elevator and a device."""

    def __init__(
        self,
        env: "Environment",
        device: "Device",
        scheduler: "BlockScheduler",
        process_table: Optional["ProcessTable"] = None,
        max_retries: int = 3,
        retry_backoff: float = 0.01,
        request_timeout: Optional[float] = 30.0,
        bus: Optional[StackBus] = None,
    ):
        self.env = env
        self.device = device
        self.scheduler = scheduler
        self.process_table = process_table
        #: Attempts after the first before a request fails permanently.
        self.max_retries = max_retries
        #: First backoff delay; doubles per retry (exponential).
        self.retry_backoff = retry_backoff
        #: Abort an attempt whose service time exceeds this (None = off).
        self.request_timeout = request_timeout
        #: The stack event bus (shared when assembled by the OS).
        self.bus = bus if bus is not None else StackBus()
        self._sub_add = self.bus.listeners(BlockAdd)
        self._sub_dispatch = self.bus.listeners(BlockDispatch)
        self._sub_complete = self.bus.listeners(BlockComplete)
        self._sub_devstart = self.bus.listeners(DeviceStart)
        attach = getattr(device, "attach_bus", None)
        if attach is not None:
            attach(self.bus, env)
        scheduler.attach(self)
        self._kick_event = env.event()
        self._kick_pending = False
        self._dispatcher = env.process(self._dispatch_loop(), name="block-dispatcher")
        #: Observers called with each completed request (metrics etc.),
        #: including permanently-failed ones (check ``request.failed``).
        #: A legacy shim over BlockComplete bus subscriptions.
        self.completion_listeners = _CompletionListeners(self.bus)
        #: BlockTracers attached to this queue (for drop reporting in
        #: fault_summary; tracers register themselves).
        self.tracers: List = []
        self.in_flight: Optional[BlockRequest] = None
        self.submitted = 0
        self.completed = 0
        # Failure counters.
        self.errors = 0  # device errors observed (per attempt)
        self.retries = 0  # retry attempts issued
        self.timeouts = 0  # attempts aborted by the request timeout
        self.failed = 0  # requests failed permanently

    def submit(self, request: BlockRequest):
        """Enter *request* into the block layer; returns its done event."""
        request.submit_time = self.env.now
        request.done = self.env.event()
        self.submitted += 1
        if self._sub_add:
            self.bus.publish(BlockAdd(self.env.now, request))
        self.scheduler.add_request(request)
        self.kick()
        return request.done

    def kick(self) -> None:
        """Wake the dispatcher (new request, or scheduler became willing)."""
        self._kick_pending = True
        if not self._kick_event.triggered:
            self._kick_event.succeed()

    def _dispatch_loop(self):
        while True:
            # Consume any pending kick *before* polling, so a kick that
            # arrives during next_request() (or between a None poll and
            # the event swap below) re-polls instead of being dropped.
            self._kick_pending = False
            request = self.scheduler.next_request()
            if request is None:
                if self._kick_pending:
                    continue  # a kick raced in while the scheduler was polled
                self._kick_event = self.env.event()
                if self._kick_pending:
                    continue  # a kick hit the stale event: re-poll, don't sleep
                yield self._kick_event
                continue

            request.dispatch_time = self.env.now
            if self._sub_dispatch:
                self.bus.publish(BlockDispatch(self.env.now, request))
            self.in_flight = request
            yield from self._serve(request)
            self.in_flight = None
            request.complete_time = self.env.now

            if request.failed:
                self.failed += 1
                # Failed writes re-dirty their pages: the data never
                # reached the device, so the cache must keep it dirty
                # for a later flush attempt.
                for page in request.pages:
                    page.write_failed()
                self.scheduler.request_failed(request)
            else:
                self.completed += 1
                self._account(request)
                for page in request.pages:
                    page.write_completed()
                self.scheduler.request_completed(request)
            if self._sub_complete:
                self.bus.publish(BlockComplete(self.env.now, request))
            if not request.done.triggered:
                request.done.succeed(request)

    def _serve(self, request: BlockRequest):
        """Generator: serve one request, retrying transient failures."""
        serve = getattr(self.device, "serve", None)
        if serve is not None:
            # Asynchronous device (e.g. a VM disk backed by a host
            # file): service time emerges from the backing stack.
            request.attempts = 1
            if self._sub_devstart:
                self.bus.publish(
                    DeviceStart(
                        self.env.now, self.device.name, request.op,
                        request.block, request.nblocks, 1,
                    )
                )
            yield from serve(request)
            return

        attempt = 0
        while True:
            attempt += 1
            request.attempts = attempt
            if self._sub_devstart:
                self.bus.publish(
                    DeviceStart(
                        self.env.now, self.device.name, request.op,
                        request.block, request.nblocks, attempt,
                    )
                )
            error: Optional[DeviceError] = None
            try:
                duration = self.device.service_time(
                    request.op, request.block, request.nblocks
                )
            except DeviceError as exc:
                if not exc.retryable:
                    raise  # malformed request: a bug, not a device fault
                error = exc
                self.errors += 1
                if exc.latency > 0:
                    yield self.env.timeout(exc.latency)
            else:
                if self.request_timeout is not None and duration > self.request_timeout:
                    # The device stalled: the timeout fires and the
                    # attempt is abandoned after request_timeout seconds.
                    self.timeouts += 1
                    error = RequestTimeout(
                        f"request #{request.id} timed out after "
                        f"{self.request_timeout}s (service wanted {duration:.3f}s)"
                    )
                    yield self.env.timeout(self.request_timeout)
                else:
                    yield self.env.timeout(duration)
                    return

            if attempt > self.max_retries:
                request.failed = True
                request.error = error
                return
            self.retries += 1
            backoff = self.retry_backoff * (2 ** (attempt - 1))
            if backoff > 0:
                yield self.env.timeout(backoff)

    def _account(self, request: BlockRequest) -> None:
        """Charge completed bytes to the true causes, split evenly."""
        if self.process_table is None or not request.causes:
            return
        share = request.nblocks * PAGE_SIZE / len(request.causes)
        for pid in request.causes:
            task = self.process_table.get(pid)
            if task is None:
                continue
            if request.is_read:
                task.bytes_read += share
            else:
                task.bytes_written += share
