"""The block request queue and dispatch engine.

One dispatcher process pulls requests from the installed elevator and
serves them on the device, one at a time (the device is the contended
resource).  Completion triggers the request's ``done`` event, cleans the
pages a write carried, performs per-cause byte accounting, and informs
the scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.block.request import BlockRequest
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.elevator import BlockScheduler
    from repro.devices.base import Device
    from repro.proc import ProcessTable
    from repro.sim.core import Environment


class BlockQueue:
    """Request queue between the elevator and a device."""

    def __init__(
        self,
        env: "Environment",
        device: "Device",
        scheduler: "BlockScheduler",
        process_table: Optional["ProcessTable"] = None,
    ):
        self.env = env
        self.device = device
        self.scheduler = scheduler
        self.process_table = process_table
        scheduler.attach(self)
        self._kick_event = env.event()
        self._dispatcher = env.process(self._dispatch_loop(), name="block-dispatcher")
        #: Observers called with each completed request (metrics etc.).
        self.completion_listeners: List[Callable[[BlockRequest], None]] = []
        self.in_flight: Optional[BlockRequest] = None
        self.submitted = 0
        self.completed = 0

    def submit(self, request: BlockRequest):
        """Enter *request* into the block layer; returns its done event."""
        request.submit_time = self.env.now
        request.done = self.env.event()
        self.submitted += 1
        self.scheduler.add_request(request)
        self.kick()
        return request.done

    def kick(self) -> None:
        """Wake the dispatcher (new request, or scheduler became willing)."""
        if not self._kick_event.triggered:
            self._kick_event.succeed()

    def _dispatch_loop(self):
        while True:
            request = self.scheduler.next_request()
            if request is None:
                self._kick_event = self.env.event()
                # Let the scheduler schedule a future kick (deadline
                # timers etc.) by also polling if it still holds work.
                yield self._kick_event
                continue

            request.dispatch_time = self.env.now
            self.in_flight = request
            serve = getattr(self.device, "serve", None)
            if serve is not None:
                # Asynchronous device (e.g. a VM disk backed by a host
                # file): service time emerges from the backing stack.
                yield from serve(request)
            else:
                duration = self.device.service_time(request.op, request.block, request.nblocks)
                yield self.env.timeout(duration)
            self.in_flight = None
            request.complete_time = self.env.now
            self.completed += 1
            self._account(request)
            for page in request.pages:
                page.write_completed()
            self.scheduler.request_completed(request)
            for listener in self.completion_listeners:
                listener(request)
            if not request.done.triggered:
                request.done.succeed(request)

    def _account(self, request: BlockRequest) -> None:
        """Charge completed bytes to the true causes, split evenly."""
        if self.process_table is None or not request.causes:
            return
        share = request.nblocks * PAGE_SIZE / len(request.causes)
        for pid in request.causes:
            task = self.process_table.get(pid)
            if task is None:
                continue
            if request.is_read:
                task.bytes_read += share
            else:
                task.bytes_written += share
