"""The elevator (block-scheduler) interface.

Mirrors the hooks of Linux's elevator framework: schedulers are told
when requests enter the block layer, are asked which request to
dispatch next, and are told when the device completes one.  A scheduler
may return ``None`` from :meth:`next_request` even while holding
requests (e.g. a token-bucket scheduler out of tokens); it must then
arrange for :meth:`~repro.block.queue.BlockQueue.kick` to be called
when it becomes willing again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.queue import BlockQueue
    from repro.block.request import BlockRequest


class BlockScheduler:
    """Base elevator; subclasses override the three hooks."""

    name = "elevator"

    def __init__(self):
        self.queue: Optional["BlockQueue"] = None

    def attach(self, queue: "BlockQueue") -> None:
        """Called by the block queue when the scheduler is installed."""
        self.queue = queue

    # -- elevator hooks ---------------------------------------------------

    def add_request(self, request: "BlockRequest") -> None:
        """A request has entered the block layer."""
        raise NotImplementedError

    def next_request(self) -> Optional["BlockRequest"]:
        """Choose the request to dispatch now (None = nothing to do)."""
        raise NotImplementedError

    def request_completed(self, request: "BlockRequest") -> None:
        """The device finished *request*."""

    def request_failed(self, request: "BlockRequest") -> None:
        """*request* failed permanently (retries exhausted).

        The default falls through to :meth:`request_completed` so cost
        accounting (e.g. token charges revised at completion) still
        settles; schedulers with richer policies may requeue or drop
        instead.
        """
        self.request_completed(request)

    def has_work(self) -> bool:
        """Whether any request is queued (dispatchable or not)."""
        raise NotImplementedError
