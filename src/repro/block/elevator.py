"""The elevator (block-scheduler) interface.

Mirrors the hooks of Linux's elevator framework: schedulers are told
when requests enter the block layer, are asked which request to
dispatch next, and are told when the device completes one.  A scheduler
may return ``None`` from :meth:`next_request` even while holding
requests (e.g. a token-bucket scheduler out of tokens); it must then
arrange for :meth:`~repro.block.queue.BlockQueue.kick` to be called
when it becomes willing again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.queue import BlockQueue
    from repro.block.request import BlockRequest


class BlockScheduler:
    """Base elevator; subclasses override the three hooks."""

    name = "elevator"

    def __init__(self):
        self.queue: Optional["BlockQueue"] = None
        #: High-water mark of :meth:`service_charge`: simulated time up
        #: to which device occupancy has already been billed.  Lets
        #: schedulers charge wall-clock device time correctly when
        #: several requests are outstanding (multi-queue dispatch).
        self._charged_until = 0.0

    def attach(self, queue: "BlockQueue") -> None:
        """Called by the block queue when the scheduler is installed."""
        self.queue = queue

    @property
    def outstanding(self) -> int:
        """Requests dispatched to the device and not yet completed."""
        return self.queue.inflight_count if self.queue is not None else 0

    def service_charge(self, request: "BlockRequest") -> float:
        """Billable device seconds for a completed *request*.

        The non-overlapping wall-clock union of service windows: with
        one request outstanding this equals the request's dispatch ->
        complete duration exactly; with several outstanding, overlap is
        charged only once, so time budgets (CFQ slices, token-bucket
        revisions) never bill the device for more seconds than actually
        elapsed.  Call at most once per completion — the method advances
        the charged high-water mark.
        """
        start = request.dispatch_time or 0.0
        end = request.complete_time or 0.0
        charged_from = start if start >= self._charged_until else self._charged_until
        self._charged_until = max(self._charged_until, end)
        return max(0.0, end - charged_from)

    # -- elevator hooks ---------------------------------------------------

    def add_request(self, request: "BlockRequest") -> None:
        """A request has entered the block layer."""
        raise NotImplementedError

    def next_request(self) -> Optional["BlockRequest"]:
        """Choose the request to dispatch now (None = nothing to do)."""
        raise NotImplementedError

    def on_dispatch(self, request: "BlockRequest") -> None:
        """A request returned by :meth:`next_request` was assigned a
        dispatch slot and is leaving for the device.

        Called once per dispatch, after ``request.dispatch_time`` and
        ``request.slot`` are set.  The default does nothing; depth-aware
        schedulers use it to track their own outstanding state (the
        queue-maintained count is available via :attr:`outstanding`).
        """

    def request_completed(self, request: "BlockRequest") -> None:
        """The device finished *request*."""

    def request_failed(self, request: "BlockRequest") -> None:
        """*request* failed permanently (retries exhausted).

        The default falls through to :meth:`request_completed` so cost
        accounting (e.g. token charges revised at completion) still
        settles; schedulers with richer policies may requeue or drop
        instead.
        """
        self.request_completed(request)

    def has_work(self) -> bool:
        """Whether any request is queued (dispatchable or not)."""
        raise NotImplementedError
