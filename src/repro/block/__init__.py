"""The block layer: requests, the dispatch queue, and the elevator API.

This mirrors Linux's block layer as seen by an I/O scheduler: requests
arrive via :meth:`BlockQueue.submit` (tagged, in the split framework,
with their true causes), the attached elevator decides dispatch order,
and the device model provides per-request service times.
"""

from repro.block.request import BlockRequest
from repro.block.elevator import BlockScheduler
from repro.block.queue import BlockQueue

__all__ = ["BlockQueue", "BlockRequest", "BlockScheduler"]
