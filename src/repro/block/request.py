"""Block-level request representation (Linux ``struct request``/``bio``)."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, List, Optional

from repro.core.tags import CauseSet, EMPTY_CAUSES
from repro.proc import Task
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

READ = "read"
WRITE = "write"


class BlockRequest:
    """One I/O request at the block level.

    Two identity fields matter for the paper's argument:

    - ``submitter`` — the task that *submitted* the request.  For
      delegated writes this is the writeback daemon or the journal
      commit task.  Block-level schedulers like CFQ can only see this.
    - ``causes`` — the true cause set carried by split tags.  Only
      split-framework schedulers consult it.
    """

    __slots__ = (
        "id",
        "op",
        "block",
        "nblocks",
        "submitter",
        "causes",
        "sync",
        "metadata",
        "pages",
        "submit_time",
        "dispatch_time",
        "complete_time",
        "done",
        "deadline",
        "attempts",
        "failed",
        "error",
        "slot",
        "hedged",
        "priced_duration",
    )

    _ids = itertools.count(1)

    def __init__(
        self,
        op: str,
        block: int,
        nblocks: int,
        submitter: Task,
        causes: CauseSet = EMPTY_CAUSES,
        sync: bool = False,
        metadata: bool = False,
        pages: Optional[List[Any]] = None,
    ):
        if op not in (READ, WRITE):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        if nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {nblocks}")
        self.id = next(BlockRequest._ids)
        self.op = op
        self.block = block
        self.nblocks = nblocks
        self.submitter = submitter
        self.causes = causes if causes else CauseSet((submitter.pid,))
        #: Synchronous request (a reader or fsync is waiting on it).
        self.sync = sync
        #: Journal / metadata write.
        self.metadata = metadata
        #: Pages this write flushes (cleaned on completion).
        self.pages = pages or []
        self.submit_time: Optional[float] = None
        self.dispatch_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: Triggered when the device finishes the request.  The event
        #: *succeeds* with the request even on failure — waiters must
        #: check :attr:`failed` — so kernel daemons are never killed by
        #: an I/O error they should merely count.
        self.done: Optional["Event"] = None
        #: Per-request deadline (absolute time), used by deadline schedulers.
        self.deadline: Optional[float] = None
        #: Device attempts made (1 on a clean first service).
        self.attempts = 0
        #: Dispatch slot (hardware-queue tag) that served the request;
        #: None until dispatched.  Always 0 at queue_depth=1.
        self.slot: Optional[int] = None
        #: A hedge clone was issued for this request (its primary
        #: attempt overran the adaptive deadline).
        self.hedged = False
        #: Permanently failed: the block layer exhausted its retries.
        self.failed = False
        #: The final device error when :attr:`failed` (None otherwise).
        self.error: Optional[BaseException] = None
        #: Service time pre-computed by the block queue's batch-pricing
        #: pass (fast-forward mode only); consumed by the first serve
        #: attempt, None otherwise.
        self.priced_duration: Optional[float] = None

    @property
    def nbytes(self) -> int:
        return self.nblocks * PAGE_SIZE

    @property
    def end_block(self) -> int:
        return self.block + self.nblocks

    @property
    def is_read(self) -> bool:
        return self.op == READ

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    @property
    def status(self) -> str:
        """``"ok"`` or ``"failed"`` (meaningful once completed)."""
        return "failed" if self.failed else "ok"

    @property
    def latency(self) -> Optional[float]:
        if self.complete_time is None or self.submit_time is None:
            return None
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:
        return (
            f"<BlockRequest #{self.id} {self.op} [{self.block},{self.end_block}) "
            f"by {self.submitter.name}>"
        )
