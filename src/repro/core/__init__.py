"""The paper's core contribution: the split-level scheduling framework.

- :mod:`repro.core.tags` — cross-layer cause tags (§3.1/§4.1): every
  dirty page and block request carries the *set* of tasks that caused
  it, and proxy tasks (writeback, journal commit) inherit the causes of
  the work they carry out on others' behalf.
- :mod:`repro.core.hooks` — the split hook table (Table 2): system-call
  entry/return hooks, memory (page-cache) hooks, and block hooks.
- :mod:`repro.core.framework` — wiring that attaches a scheduler's
  handlers to all three layers of the simulated stack.
- :mod:`repro.core.costmodel` — the two-stage cost estimation of §3.2
  (prompt memory-level guess, later block-level revision).
"""

from repro.core.tags import CauseSet, TagManager
from repro.core.hooks import SPLIT_HOOK_TABLE, SchedulerHooks, SplitScheduler
from repro.core.framework import SplitFramework
from repro.core.costmodel import MemoryCostModel, DiskCostModel

__all__ = [
    "CauseSet",
    "DiskCostModel",
    "MemoryCostModel",
    "SPLIT_HOOK_TABLE",
    "SchedulerHooks",
    "SplitFramework",
    "SplitScheduler",
    "TagManager",
]
