"""The scheduler hook tables (paper Table 2).

Three framework styles coexist on the simulated stack:

- **block-level** (Linux elevator): a plain
  :class:`~repro.block.elevator.BlockScheduler` — sees request
  submitters, cannot see syscalls or the page cache;
- **system-call level** (SCS, Craciunas et al.): syscall entry/return
  hooks only — sees callers, cannot see cache internals or the disk;
- **split-level** (this paper): syscall hooks for writes/fsync/metadata
  calls, memory hooks for buffer-dirty/buffer-free, *and* the block
  hooks, with cause tags flowing through all of them.

Syscall entry hooks may return a generator; the OS drives it, letting
the scheduler put the caller to sleep for as long as its policy wants
(the paper's "sleep in the entry hook" implementation choice).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.block.elevator import BlockScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.page import Page
    from repro.core.tags import CauseSet
    from repro.proc import Task

#: Calls exposed at the syscall level.  The split framework schedules
#: writes, fsync, and metadata calls; reads are deliberately *not*
#: scheduled above the cache (block level is preferable; §4.2).  The
#: SCS framework schedules reads too — that is its design.
SYSCALL_HOOKS = ("read", "write", "fsync", "creat", "mkdir", "unlink")

#: The hook inventory of Table 2: name -> (level, origin).
SPLIT_HOOK_TABLE: Dict[str, Any] = {
    "write_entry": ("syscall", "SCS"),
    "write_return": ("syscall", "SCS"),
    "fsync_entry": ("syscall", "new"),
    "fsync_return": ("syscall", "new"),
    "creat_entry": ("syscall", "new"),
    "mkdir_entry": ("syscall", "new"),
    "buffer_dirty": ("memory", "new"),
    "buffer_free": ("memory", "new"),
    "block_add": ("block", "elevator"),
    "block_dispatch": ("block", "elevator"),
    "block_complete": ("block", "elevator"),
}


class SchedulerHooks:
    """Base class for schedulers with above-block hooks."""

    name = "scheduler"
    #: Which framework the scheduler belongs to ("block", "syscall",
    #: "split"); used by the Table 1 capability probes and the OS wiring.
    framework = "split"

    # -- system-call level ---------------------------------------------------

    def syscall_entry(self, task: "Task", call: str, info: Dict[str, Any]):
        """Called before the body of a syscall runs.

        Return None to let the call proceed immediately, or a generator
        that the calling task will be driven through (yielding events
        to sleep on) before the call body executes.
        """
        return None

    def syscall_return(self, task: "Task", call: str, info: Dict[str, Any]) -> None:
        """Called after the syscall body completes."""

    # -- memory level -----------------------------------------------------------

    def on_buffer_dirty(self, page: "Page", old_causes: "CauseSet") -> None:
        """A buffer was dirtied (or a dirty buffer re-modified)."""

    def on_buffer_free(self, page: "Page") -> None:
        """A dirty buffer was deleted before writeback."""

    # -- block level --------------------------------------------------------------

    def make_elevator(self) -> BlockScheduler:
        """The block-level component to install on the request queue."""
        from repro.schedulers.noop import Noop

        return Noop()

    # -- lifecycle ----------------------------------------------------------------

    def attach_stack(self, os) -> None:
        """Called once the OS stack is assembled (access to cache, etc.)."""
        self.os = os


class SplitScheduler(SchedulerHooks, BlockScheduler):
    """A scheduler using hooks at all three levels (it *is* the elevator)."""

    framework = "split"

    def __init__(self):
        BlockScheduler.__init__(self)

    def make_elevator(self) -> BlockScheduler:
        return self
