"""Framework wiring and the Table 1 capability matrix."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hooks import SchedulerHooks


#: Table 1 of the paper: which scheduler needs each framework can meet.
FRAMEWORK_PROPERTIES: Dict[str, Dict[str, bool]] = {
    "block": {"cause_mapping": False, "cost_estimation": True, "reordering": False},
    "syscall": {"cause_mapping": True, "cost_estimation": False, "reordering": True},
    "split": {"cause_mapping": True, "cost_estimation": True, "reordering": True},
}


class SplitFramework:
    """Attaches a scheduler's handlers to all three stack layers.

    The OS constructs one of these per stack; installing a
    :class:`~repro.core.hooks.SchedulerHooks` scheduler connects its
    memory hooks to the page cache (the elevator connection is made by
    the block queue, and syscall hooks are invoked by the OS facade).
    """

    def __init__(self, os):
        self.os = os
        self.scheduler: Optional["SchedulerHooks"] = None

    def install(self, scheduler: "SchedulerHooks") -> None:
        if self.scheduler is not None:
            raise RuntimeError("a scheduler is already installed")
        self.scheduler = scheduler
        self.os.cache.buffer_dirty_hook = scheduler.on_buffer_dirty
        self.os.cache.buffer_free_hook = scheduler.on_buffer_free
        scheduler.attach_stack(self.os)

    @staticmethod
    def properties(framework: str) -> Dict[str, bool]:
        """Capability row of Table 1 for *framework*."""
        try:
            return dict(FRAMEWORK_PROPERTIES[framework])
        except KeyError:
            raise ValueError(f"unknown framework {framework!r}") from None
