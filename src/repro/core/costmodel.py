"""Two-stage I/O cost estimation (paper §3.2, Figure 8).

Costs are expressed in *normalized bytes*: the amount of sequential I/O
the device could have done in the same time.  1 MB of random 4 KB
writes on a disk may normalize to ~10 MB or more.

- :class:`MemoryCostModel` guesses promptly, when a buffer is dirtied:
  on-disk locations may not exist yet (delayed allocation), so it
  classifies by *file-offset* randomness.
- :class:`DiskCostModel` revises at the block level, when locations,
  amplification, and actual service time are known.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.units import MB, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.request import BlockRequest
    from repro.cache.page import Page
    from repro.devices.base import Device


class MemoryCostModel:
    """Prompt estimate at buffer-dirty time, from file-offset patterns."""

    def __init__(self, random_penalty: float = 10.0):
        #: Multiplier applied to writes that look random in the file.
        self.random_penalty = random_penalty
        #: inode id -> next expected page index (sequentiality detector).
        self._expected_next: Dict[int, int] = {}

    def looks_sequential(self, page: "Page") -> bool:
        inode_id, index = page.key.inode_id, page.key.index
        expected = self._expected_next.get(inode_id)
        self._expected_next[inode_id] = index + 1
        return expected is None or index == expected or index == expected - 1

    def estimate(self, page: "Page") -> float:
        """Normalized-byte cost guessed for dirtying *page*."""
        if self.looks_sequential(page):
            return float(PAGE_SIZE)
        return PAGE_SIZE * self.random_penalty


class DiskCostModel:
    """Block-level revision: true cost from actual device behaviour."""

    def __init__(self, device: "Device", sequential_rate: Optional[float] = None):
        self.device = device
        if sequential_rate is None:
            sequential_rate = getattr(device, "transfer_rate", None) or getattr(
                device, "read_bandwidth", 100 * MB
            )
        self.sequential_rate = float(sequential_rate)

    def normalized_bytes(self, request: "BlockRequest", duration: float) -> float:
        """Sequential-equivalent bytes consumed by a completed request."""
        if duration <= 0:
            return float(request.nbytes)
        return duration * self.sequential_rate

    def revision(self, request: "BlockRequest", duration: float, preliminary: float) -> float:
        """Extra charge (may be negative = refund) vs the prompt guess."""
        return self.normalized_bytes(request, duration) - preliminary
