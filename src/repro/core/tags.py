"""Cross-layer cause tagging (paper §3.1, §4.1).

The split framework tags I/O with *sets* of causes rather than scalar
tags: metadata is shared and I/O is batched, so one dirty page or block
request can have many responsible tasks.

Write delegation is handled through *proxies*: when the writeback daemon
or the journal commit task does work on behalf of other tasks, it enters
a proxy context naming those tasks; anything it dirties or submits while
in that context is attributed to the tasks being served, not to the
proxy itself (Figure 7 in the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from repro.proc import Task


class CauseSet:
    """An immutable set of pids responsible for an I/O operation."""

    __slots__ = ("pids",)

    def __init__(self, pids: Iterable[int] = ()):
        self.pids: FrozenSet[int] = frozenset(pids)

    @classmethod
    def of(cls, *tasks: Task) -> "CauseSet":
        """Build a cause set from task objects."""
        return cls(task.pid for task in tasks)

    def union(self, other: "CauseSet") -> "CauseSet":
        return CauseSet(self.pids | other.pids)

    def __or__(self, other: "CauseSet") -> "CauseSet":
        return self.union(other)

    def __contains__(self, item) -> bool:
        pid = item.pid if isinstance(item, Task) else item
        return pid in self.pids

    def __len__(self) -> int:
        return len(self.pids)

    def __iter__(self):
        return iter(self.pids)

    def __bool__(self) -> bool:
        return bool(self.pids)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CauseSet):
            return self.pids == other.pids
        if isinstance(other, frozenset):
            return self.pids == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pids)

    def __repr__(self) -> str:
        return f"CauseSet({sorted(self.pids)})"


EMPTY_CAUSES = CauseSet()


class TagManager:
    """Tracks per-task proxy state and answers "who caused this?".

    ``current_causes(task)`` is the single entry point used by the cache
    and block layers when tagging new work: it returns the proxied cause
    set while the task is acting as a proxy, and ``{task.pid}``
    otherwise.

    The manager also measures its own memory footprint (Figure 10): each
    live tag costs roughly ``TAG_OVERHEAD_BASE + TAG_OVERHEAD_PER_PID *
    len(causes)`` bytes, mirroring the kmalloc instrumentation in the
    paper.
    """

    #: Approximate bytes of kernel memory per causes structure and per
    #: pid entry (matches the order of magnitude instrumented in §4.3).
    TAG_OVERHEAD_BASE = 48
    TAG_OVERHEAD_PER_PID = 8

    def __init__(self):
        self._proxies: Dict[int, CauseSet] = {}
        #: Singleton CauseSets for unproxied tasks (hot path).
        self._self_causes: Dict[int, CauseSet] = {}
        #: Live tag allocations, keyed by the tagged object's id.
        self._allocations: Dict[int, int] = {}
        self.bytes_allocated = 0
        self.max_bytes_allocated = 0

    # -- proxy contexts -------------------------------------------------

    def set_proxy(self, task: Task, causes: CauseSet) -> None:
        """Mark *task* as doing work on behalf of *causes*."""
        if not isinstance(causes, CauseSet):
            raise TypeError(f"causes must be a CauseSet, got {causes!r}")
        self._proxies[task.pid] = causes

    def add_proxy_causes(self, task: Task, causes: CauseSet) -> None:
        """Extend *task*'s proxy set (e.g. journal serving more joiners)."""
        current = self._proxies.get(task.pid, EMPTY_CAUSES)
        self._proxies[task.pid] = current | causes

    def clear_proxy(self, task: Task) -> None:
        """Clear *task*'s proxy state (done submitting delegated work)."""
        self._proxies.pop(task.pid, None)

    def is_proxy(self, task: Task) -> bool:
        return task.pid in self._proxies

    def proxy_causes(self, task: Task) -> CauseSet:
        return self._proxies.get(task.pid, EMPTY_CAUSES)

    def current_causes(self, task: Task) -> CauseSet:
        """The causes to tag new work performed by *task* with."""
        proxied = self._proxies.get(task.pid)
        if proxied:
            return proxied
        causes = self._self_causes.get(task.pid)
        if causes is None:
            causes = CauseSet((task.pid,))
            self._self_causes[task.pid] = causes
        return causes

    # -- tag memory accounting (Figure 10) -------------------------------

    def account_tag(self, obj: object, causes: CauseSet) -> None:
        """Record the allocation of a causes tag attached to *obj*."""
        cost = self.TAG_OVERHEAD_BASE + self.TAG_OVERHEAD_PER_PID * len(causes)
        previous = self._allocations.pop(id(obj), 0)
        self.bytes_allocated += cost - previous
        self._allocations[id(obj)] = cost
        if self.bytes_allocated > self.max_bytes_allocated:
            self.max_bytes_allocated = self.bytes_allocated

    def release_tag(self, obj: object) -> None:
        """Record that *obj*'s tag was freed."""
        cost = self._allocations.pop(id(obj), 0)
        self.bytes_allocated -= cost

    @property
    def live_tags(self) -> int:
        return len(self._allocations)
