"""Command-line interface: run any paper experiment and print JSON.

Usage::

    python -m repro list                 # list experiment ids
    python -m repro run fig13            # regenerate one figure
    python -m repro run fig13 --set duration=10 --set rate_limit=1048576
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from typing import Any, Dict

from repro.experiments import EXPERIMENTS


def _parse_override(text: str) -> Any:
    key, _, raw = text.partition("=")
    if not _:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    try:
        value: Any = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _jsonable(value: Any) -> Any:
    """Coerce experiment results into JSON-friendly structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def cmd_list(_args) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key, (module, title) in sorted(EXPERIMENTS.items()):
        print(f"{key.ljust(width)}  {title}")
    return 0


def _build_fault_plan(args):
    """A FaultPlan from the --fault-* flags, or None if all defaults."""
    from repro.faults import FaultPlan

    plan = FaultPlan(
        read_error_prob=args.fault_read_error_prob,
        write_error_prob=args.fault_write_error_prob,
        error_latency=args.fault_error_latency,
        slow_factor=args.fault_slow_factor,
        stall_prob=args.fault_stall_prob,
        stall_duration=args.fault_stall_duration,
        power_loss_at=args.fault_power_loss_at,
    )
    return None if plan.empty else plan


def cmd_run(args) -> int:
    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        print(f"unknown experiment {args.experiment!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    module_name, title = entry
    module = importlib.import_module(module_name)
    overrides: Dict[str, Any] = dict(args.overrides or [])

    plan = _build_fault_plan(args)
    if plan is not None:
        from repro.experiments import common

        common.set_default_fault_plan(plan, seed=args.fault_seed)

    runner = getattr(module, "run_comparison", None) or module.run
    print(f"# {title}", file=sys.stderr)
    try:
        result = runner(**overrides)
        if plan is not None:
            from repro.experiments import common

            faults = common.drain_fault_summaries()
            if isinstance(result, dict):
                result = dict(result, _faults=faults)
            else:
                result = {"result": result, "_faults": faults}
    finally:
        if plan is not None:
            from repro.experiments import common

            common.clear_default_fault_plan()
    json.dump(_jsonable(result), sys.stdout, indent=2)
    print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Split-Level I/O Scheduling' (SOSP 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig13")
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        type=_parse_override,
        metavar="KEY=VALUE",
        help="override a run() keyword (JSON-parsed; repeatable)",
    )
    faults = run_parser.add_argument_group(
        "fault injection",
        "inject device faults during the run (default: none; results gain "
        "a _faults section with injector and retry statistics)",
    )
    faults.add_argument("--fault-read-error-prob", type=float, default=0.0,
                        metavar="P", help="per-read transient error probability")
    faults.add_argument("--fault-write-error-prob", type=float, default=0.0,
                        metavar="P", help="per-write transient error probability")
    faults.add_argument("--fault-error-latency", type=float, default=0.005,
                        metavar="SEC", help="device time consumed by a failed attempt")
    faults.add_argument("--fault-slow-factor", type=float, default=1.0,
                        metavar="X", help="multiply all service times (slow disk)")
    faults.add_argument("--fault-stall-prob", type=float, default=0.0,
                        metavar="P", help="per-op probability of a long stall")
    faults.add_argument("--fault-stall-duration", type=float, default=60.0,
                        metavar="SEC", help="length of an injected stall")
    faults.add_argument("--fault-power-loss-at", type=float, default=None,
                        metavar="SEC", help="cut power at this simulated time")
    faults.add_argument("--fault-seed", type=int, default=0,
                        metavar="N", help="seed for the fault RNG stream")
    run_parser.set_defaults(func=cmd_run)

    export_parser = sub.add_parser("export", help="run experiments, write JSON + report")
    export_parser.add_argument("out_dir", help="directory for <id>.json files and REPORT.md")
    export_parser.add_argument(
        "--only", action="append", metavar="ID",
        help="restrict to these experiment ids (repeatable)",
    )
    export_parser.set_defaults(func=cmd_export)

    args = parser.parse_args(argv)
    return args.func(args)


def cmd_export(args) -> int:
    from repro.experiments.export import export_all

    written = export_all(args.out_dir, only=args.only)
    print(f"wrote {len(written)} result files to {args.out_dir}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
