"""Command-line interface: run any paper experiment and print JSON.

Usage::

    python -m repro list                 # list experiment ids
    python -m repro run fig13            # regenerate one figure
    python -m repro run fig13 --set duration=10 --set rate_limit=1048576
    python -m repro run fig15 --jobs 4   # fan the figure's cells across cores
    python -m repro run-all --jobs 8     # the whole figure suite in parallel
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict

from repro.experiments import EXPERIMENTS


def _parse_override(text: str) -> Any:
    key, _, raw = text.partition("=")
    if not _:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    try:
        value: Any = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _jsonable(value: Any) -> Any:
    """Coerce experiment results into JSON-friendly structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def cmd_list(_args) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key, (module, title) in sorted(EXPERIMENTS.items()):
        print(f"{key.ljust(width)}  {title}")
    return 0


def _build_fault_plan(args):
    """A FaultPlan from the --fault-* flags, or None if all defaults."""
    from repro.faults import FaultPlan

    plan = FaultPlan(
        read_error_prob=args.fault_read_error_prob,
        write_error_prob=args.fault_write_error_prob,
        error_latency=args.fault_error_latency,
        slow_factor=args.fault_slow_factor,
        stall_prob=args.fault_stall_prob,
        stall_duration=args.fault_stall_duration,
        power_loss_at=args.fault_power_loss_at,
    )
    return None if plan.empty else plan


def _resolve_jobs(jobs: int) -> int:
    """``--jobs 0`` means "one worker per core"."""
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def cmd_run(args) -> int:
    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        print(f"unknown experiment {args.experiment!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    _module_name, title = entry
    overrides: Dict[str, Any] = dict(args.overrides or [])

    from repro.experiments import runner

    plan = _build_fault_plan(args)
    print(f"# {title}", file=sys.stderr)
    outcome = runner.run_experiment(
        args.experiment,
        overrides,
        jobs=_resolve_jobs(args.jobs),
        fault_plan=plan,
        fault_seed=args.fault_seed,
        trace=args.trace is not None,
        queue_depth=args.queue_depth,
        hedge=args.hedge,
        fast_forward=args.fast_forward,
        shards=args.shards,
        sanitize=args.sanitize,
    )
    result = outcome.result
    if plan is not None:
        if isinstance(result, dict):
            result = dict(result, _faults=outcome.faults)
        else:
            result = {"result": result, "_faults": outcome.faults}
    if args.trace is not None:
        _write_trace(args.trace, args.experiment, outcome.spans)
    json.dump(_jsonable(result), sys.stdout, indent=2)
    print()
    return 0


def _write_trace(trace_dir: str, experiment: str, spans) -> None:
    """Write one experiment's span stream as JSONL under *trace_dir*."""
    from pathlib import Path

    from repro.obs import write_spans

    path = Path(trace_dir) / f"{experiment}.spans.jsonl"
    count = write_spans(path, spans)
    print(f"# wrote {count} spans to {path}", file=sys.stderr)


def cmd_run_all(args) -> int:
    """Run the whole figure suite (or --only subsets), cells in parallel."""
    import time

    from repro.experiments import runner

    keys = sorted(args.only) if args.only else sorted(EXPERIMENTS)
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    jobs = _resolve_jobs(args.jobs)
    plan = _build_fault_plan(args)
    print(f"# running {len(keys)} experiments with --jobs {jobs}", file=sys.stderr)
    started = time.perf_counter()  # simlint: disable=SIM001 (host wall time, not sim time)
    outcomes = runner.run_experiments(
        [(key, None) for key in keys],
        jobs=jobs,
        fault_plan=plan,
        fault_seed=args.fault_seed,
        trace=args.trace is not None,
        queue_depth=args.queue_depth,
        hedge=args.hedge,
        fast_forward=args.fast_forward,
        shards=args.shards,
        sanitize=args.sanitize,
        progress=lambda line: print(line, file=sys.stderr),
    )
    elapsed = time.perf_counter() - started  # simlint: disable=SIM001 (host wall time)

    if args.trace is not None:
        for key in keys:
            _write_trace(args.trace, key, outcomes[key].spans)

    combined: Dict[str, Any] = {}
    for key in keys:
        result = outcomes[key].result
        if plan is not None:
            if isinstance(result, dict):
                result = dict(result, _faults=outcomes[key].faults)
            else:
                result = {"result": result, "_faults": outcomes[key].faults}
        combined[key] = result

    if args.out:
        from repro.experiments.export import write_results

        written = write_results(args.out, {key: outcomes[key] for key in keys})
        print(f"wrote {len(written)} result files to {args.out}", file=sys.stderr)
    else:
        json.dump(_jsonable(combined), sys.stdout, indent=2)
        print()
    # Summed cell time over wall time is the *average concurrency*
    # achieved, not a true speedup: per-cell times are measured inside
    # (possibly contended) workers, so comparing against a dedicated
    # serial run is the only honest speedup measurement.
    cell_time = sum(outcomes[key].seconds for key in keys)
    print(
        f"# suite wall-clock {elapsed:.1f}s (summed cell time {cell_time:.1f}s, "
        f"avg concurrency {cell_time / elapsed if elapsed > 0 else 1.0:.2f})",
        file=sys.stderr,
    )
    return 0


def _add_queue_depth_arg(parser) -> None:
    parser.add_argument(
        "--queue-depth", type=int, default=1, metavar="N",
        help="block-layer dispatch depth (NCQ tags) for stacks that "
             "don't pin their own; 1 (default) is the classic serial "
             "engine, byte-identical to previous releases; effective "
             "concurrency is capped by the device's channels",
    )


def _add_hedge_arg(parser) -> None:
    parser.add_argument(
        "--hedge", action="store_true",
        help="speculatively re-issue requests that exceed the health "
             "monitor's adaptive deadline on a free dispatch slot "
             "(first completion wins); needs --queue-depth > 1 to have "
             "any effect",
    )


def _add_shards_arg(parser) -> None:
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition cluster experiments (fig21, fig24) into N shard "
             "Environments advancing in lockstep epochs, one worker "
             "process per shard; results are byte-identical for any N "
             "(single-stack experiments ignore this)",
    )


def _add_sanitize_arg(parser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable runtime invariant checks (monotonic clock, exact "
             "cohort dispatch order, conservative-sync causality, token "
             "conservation, slot bounds); violations raise "
             "SanitizerError with recent event history — slower, but "
             "results are unchanged when no invariant is broken",
    )


def _add_fast_forward_arg(parser) -> None:
    parser.add_argument(
        "--fast-forward", action="store_true",
        help="replay steady-state read/write streams analytically "
             "(closed-form clock and byte accounting) instead of "
             "event-by-event; drops back to event-accurate mode on any "
             "transient, and figure shapes are preserved (values may "
             "differ in the last decimals)",
    )


def _add_fault_args(parser) -> None:
    faults = parser.add_argument_group(
        "fault injection",
        "inject device faults during the run (default: none; results gain "
        "a _faults section with injector and retry statistics)",
    )
    faults.add_argument("--fault-read-error-prob", type=float, default=0.0,
                        metavar="P", help="per-read transient error probability")
    faults.add_argument("--fault-write-error-prob", type=float, default=0.0,
                        metavar="P", help="per-write transient error probability")
    faults.add_argument("--fault-error-latency", type=float, default=0.005,
                        metavar="SEC", help="device time consumed by a failed attempt")
    faults.add_argument("--fault-slow-factor", type=float, default=1.0,
                        metavar="X", help="multiply all service times (slow disk)")
    faults.add_argument("--fault-stall-prob", type=float, default=0.0,
                        metavar="P", help="per-op probability of a long stall")
    faults.add_argument("--fault-stall-duration", type=float, default=60.0,
                        metavar="SEC", help="length of an injected stall")
    faults.add_argument("--fault-power-loss-at", type=float, default=None,
                        metavar="SEC", help="cut power at this simulated time")
    faults.add_argument("--fault-seed", type=int, default=0,
                        metavar="N", help="seed for the fault RNG stream")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Split-Level I/O Scheduling' (SOSP 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig13")
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        type=_parse_override,
        metavar="KEY=VALUE",
        help="override a run() keyword (JSON-parsed; repeatable)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the experiment's independent cells across N worker "
             "processes (0 = one per core; results are byte-identical "
             "to --jobs 1)",
    )
    run_parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="attach per-request lifecycle tracing and write "
             "<experiment>.spans.jsonl to DIR (inspect with "
             "`python -m repro trace-report DIR`)",
    )
    _add_queue_depth_arg(run_parser)
    _add_hedge_arg(run_parser)
    _add_fast_forward_arg(run_parser)
    _add_shards_arg(run_parser)
    _add_sanitize_arg(run_parser)
    _add_fault_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    all_parser = sub.add_parser(
        "run-all",
        help="run the whole figure suite, cells fanned across cores",
    )
    all_parser.add_argument(
        "--only", action="append", metavar="ID",
        help="restrict to these experiment ids (repeatable)",
    )
    all_parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes (default 0 = one per core; results are "
             "byte-identical for any N)",
    )
    all_parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="write per-experiment JSON + REPORT.md to DIR instead of "
             "printing combined JSON to stdout",
    )
    all_parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="attach lifecycle tracing; writes one spans.jsonl per experiment",
    )
    _add_queue_depth_arg(all_parser)
    _add_hedge_arg(all_parser)
    _add_fast_forward_arg(all_parser)
    _add_shards_arg(all_parser)
    _add_sanitize_arg(all_parser)
    _add_fault_args(all_parser)
    all_parser.set_defaults(func=cmd_run_all)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign (random fault plans, hard "
             "invariants, shrinking); exit 1 on any violation",
    )
    chaos_parser.add_argument(
        "--plans", type=int, default=25, metavar="N",
        help="number of random fault plans to run (default 25)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=1, metavar="N",
        help="campaign seed; plan i derives from seed*1000003+i",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (0 = one per core; the report is "
             "byte-identical for any N)",
    )
    chaos_parser.add_argument(
        "--duration", type=float, default=3.0, metavar="SEC",
        help="simulated workload window per plan (default 3.0)",
    )
    chaos_parser.add_argument(
        "--queue-depth", type=int, default=4, metavar="N",
        help="block-layer dispatch depth for every run (default 4)",
    )
    chaos_parser.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged dispatch (on by default in campaigns)",
    )
    chaos_parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip minimising failing plans",
    )
    chaos_parser.add_argument(
        "--forbid-retries", action="store_true",
        help="install an intentionally unsatisfiable invariant (the "
             "campaign's own red-path sanity check)",
    )
    chaos_parser.set_defaults(func=cmd_chaos)

    report_parser = sub.add_parser(
        "trace-report",
        help="summarize span JSONL files written by `run --trace`",
    )
    report_parser.add_argument(
        "trace_path",
        help="a spans.jsonl file, or a directory of <experiment>.spans.jsonl",
    )
    report_parser.add_argument(
        "--by-cause", action="store_true",
        help="additionally break each stage down per cause task",
    )
    report_parser.set_defaults(func=cmd_trace_report)

    lint_parser = sub.add_parser(
        "lint",
        help="run simlint (determinism/isolation static analysis, rules "
             "SIM001-SIM008) over Python files; exit 1 on any violation",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text: location, rule, why, fix-it)",
    )
    lint_parser.add_argument(
        "--select", action="append", metavar="SIMnnn",
        help="restrict to these rule ids (repeatable)",
    )
    lint_parser.set_defaults(func=cmd_lint)

    demo_parser = sub.add_parser(
        "fs-demo",
        help="scripted reprofs session: ordinary file-API calls "
             "(open/write/ls/mv/rm) driving the simulated stack",
    )
    demo_parser.add_argument(
        "--device", choices=("hdd", "ssd"), default="ssd",
        help="device model for the demo stack (default ssd)",
    )
    demo_parser.add_argument(
        "--scheduler", default=None,
        help="scheduler registry name (default: noop pass-through)",
    )
    demo_parser.set_defaults(func=cmd_fs_demo)

    export_parser = sub.add_parser("export", help="run experiments, write JSON + report")
    export_parser.add_argument("out_dir", help="directory for <id>.json files and REPORT.md")
    export_parser.add_argument(
        "--only", action="append", metavar="ID",
        help="restrict to these experiment ids (repeatable)",
    )
    export_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment cells (0 = one per core)",
    )
    export_parser.set_defaults(func=cmd_export)

    args = parser.parse_args(argv)
    return args.func(args)


def cmd_chaos(args) -> int:
    """Run a chaos campaign and print its report; exit 1 on violations."""
    from repro.faults.campaign import run_campaign

    report = run_campaign(
        plans=args.plans,
        seed=args.seed,
        jobs=_resolve_jobs(args.jobs),
        duration=args.duration,
        queue_depth=args.queue_depth,
        hedge=not args.no_hedge,
        shrink=not args.no_shrink,
        forbid_retries=args.forbid_retries,
        progress=lambda line: print(line, file=sys.stderr),
    )
    json.dump(_jsonable(report), sys.stdout, indent=2)
    print()
    print(
        f"# {report['plans']} plans, {report['failed_runs']} failing, "
        f"{report['violations']} violations "
        f"({report['power_loss_runs']} power-loss runs)",
        file=sys.stderr,
    )
    return 1 if report["violations"] else 0


def cmd_trace_report(args) -> int:
    """Validate span files and print per-stage latency breakdowns."""
    from pathlib import Path

    from repro.obs import SpanSchemaError, format_report, load_spans

    path = Path(args.trace_path)
    if path.is_dir():
        files = sorted(path.glob("*.spans.jsonl"))
        if not files:
            print(f"no *.spans.jsonl files in {path}", file=sys.stderr)
            return 2
    elif path.exists():
        files = [path]
    else:
        print(f"no such file or directory: {path}", file=sys.stderr)
        return 2

    first = True
    for file in files:
        try:
            spans = load_spans(file)
        except SpanSchemaError as exc:
            print(f"invalid span file: {exc}", file=sys.stderr)
            return 1
        if not first:
            print()
        first = False
        title = file.name.replace(".spans.jsonl", "")
        try:
            print(format_report(spans, title=title, by_cause=args.by_cause))
        except BrokenPipeError:  # e.g. `trace-report out/ | head`
            return 0
    return 0


def cmd_lint(args) -> int:
    """Run simlint over the given paths; exit 1 on any violation."""
    from repro.analysis.simlint import RULES, format_json, format_text, lint_paths

    select = None
    if args.select:
        select = {rule.upper() for rule in args.select}
        unknown = select - set(RULES)
        if unknown:
            print(
                f"unknown rules: {', '.join(sorted(unknown))}; valid: "
                f"{', '.join(sorted(r for r in RULES if r != 'SIM000'))}",
                file=sys.stderr,
            )
            return 2
    violations = lint_paths(args.paths, select=select)
    if args.format == "json":
        print(format_json(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


def cmd_fs_demo(args) -> int:
    """A scripted reprofs session: plain file-API calls driving the
    simulated stack, with the sim clock printed after each step."""
    from repro.units import KB, MB
    from repro.vfs.reprofs import ReproFileSystem

    fs = ReproFileSystem(
        tenant="demo",
        device=args.device,
        scheduler=args.scheduler,
        memory_bytes=64 * MB,
    )

    def step(label):
        print(f"  t={fs.env.now * 1e3:8.3f} ms  {label}")

    print(f"reprofs demo on {fs!r}")
    fs.makedirs("/data/logs")
    step("makedirs /data/logs")
    with fs.open("repro://data/report.bin", "wb") as f:
        f.write(b"header:" + b"\x00" * (256 * KB))
        f.flush()
    step("wrote + fsynced /data/report.bin (256 KiB)")
    with fs.open("/data/logs/app.log", "ab") as f:
        for i in range(4):
            f.write(f"line {i}\n".encode())
    step("appended 4 records to /data/logs/app.log")
    print(f"  ls /data -> {fs.ls('/data')}")
    info = fs.info("/data/report.bin")
    print(f"  info -> {info}")
    head = fs.cat_file("/data/report.bin", start=0, end=7)
    step(f"read back header {head!r}")
    fs.mv("/data/report.bin", "/data/logs/report.bin")
    step("renamed report into /data/logs")
    fs.rm("/data", recursive=True)
    step("recursively removed /data")
    stats = fs.os.device.stats
    print(
        f"device: {stats.reads} reads / {stats.writes} writes, "
        f"{fs.pump.episodes} pump episodes, final clock {fs.env.now * 1e3:.3f} ms"
    )
    return 0


def cmd_export(args) -> int:
    from repro.experiments.export import export_all

    written = export_all(args.out_dir, only=args.only, jobs=_resolve_jobs(args.jobs))
    print(f"wrote {len(written)} result files to {args.out_dir}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
