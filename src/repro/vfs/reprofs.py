"""`reprofs`: the fsspec-shaped synchronous frontend to the simulator.

Real applications speak file APIs, not discrete-event generators.  This
module bridges the two worlds so any file-speaking program becomes a
schedulable tenant of a simulated stack:

- :class:`DriverPump` turns one synchronous call into one simulation
  episode: it wraps the costed OS generator in a process and runs the
  event loop until that process completes.  Every *other* process on
  the stack (competing tenants, writeback, checkpointers) advances
  concurrently during the episode, so synchronous callers genuinely
  contend for the device.
- :class:`ReproFileSystem` is the `AbstractFileSystem`-shaped adapter:
  ``open``/``ls``/``info``/``cat_file``/``pipe_file``/``mv``/``rm``…
  Every instance is one *tenant*: it spawns its own task and stamps a
  per-handle cause set on all I/O it issues, so schedulers and the obs
  bus attribute every byte to it.
- :class:`ReproFile` is the file-like object ``open`` returns: read /
  write / seek / tell / flush(=fsync) / close, with real byte payloads.

Bytes vs cost: the simulation prices I/O from sizes and offsets; it
does not move data.  ``reprofs`` keeps a per-stack shadow store of file
contents (a ``bytearray`` per inode) so ``read`` returns the bytes that
were written — files created by simulation-side prefill read as zeros —
while every operation is still charged simulated time through the full
stack (cache, journal, scheduler, device).

fsspec itself is an **optional** dependency: the adapter runs
standalone against its conformance suite, and :func:`register` grafts
it into fsspec's registry under ``repro://`` when fsspec is installed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.tags import CauseSet
from repro.vfs import path as vpath
from repro.vfs.handle import OpenFile

PROTOCOL = "repro"


def strip_protocol(path: str) -> str:
    """``repro://data/f`` -> ``/data/f`` (idempotent, normalizing)."""
    for prefix in (PROTOCOL + "://", PROTOCOL + ":"):
        if path.startswith(prefix):
            path = path[len(prefix):]
            break
    if not path.startswith("/"):
        path = "/" + path
    return vpath.normalize(path)


class DriverPump:
    """Drives the event loop on behalf of synchronous callers.

    One pump per stack: an episode runs the simulation until the pumped
    syscall completes, so concurrent tenants' processes make progress
    inside each other's episodes.  Episodes must not nest — a file-like
    object used from *within* a simulation process should use the
    generator API (`OpenFile`) instead.
    """

    def __init__(self, env):
        self.env = env
        self._active = False
        #: Completed episodes (one synchronous call each).
        self.episodes = 0

    def run(self, gen, name: str = "reprofs"):
        if self._active:
            raise RuntimeError(
                "re-entrant driver pump: synchronous reprofs calls cannot "
                "be issued from inside a simulation process"
            )
        self._active = True
        try:
            proc = self.env.process(gen, name=name)
            value = self.env.run(until=proc)
            self.episodes += 1
            return value
        finally:
            self._active = False


def _pump_of(machine) -> DriverPump:
    """The per-stack pump (tenants sharing a machine share one)."""
    pump = getattr(machine, "_reprofs_pump", None)
    if pump is None:
        pump = DriverPump(machine.env)
        machine._reprofs_pump = pump
    return pump


def _blobs_of(machine) -> Dict[int, bytearray]:
    """The per-stack shadow byte store (shared across tenants)."""
    blobs = getattr(machine, "_reprofs_blobs", None)
    if blobs is None:
        blobs = {}
        machine._reprofs_blobs = blobs
    return blobs


class ReproFile:
    """A synchronous file-like object over one VFS handle."""

    def __init__(self, fs: "ReproFileSystem", handle: OpenFile):
        self.fs = fs
        self.handle = handle
        self.mode = handle.mode

    # -- byte shadow ----------------------------------------------------------

    def _blob(self) -> bytearray:
        return self.fs._blobs.setdefault(self.handle.inode.id, bytearray())

    def _bytes_range(self, start: int, end: int) -> bytes:
        """Shadow bytes in [start, end); zeros where nothing was piped."""
        blob = self.fs._blobs.get(self.handle.inode.id, b"")
        chunk = bytes(blob[start:end])
        if len(chunk) < end - start:
            chunk += b"\x00" * (end - start - len(chunk))
        return chunk

    # -- file API -------------------------------------------------------------

    def read(self, size: int = -1) -> bytes:
        """Read up to *size* bytes at the cursor (all remaining if < 0)."""
        if size is None or size < 0:
            size = max(self.handle.inode.size - self.handle.pos, 0)
        start = self.handle.pos
        got = self.fs.pump.run(self.handle.read(size), name=f"{self.fs.tenant}-read")
        return self._bytes_range(start, start + got)

    def write(self, data) -> int:
        """Write *data* (bytes or str) at the cursor; returns the count."""
        if isinstance(data, str):
            data = data.encode()
        if not data:
            return 0
        handle = self.handle
        offset = handle.inode.size if handle.flags.append else handle.pos
        n = self.fs.pump.run(
            handle.write(len(data)), name=f"{self.fs.tenant}-write"
        )
        blob = self._blob()
        if len(blob) < offset:
            blob.extend(b"\x00" * (offset - len(blob)))
        blob[offset:offset + n] = data[:n]
        return n

    def seek(self, offset: int, whence: int = 0) -> int:
        return self.handle.seek(offset, whence)

    def tell(self) -> int:
        return self.handle.tell()

    def flush(self) -> None:
        """Force written data durable (fsync: journal commit and all)."""
        if self.handle.flags.writable and not self.handle.closed:
            self.fs.pump.run(self.handle.fsync(), name=f"{self.fs.tenant}-fsync")

    def truncate(self, size: int) -> None:
        self.fs.pump.run(self.handle.truncate(size))
        blob = self.fs._blobs.get(self.handle.inode.id)
        if blob is not None and len(blob) > size:
            del blob[size:]

    def close(self) -> None:
        if self.handle.closed:
            return
        self.flush()
        self.fs.pump.run(self.handle.close(), name=f"{self.fs.tenant}-close")

    # -- trivia ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.handle.closed

    def readable(self) -> bool:
        return self.handle.flags.readable

    def writable(self) -> bool:
        return self.handle.flags.writable

    def seekable(self) -> bool:
        return True

    def __enter__(self) -> "ReproFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ReproFile {self.handle.inode.path!r} mode={self.mode!r}>"


class ReproFileSystem:
    """An fsspec-shaped filesystem over one simulated stack.

    Each instance is one schedulable tenant: it owns a task, and every
    byte it moves carries its cause set, so split schedulers can limit
    it (``machine.scheduler.set_limit(fs.task, rate)``) and the obs bus
    can bill it.  Multiple instances may share one ``machine`` — that
    is exactly how multi-tenant contention experiments are built.

    Built standalone (no fsspec required); :func:`register` exposes it
    through fsspec's registry when fsspec is available.
    """

    protocol = PROTOCOL
    sep = "/"

    def __init__(
        self,
        machine=None,
        tenant: str = "reprofs",
        config=None,
        **stack_kwargs,
    ):
        if machine is None:
            from repro.config import StackConfig
            from repro.experiments.common import build_stack

            if config is None:
                config = StackConfig(**stack_kwargs)
            elif stack_kwargs:
                config = config.replace(**stack_kwargs)
            _, machine = build_stack(config)
        self.os = machine
        self.env = machine.env
        self.tenant = tenant
        self.pump = _pump_of(machine)
        self._blobs = _blobs_of(machine)
        self.task = machine.spawn(tenant)
        #: Stamped on every handle this tenant opens.
        self.causes = CauseSet((self.task.pid,))

    # -- open/close -----------------------------------------------------------

    def open(self, path: str, mode: str = "rb", readahead: int = 0) -> ReproFile:
        """Open *path*; returns a synchronous file-like object."""
        handle = self.pump.run(
            self.os.open(
                self.task, strip_protocol(path), mode=mode,
                causes=self.causes, readahead=readahead,
            ),
            name=f"{self.tenant}-open",
        )
        return ReproFile(self, handle)

    def open_handle(self, path: str, mode: str = "r+") -> OpenFile:
        """Open *path* as a raw generator-API handle (for in-sim
        workload processes run alongside synchronous tenants)."""
        return self.pump.run(
            self.os.open(
                self.task, strip_protocol(path), mode=mode, causes=self.causes
            ),
            name=f"{self.tenant}-open",
        )

    def process(self, gen, name: Optional[str] = None):
        """Spawn *gen* as a background simulation process (it advances
        while synchronous calls pump the clock)."""
        return self.env.process(gen, name=name or f"{self.tenant}-proc")

    def touch(self, path: str) -> None:
        self.open(path, mode="ab").close()

    # -- namespace ------------------------------------------------------------

    def mkdir(self, path: str, create_parents: bool = False) -> None:
        self.pump.run(
            self.os.mkdir(self.task, strip_protocol(path), parents=create_parents),
            name=f"{self.tenant}-mkdir",
        )

    def makedirs(self, path: str, exist_ok: bool = False) -> None:
        norm = strip_protocol(path)
        if self.os.vfs.exists(norm):
            if not exist_ok:
                raise FileExistsError(path)
            if not self.os.vfs.isdir(norm):
                raise NotADirectoryError(path)
            return
        self.mkdir(norm, create_parents=True)

    def ls(self, path: str, detail: bool = False) -> List:
        return self.pump.run(
            self.os.ls(self.task, strip_protocol(path), detail=detail),
            name=f"{self.tenant}-ls",
        )

    def info(self, path: str) -> Dict:
        return self.pump.run(
            self.os.stat(self.task, strip_protocol(path)),
            name=f"{self.tenant}-stat",
        )

    def exists(self, path: str) -> bool:
        return self.os.vfs.exists(strip_protocol(path))

    def isfile(self, path: str) -> bool:
        return self.os.vfs.isfile(strip_protocol(path))

    def isdir(self, path: str) -> bool:
        return self.os.vfs.isdir(strip_protocol(path))

    def size(self, path: str) -> int:
        return self.info(path)["size"]

    def mv(self, old: str, new: str) -> None:
        """Rename a file or directory (subtrees move whole)."""
        self.pump.run(
            self.os.rename(self.task, strip_protocol(old), strip_protocol(new)),
            name=f"{self.tenant}-rename",
        )

    def rm_file(self, path: str) -> None:
        self.pump.run(
            self.os.unlink(self.task, strip_protocol(path)),
            name=f"{self.tenant}-unlink",
        )

    def rmdir(self, path: str) -> None:
        self.pump.run(
            self.os.rmdir(self.task, strip_protocol(path)),
            name=f"{self.tenant}-rmdir",
        )

    def rm(self, path: str, recursive: bool = False) -> None:
        norm = strip_protocol(path)
        if not self.os.vfs.isdir(norm):
            self.rm_file(norm)
            return
        if not recursive:
            raise IsADirectoryError(path)
        # Deepest-first sweep of the subtree, then the directory itself.
        fs = self.os.fs
        prefix = norm + "/"
        victims = sorted(
            (p for p in list(fs._namespace) if p.startswith(prefix)),
            key=lambda p: p.count("/"),
            reverse=True,
        )
        for victim in victims:
            if fs.lookup(victim).is_dir:
                self.rmdir(victim)
            else:
                self.rm_file(victim)
        self.rmdir(norm)

    # -- whole-file conveniences ----------------------------------------------

    def pipe_file(self, path: str, data: bytes) -> None:
        """Create/overwrite *path* with *data*."""
        with self.open(path, mode="wb") as f:
            f.write(data)

    def cat_file(self, path: str,
                 start: Optional[int] = None, end: Optional[int] = None) -> bytes:
        """Bytes of *path* in ``[start, end)``; negatives count from
        the end, fsspec-style."""
        with self.open(path, mode="rb") as f:
            size = f.handle.inode.size
            lo = 0 if start is None else (start + size if start < 0 else start)
            hi = size if end is None else (end + size if end < 0 else end)
            lo = max(0, min(lo, size))
            hi = max(lo, min(hi, size))
            f.seek(lo)
            return f.read(hi - lo)

    def cat(self, path: str) -> bytes:
        return self.cat_file(path)

    def cat_ranges(self, paths: List[str], starts: List[int],
                   ends: List[int]) -> List[bytes]:
        if not (len(paths) == len(starts) == len(ends)):
            raise ValueError("paths, starts, ends must have equal lengths")
        return [
            self.cat_file(p, s, e) for p, s, e in zip(paths, starts, ends)
        ]

    def cp_file(self, src: str, dst: str) -> None:
        """Copy: a real read of *src* plus a real write of *dst*."""
        self.pipe_file(dst, self.cat_file(src))

    def __repr__(self) -> str:
        return (
            f"<ReproFileSystem tenant={self.tenant!r} "
            f"pid={self.task.pid} device={self.os.device.name}>"
        )


# -- optional fsspec integration ----------------------------------------------


def fsspec_class():
    """Build (lazily) the AbstractFileSystem subclass wrapping
    :class:`ReproFileSystem`.  Raises ImportError without fsspec."""
    from fsspec import AbstractFileSystem

    class FsspecReproFileSystem(AbstractFileSystem):
        """fsspec adapter: delegates to a ReproFileSystem backend."""

        protocol = PROTOCOL
        cachable = False  # every instance owns (or is handed) a live stack

        def __init__(self, backend: Optional[ReproFileSystem] = None,
                     **storage_options):
            super().__init__()
            self.backend = backend or ReproFileSystem(**storage_options)

        def _open(self, path, mode="rb", **kwargs):
            return self.backend.open(path, mode=mode)

        def ls(self, path, detail=True, **kwargs):
            return self.backend.ls(path, detail=detail)

        def info(self, path, **kwargs):
            return self.backend.info(path)

        def exists(self, path, **kwargs):
            return self.backend.exists(path)

        def mkdir(self, path, create_parents=True, **kwargs):
            self.backend.mkdir(path, create_parents=create_parents)

        def makedirs(self, path, exist_ok=False):
            self.backend.makedirs(path, exist_ok=exist_ok)

        def rm_file(self, path):
            self.backend.rm_file(path)

        def rmdir(self, path):
            self.backend.rmdir(path)

        def mv(self, path1, path2, **kwargs):
            self.backend.mv(path1, path2)

        def cp_file(self, path1, path2, **kwargs):
            self.backend.cp_file(path1, path2)

        def cat_file(self, path, start=None, end=None, **kwargs):
            return self.backend.cat_file(path, start=start, end=end)

        def pipe_file(self, path, value, **kwargs):
            self.backend.pipe_file(path, value)

        def created(self, path):  # pragma: no cover - no timestamps in sim
            raise NotImplementedError

        def modified(self, path):  # pragma: no cover
            raise NotImplementedError

    return FsspecReproFileSystem


def register(clobber: bool = True):
    """Register the adapter under ``repro://`` in fsspec's registry.

    Returns the registered class; raises ImportError without fsspec.
    """
    import fsspec

    cls = fsspec_class()
    fsspec.register_implementation(PROTOCOL, cls, clobber=clobber)
    return cls
