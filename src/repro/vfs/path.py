"""Path algebra for the VFS namespace.

The filesystem keeps a flat ``path -> Inode`` map; these helpers define
the one canonical spelling every layer agrees on: absolute, ``/``
separated, no empty or ``.`` components, no trailing slash (except the
root itself).  ``..`` is rejected — the simulator has no notion of a
working directory, so relative navigation would only invite ambiguity.
"""

from __future__ import annotations

from typing import Iterator, List

ROOT = "/"


def normalize(path: str) -> str:
    """Return the canonical spelling of *path*.

    Raises ``ValueError`` for relative paths, empty paths, and paths
    containing ``..`` components.  ``//`` runs and ``.`` components are
    collapsed; a trailing slash is dropped.
    """
    if not isinstance(path, str) or not path:
        raise ValueError(f"empty path: {path!r}")
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    parts = components(path)
    if not parts:
        return ROOT
    return "/" + "/".join(parts)


def components(path: str) -> List[str]:
    """The non-empty path components, ``.`` dropped, ``..`` rejected."""
    parts = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            raise ValueError(f"'..' not supported in paths: {path!r}")
        parts.append(part)
    return parts


def parent_of(path: str) -> str:
    """The parent directory of a normalized *path* (``/`` is its own)."""
    if path == ROOT:
        return ROOT
    return path.rsplit("/", 1)[0] or ROOT


def basename(path: str) -> str:
    """The final component of a normalized *path* (``""`` for root)."""
    if path == ROOT:
        return ""
    return path.rsplit("/", 1)[1]


def join(base: str, *parts: str) -> str:
    """Join *parts* onto *base* and normalize the result."""
    pieces = [base if base.startswith("/") else "/" + base]
    pieces.extend(parts)
    return normalize("/".join(pieces))


def ancestors(path: str) -> Iterator[str]:
    """Every proper ancestor of *path*, root first (root has none)."""
    parts = components(path)
    if not parts:
        return
    yield ROOT
    for i in range(1, len(parts)):
        yield "/" + "/".join(parts[:i])


def is_within(path: str, directory: str) -> bool:
    """True when *path* lives in (or below) *directory*."""
    if directory == ROOT:
        return True
    return path == directory or path.startswith(directory + "/")
