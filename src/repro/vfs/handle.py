"""Ref-counted open-file objects: cursor, flags, causes, read-ahead.

An :class:`OpenFile` is one *open file description* in the POSIX sense:
an inode plus a cursor plus open flags, shared by every descriptor that
``dup`` produced from the same ``open``.  It subsumes the old
``FileHandle`` (which survives as an alias) and fixes two of its traps:

- ``seek``/``pread``/``pwrite`` reject negative offsets with
  ``ValueError`` instead of silently producing nonsense;
- ``append`` (and every write on an ``a``-mode handle) advances the
  cursor to the new end of file, so a plain ``write`` issued afterwards
  continues *after* the appended bytes instead of overwriting them.

Cursor semantics, explicitly: ``read``/``write`` start at ``pos`` and
advance it by the bytes transferred; ``pread``/``pwrite`` never touch
``pos``; in append mode every write targets end-of-file regardless of
``pos`` and leaves ``pos`` at the new end.

Two optional per-handle behaviours, both off by default so legacy
callers are byte-identical to the pre-VFS stack:

- ``causes``: a :class:`~repro.core.tags.CauseSet` charged for every
  byte this handle moves (the tenant attribution hook frontends use) —
  installed as a proxy tag around each operation;
- ``readahead``: a byte count; cursor reads are widened to at least
  this size, prefetching into the page cache on the handle's own dime.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class ModeFlags(NamedTuple):
    """Decoded open-mode flags."""

    readable: bool
    writable: bool
    append: bool
    truncate: bool
    create: bool
    exclusive: bool


#: Python-style mode strings -> flags ("b" is stripped first; the
#: simulator is byte-agnostic, so text and binary modes coincide).
_MODES = {
    "r": ModeFlags(True, False, False, False, False, False),
    "r+": ModeFlags(True, True, False, False, False, False),
    "w": ModeFlags(False, True, False, True, True, False),
    "w+": ModeFlags(True, True, False, True, True, False),
    "a": ModeFlags(False, True, True, False, True, False),
    "a+": ModeFlags(True, True, True, False, True, False),
    "x": ModeFlags(False, True, False, False, True, True),
    "x+": ModeFlags(True, True, False, False, True, True),
}


def parse_mode(mode: str) -> ModeFlags:
    key = mode.replace("b", "").replace("t", "")
    try:
        return _MODES[key]
    except KeyError:
        raise ValueError(f"invalid mode: {mode!r}") from None


class OpenFile:
    """An open file description: inode + cursor + flags + attribution."""

    def __init__(
        self,
        os,
        task,
        inode,
        fd: int = -1,
        mode: str = "r+",
        causes=None,
        readahead: int = 0,
    ):
        self.os = os
        self.task = task
        self.inode = inode
        self.fd = fd
        self.mode = mode
        self.flags = parse_mode(mode)
        self.causes = causes
        self.readahead = readahead
        self.pos = 0
        #: Descriptors sharing this description (``dup`` bumps it).
        self.refs = 1
        self.closed = False

    # -- guards ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("I/O operation on closed file")

    def _check_readable(self) -> None:
        self._check_open()
        if not self.flags.readable:
            raise ValueError(f"file not open for reading (mode {self.mode!r})")

    def _check_writable(self) -> None:
        self._check_open()
        if not self.flags.writable:
            raise ValueError(f"file not open for writing (mode {self.mode!r})")

    def _tagged(self, gen):
        """Run *gen* with this handle's causes installed as a proxy tag."""
        tags = self.os.tags
        if self.causes is None or tags.is_proxy(self.task):
            return (yield from gen)
        tags.set_proxy(self.task, self.causes)
        try:
            return (yield from gen)
        finally:
            tags.clear_proxy(self.task)

    # -- cursor I/O -----------------------------------------------------------

    def read(self, nbytes: int):
        """Generator: read *nbytes* at the cursor, advancing it."""
        self._check_readable()
        if nbytes < 0:
            raise ValueError(f"negative read length: {nbytes}")
        want = nbytes
        if self.readahead:
            want = max(nbytes, self.readahead)
        n = yield from self._tagged(
            self.os.read(self.task, self.inode, self.pos, want)
        )
        got = min(n, nbytes)
        self.pos += got
        return got

    def write(self, nbytes: int):
        """Generator: write *nbytes* at the cursor, advancing it.

        In append mode the write targets end-of-file regardless of the
        cursor, and the cursor lands at the new end.
        """
        self._check_writable()
        if nbytes < 0:
            raise ValueError(f"negative write length: {nbytes}")
        offset = self.inode.size if self.flags.append else self.pos
        n = yield from self._tagged(
            self.os.write(self.task, self.inode, offset, nbytes)
        )
        self.pos = offset + n
        return n

    def append(self, nbytes: int):
        """Generator: write *nbytes* at end of file.

        Unlike the old ``FileHandle.append``, the cursor advances to
        the new end of file, so a subsequent ``write`` continues after
        the appended bytes instead of overwriting them.
        """
        self._check_writable()
        if nbytes < 0:
            raise ValueError(f"negative write length: {nbytes}")
        offset = self.inode.size
        n = yield from self._tagged(
            self.os.write(self.task, self.inode, offset, nbytes)
        )
        self.pos = offset + n
        return n

    # -- positional I/O (cursor untouched) ------------------------------------

    def pread(self, offset: int, nbytes: int, direct: bool = False):
        self._check_readable()
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative read length: {nbytes}")
        return (
            yield from self._tagged(
                self.os.read(self.task, self.inode, offset, nbytes, direct=direct)
            )
        )

    def pwrite(self, offset: int, nbytes: int, direct: bool = False):
        self._check_writable()
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        if nbytes < 0:
            raise ValueError(f"negative write length: {nbytes}")
        return (
            yield from self._tagged(
                self.os.write(self.task, self.inode, offset, nbytes, direct=direct)
            )
        )

    # -- metadata / durability -------------------------------------------------

    def fsync(self):
        self._check_open()
        return (yield from self._tagged(self.os.fsync(self.task, self.inode)))

    def truncate(self, new_size: int):
        self._check_writable()
        yield from self._tagged(self.os.truncate(self.task, self.inode, new_size))
        if self.pos > new_size:
            self.pos = new_size

    def close(self):
        """Generator: release this descriptor (see :meth:`OS.close`)."""
        return (yield from self.os.close(self))

    # -- cursor ---------------------------------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """Reposition the cursor; returns the new position.

        whence: 0 = absolute, 1 = relative, 2 = from end of file.
        Negative resulting positions raise ``ValueError``.
        """
        self._check_open()
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self.pos + offset
        elif whence == 2:
            target = self.inode.size + offset
        else:
            raise ValueError(f"invalid whence: {whence}")
        if target < 0:
            raise ValueError(f"negative seek position: {target}")
        self.pos = target
        return self.pos

    def tell(self) -> int:
        return self.pos

    @property
    def size(self) -> int:
        return self.inode.size

    @property
    def path(self) -> Optional[str]:
        return self.inode.path

    # -- cache control --------------------------------------------------------

    def drop_cache(self) -> None:
        """Evict this file's cached pages (posix_fadvise DONTNEED)."""
        self.os.cache.free_file(self.inode.id)

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"pos={self.pos}"
        return (
            f"<OpenFile fd={self.fd} {self.inode.path!r} "
            f"mode={self.mode!r} {state}>"
        )


#: Backwards-compatible name: the pre-VFS handle class.
FileHandle = OpenFile
