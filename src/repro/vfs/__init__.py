"""`repro.vfs`: the VFS layer and the `reprofs` application frontend.

The package splits the stack's top edge in two:

- :mod:`repro.vfs.vfs` — the kernel-side half: a hierarchical path
  namespace over the filesystem, per-task descriptor tables, and
  ref-counted :class:`~repro.vfs.handle.OpenFile` descriptions with
  POSIX cursor semantics, per-handle cause tags, and optional buffered
  read-ahead.  The :class:`~repro.syscall.os.OS` facade charges CPU and
  fires scheduler hooks, then delegates its bookkeeping here.

- :mod:`repro.vfs.reprofs` — the application-side half: an
  fsspec-shaped synchronous filesystem (``repro://``) that bridges
  ordinary file-API code onto the generator-driven simulation through a
  driver pump, making any file-speaking application a schedulable,
  cause-tagged tenant.
"""

from repro.vfs.handle import FileHandle, OpenFile, parse_mode
from repro.vfs.path import (
    ancestors,
    basename,
    components,
    is_within,
    join,
    normalize,
    parent_of,
)
from repro.vfs.vfs import VFS

__all__ = [
    "VFS",
    "FileHandle",
    "OpenFile",
    "ancestors",
    "basename",
    "components",
    "is_within",
    "join",
    "normalize",
    "parent_of",
    "parse_mode",
]
