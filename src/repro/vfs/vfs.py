"""The VFS layer: per-task descriptor tables over the filesystem.

This is the bookkeeping half of the syscall layer, extracted from the
``OS`` facade: path resolution, per-task file-descriptor tables with a
configurable ceiling, ref-counted open-file descriptions, and POSIX
deferred free (an unlinked inode keeps its pages and blocks until the
last live handle closes).

Everything here is *pure Python* — no simulated cost, no events on the
simulation clock.  Costed entry points stay on :class:`~repro.syscall.os.OS`
(which charges CPU and fires scheduler hooks, then delegates here), so
the refactor is invisible to existing experiments: the depth-1 golden
hash does not move.  The only observability added is the zero-cost
``VfsOpen``/``VfsClose`` bus events, published exactly when someone
subscribes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.fs.inode import Inode
from repro.obs.bus import VfsClose, VfsOpen
from repro.vfs import path as vpath
from repro.vfs.handle import OpenFile


class VFS:
    """Descriptor tables and namespace queries for one machine."""

    #: Per-task descriptor ceiling.  Deliberately generous: legacy
    #: workloads (e.g. the fig17 metadata churner) open thousands of
    #: files without ever closing them; tests shrink this to exercise
    #: EMFILE.
    DEFAULT_MAX_FDS = 32768

    def __init__(self, os, max_fds: int = DEFAULT_MAX_FDS):
        self.os = os
        self.fs = os.fs
        self.max_fds = max_fds
        #: pid -> fd -> OpenFile
        self._tables: Dict[int, Dict[int, OpenFile]] = {}
        self._next_fd: Dict[int, int] = {}
        #: inode id -> live descriptions (deferred-free refcount).
        self._live: Dict[int, int] = {}
        #: Unlinked-but-open inodes awaiting their last close.
        self._orphans: Dict[int, Inode] = {}
        self._sub_open = os.bus.listeners(VfsOpen)
        self._sub_close = os.bus.listeners(VfsClose)

    # -- namespace queries (no simulated cost) --------------------------------

    def resolve(self, path: str) -> Inode:
        """The inode at *path*; raises ``FileNotFoundError``."""
        inode = self.fs.lookup(vpath.normalize(path))
        if inode is None:
            raise FileNotFoundError(path)
        return inode

    def exists(self, path: str) -> bool:
        return self.fs.lookup(vpath.normalize(path)) is not None

    def isdir(self, path: str) -> bool:
        inode = self.fs.lookup(vpath.normalize(path))
        return inode is not None and inode.is_dir

    def isfile(self, path: str) -> bool:
        inode = self.fs.lookup(vpath.normalize(path))
        return inode is not None and not inode.is_dir

    def info(self, path: str) -> Dict:
        """fsspec-shaped metadata: ``{"name", "size", "type"}``."""
        inode = self.resolve(path)
        return self._info_of(inode)

    @staticmethod
    def _info_of(inode: Inode) -> Dict:
        return {
            "name": inode.path,
            "size": 0 if inode.is_dir else inode.size,
            "type": "directory" if inode.is_dir else "file",
        }

    def ls(self, path: str, detail: bool = False) -> List:
        """Direct children of directory *path*, sorted by name.

        Listing a file returns that file alone (fsspec convention).
        """
        norm = vpath.normalize(path)
        inode = self.resolve(norm)
        if not inode.is_dir:
            return [self._info_of(inode)] if detail else [norm]
        children = self.fs.children(norm)
        if not detail:
            return children
        return [self._info_of(self.fs.lookup(child)) for child in children]

    # -- descriptor tables ----------------------------------------------------

    def open_count(self, task) -> int:
        return len(self._tables.get(task.pid, ()))

    def handles_of(self, task) -> List[OpenFile]:
        return list(self._tables.get(task.pid, {}).values())

    def live_handles(self, inode_id: int) -> int:
        """Live open-file descriptions referencing *inode_id*."""
        return self._live.get(inode_id, 0)

    def register(self, task, inode: Inode, mode: str = "r+",
                 causes=None, readahead: int = 0) -> OpenFile:
        """Allocate a descriptor for *inode* in *task*'s table."""
        table = self._tables.setdefault(task.pid, {})
        if len(table) >= self.max_fds:
            raise OSError(
                f"EMFILE: descriptor table full for {task.name} "
                f"({self.max_fds} fds)"
            )
        fd = self._next_fd.get(task.pid, 3)  # 0-2 reserved, as tradition demands
        self._next_fd[task.pid] = fd + 1
        handle = OpenFile(
            self.os, task, inode, fd=fd, mode=mode,
            causes=causes, readahead=readahead,
        )
        table[fd] = handle
        self._live[inode.id] = self._live.get(inode.id, 0) + 1
        if self._sub_open:
            self.os.bus.publish(
                VfsOpen(self.os.env.now, task, inode.path, fd, mode)
            )
        return handle

    def dup(self, handle: OpenFile) -> int:
        """A new descriptor sharing *handle*'s open-file description."""
        if handle.closed:
            raise OSError("EBADF: dup of closed file")
        table = self._tables.setdefault(handle.task.pid, {})
        if len(table) >= self.max_fds:
            raise OSError(
                f"EMFILE: descriptor table full for {handle.task.name} "
                f"({self.max_fds} fds)"
            )
        fd = self._next_fd.get(handle.task.pid, 3)
        self._next_fd[handle.task.pid] = fd + 1
        table[fd] = handle
        handle.refs += 1
        self._live[handle.inode.id] = self._live.get(handle.inode.id, 0) + 1
        return fd

    def release(self, handle: OpenFile, fd: Optional[int] = None) -> bool:
        """Drop one descriptor of *handle*; closing twice is ``EBADF``.

        Returns True when this was the last reference to an unlinked
        inode and its resources (pages, blocks) were freed — the POSIX
        deferred-free path.
        """
        if handle.closed:
            raise OSError("EBADF: file already closed")
        table = self._tables.get(handle.task.pid, {})
        target = fd if fd is not None else handle.fd
        if table.get(target) is not handle:
            raise OSError(f"EBADF: fd {target} not open")
        del table[target]
        handle.refs -= 1
        if handle.refs <= 0:
            handle.closed = True
        inode = handle.inode
        remaining = self._live.get(inode.id, 0) - 1
        released = False
        if remaining <= 0:
            self._live.pop(inode.id, None)
            orphan = self._orphans.pop(inode.id, None)
            if orphan is not None:
                self.fs.release_inode(orphan)
                released = True
        else:
            self._live[inode.id] = remaining
        if self._sub_close:
            self.os.bus.publish(
                VfsClose(self.os.env.now, handle.task, target, inode.id, released)
            )
        return released

    # -- namespace mutation ---------------------------------------------------

    def unlink(self, task, path: str) -> None:
        """Remove *path* from the namespace.

        The name disappears immediately; with live handles the inode's
        pages and disk blocks survive until the last close (POSIX
        deferred free), so readers holding the file open keep working.
        """
        norm = vpath.normalize(path)
        inode = self.fs.lookup(norm)
        if inode is not None and inode.is_dir:
            if self.fs.children(norm):
                raise OSError(f"ENOTEMPTY: directory not empty: {path}")
            raise IsADirectoryError(path)
        live = inode is not None and self.live_handles(inode.id) > 0
        removed = self.fs.unlink(task, norm, release=not live)
        if live:
            self._orphans[removed.id] = removed

    def rmdir(self, task, path: str) -> None:
        """Remove an *empty* directory from the namespace."""
        norm = vpath.normalize(path)
        if norm == vpath.ROOT:
            raise OSError("EBUSY: cannot remove the root directory")
        inode = self.resolve(norm)
        if not inode.is_dir:
            raise NotADirectoryError(path)
        if self.fs.children(norm):
            raise OSError(f"ENOTEMPTY: directory not empty: {path}")
        self.fs.unlink(task, norm)

    def rename(self, task, old: str, new: str) -> Inode:
        """Move *old* to *new* (directories carry their subtree)."""
        return self.fs.rename(task, vpath.normalize(old), vpath.normalize(new))

    def missing_parents(self, path: str) -> List[str]:
        """Ancestor directories of *path* that do not exist yet, topmost
        first — the ``mkdir -p`` work list."""
        missing = []
        for ancestor in vpath.ancestors(vpath.normalize(path)):
            inode = self.fs.lookup(ancestor)
            if inode is None:
                missing.append(ancestor)
            elif not inode.is_dir:
                raise NotADirectoryError(ancestor)
        return missing
