"""Measurement helpers: throughput, latency percentiles, time series,
block-level tracing, and device utilization sampling."""

from repro.metrics.recorders import (
    LatencyRecorder,
    ThroughputTracker,
    TimeSeries,
    deviation_from_ideal,
    fault_summary,
    percentile,
)
from repro.metrics.trace import BlockTracer, IOStat, TraceRecord

__all__ = [
    "BlockTracer",
    "IOStat",
    "LatencyRecorder",
    "ThroughputTracker",
    "TimeSeries",
    "TraceRecord",
    "deviation_from_ideal",
    "fault_summary",
    "percentile",
]
