"""Block-level tracing and device-utilization sampling.

`BlockTracer` records every completed request (a blktrace analogue);
`IOStat` samples device utilization over fixed intervals (an iostat
analogue).  Both are cheap enough to leave attached during experiments
and are used by tests to assert *why* a scheduler behaved as it did,
not just the resulting throughput.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional

from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.queue import BlockQueue
    from repro.block.request import BlockRequest


class TraceRecord(NamedTuple):
    """One completed block request."""

    time: float
    op: str
    block: int
    nblocks: int
    latency: float
    queue_wait: float
    submitter: str
    causes: frozenset
    sync: bool
    metadata: bool
    #: "ok" or "failed" — appended with a default so existing
    #: positional consumers keep working.
    status: str = "ok"


class BlockTracer:
    """Records completed requests from one block queue."""

    def __init__(self, queue: "BlockQueue", capacity: Optional[int] = None):
        self.queue = queue
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped = 0
        queue.completion_listeners.append(self._on_complete)

    def _on_complete(self, request: "BlockRequest") -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            TraceRecord(
                time=request.complete_time,
                op=request.op,
                block=request.block,
                nblocks=request.nblocks,
                latency=request.complete_time - request.submit_time,
                queue_wait=request.dispatch_time - request.submit_time,
                submitter=request.submitter.name,
                causes=frozenset(request.causes),
                sync=request.sync,
                metadata=request.metadata,
                status=request.status,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- analyses -----------------------------------------------------------

    def sequential_fraction(self) -> float:
        """Fraction of requests contiguous with their predecessor."""
        if len(self.records) < 2:
            return 1.0
        sequential = 0
        for prev, cur in zip(self.records, self.records[1:]):
            if cur.block == prev.block + prev.nblocks:
                sequential += 1
        return sequential / (len(self.records) - 1)

    def bytes_by_cause(self) -> Dict[int, float]:
        """Completed bytes attributed to each pid (split evenly)."""
        totals: Dict[int, float] = {}
        for record in self.records:
            if not record.causes:
                continue
            share = record.nblocks * PAGE_SIZE / len(record.causes)
            for pid in record.causes:
                totals[pid] = totals.get(pid, 0.0) + share
        return totals

    def bytes_by_submitter(self) -> Dict[str, int]:
        """Completed bytes by the *submitting* task (the block view)."""
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.submitter] = (
                totals.get(record.submitter, 0) + record.nblocks * PAGE_SIZE
            )
        return totals

    def mean_latency(self, op: Optional[str] = None) -> float:
        latencies = [r.latency for r in self.records if op is None or r.op == op]
        if not latencies:
            raise ValueError("no matching records")
        return sum(latencies) / len(latencies)

    def amplification(self, payload_bytes: int) -> float:
        """Total device bytes relative to an application payload."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        total = sum(r.nblocks * PAGE_SIZE for r in self.records)
        return total / payload_bytes


class IOStat:
    """Samples device busy fraction over fixed windows."""

    def __init__(self, queue: "BlockQueue", interval: float = 1.0):
        self.queue = queue
        self.interval = interval
        self.times: List[float] = []
        self.utilization: List[float] = []
        self._last_busy = queue.device.stats.busy_time
        queue.env.process(self._sampler(), name="iostat")

    def _sampler(self):
        env = self.queue.env
        while True:
            yield env.timeout(self.interval)
            busy = self.queue.device.stats.busy_time
            self.times.append(env.now)
            self.utilization.append(
                min(1.0, (busy - self._last_busy) / self.interval)
            )
            self._last_busy = busy

    def mean_utilization(self, since: float = 0.0) -> float:
        values = [u for t, u in zip(self.times, self.utilization) if t >= since]
        if not values:
            return 0.0
        return sum(values) / len(values)
