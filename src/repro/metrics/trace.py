"""Block-level tracing and device-utilization sampling.

`BlockTracer` records every completed request (a blktrace analogue);
`IOStat` samples device utilization over fixed intervals (an iostat
analogue).  Both are cheap enough to leave attached during experiments
and are used by tests to assert *why* a scheduler behaved as it did,
not just the resulting throughput.

Both are pure subscribers on the stack's
:class:`~repro.obs.bus.StackBus` — the tracer consumes
:class:`~repro.obs.bus.BlockComplete`, iostat consumes
:class:`~repro.obs.bus.DeviceDone` — so attaching them never perturbs
the simulation, and they compose with any number of other observers
(span builders, tests, the split scheduler's own hooks).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional

from repro.obs.bus import BlockComplete, DeviceDone
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.queue import BlockQueue
    from repro.block.request import BlockRequest


class TraceRecord(NamedTuple):
    """One completed block request."""

    time: float
    op: str
    block: int
    nblocks: int
    latency: float
    queue_wait: float
    submitter: str
    causes: frozenset
    sync: bool
    metadata: bool
    #: "ok" or "failed" — appended with a default so existing
    #: positional consumers keep working.
    status: str = "ok"


class BlockTracer:
    """Records completed requests from one block queue.

    With a *capacity*, ``keep`` selects which records survive once the
    buffer fills: ``"first"`` (the default, matching the historical
    behaviour) stops recording and counts the overflow in
    :attr:`dropped`; ``"last"`` keeps a ring of the most recent
    *capacity* records — the right mode for long runs where the
    interesting requests are the latest ones.  Either way
    :attr:`dropped` counts every record that is no longer retained, and
    :func:`~repro.metrics.recorders.fault_summary` surfaces it.
    """

    def __init__(
        self,
        queue: "BlockQueue",
        capacity: Optional[int] = None,
        keep: str = "first",
    ):
        if keep not in ("first", "last"):
            raise ValueError(f"keep must be 'first' or 'last', got {keep!r}")
        if keep == "last" and capacity is None:
            raise ValueError("keep='last' requires a capacity")
        self.queue = queue
        self.capacity = capacity
        self.keep = keep
        self._ring: Optional[deque] = (
            deque(maxlen=capacity) if keep == "last" else None
        )
        self._records: List[TraceRecord] = []
        self.dropped = 0
        self._unsub = queue.bus.subscribe(
            BlockComplete, lambda event: self._on_complete(event.request)
        )
        queue.tracers.append(self)

    @property
    def records(self) -> List[TraceRecord]:
        """Retained records, oldest first (a list in either mode)."""
        if self._ring is not None:
            return list(self._ring)
        return self._records

    def close(self) -> None:
        """Stop recording (retained records stay available)."""
        self._unsub()
        if self in self.queue.tracers:
            self.queue.tracers.remove(self)

    def _on_complete(self, request: "BlockRequest") -> None:
        if self._ring is None and (
            self.capacity is not None and len(self._records) >= self.capacity
        ):
            self.dropped += 1
            return
        if self._ring is not None and len(self._ring) == self.capacity:
            self.dropped += 1  # the oldest record is about to fall out
        record = TraceRecord(
            time=request.complete_time,
            op=request.op,
            block=request.block,
            nblocks=request.nblocks,
            latency=request.complete_time - request.submit_time,
            queue_wait=request.dispatch_time - request.submit_time,
            submitter=request.submitter.name,
            causes=frozenset(request.causes),
            sync=request.sync,
            metadata=request.metadata,
            status=request.status,
        )
        if self._ring is not None:
            self._ring.append(record)
        else:
            self._records.append(record)

    def __len__(self) -> int:
        return len(self._ring) if self._ring is not None else len(self._records)

    def summary(self) -> Dict[str, object]:
        """Record retention counters for reports."""
        return {
            "records": len(self),
            "dropped": self.dropped,
            "keep": self.keep,
            "capacity": self.capacity,
        }

    # -- analyses -----------------------------------------------------------

    def sequential_fraction(self) -> float:
        """Fraction of requests contiguous with their predecessor."""
        records = self.records
        if len(records) < 2:
            return 1.0
        sequential = 0
        for prev, cur in zip(records, records[1:]):
            if cur.block == prev.block + prev.nblocks:
                sequential += 1
        return sequential / (len(records) - 1)

    def bytes_by_cause(self) -> Dict[int, float]:
        """Completed bytes attributed to each pid (split evenly)."""
        totals: Dict[int, float] = {}
        for record in self.records:
            if not record.causes:
                continue
            share = record.nblocks * PAGE_SIZE / len(record.causes)
            for pid in record.causes:
                totals[pid] = totals.get(pid, 0.0) + share
        return totals

    def bytes_by_submitter(self) -> Dict[str, int]:
        """Completed bytes by the *submitting* task (the block view)."""
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.submitter] = (
                totals.get(record.submitter, 0) + record.nblocks * PAGE_SIZE
            )
        return totals

    def mean_latency(self, op: Optional[str] = None) -> float:
        latencies = [r.latency for r in self.records if op is None or r.op == op]
        if not latencies:
            raise ValueError("no matching records")
        return sum(latencies) / len(latencies)

    def amplification(self, payload_bytes: int) -> float:
        """Total device bytes relative to an application payload."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        total = sum(r.nblocks * PAGE_SIZE for r in self.records)
        return total / payload_bytes


class IOStat:
    """Samples device busy fraction over fixed windows.

    Busy time is accumulated from :class:`~repro.obs.bus.DeviceDone`
    events for the queue's (outermost) device — the same increments the
    device's own ``stats.busy_time`` sees — so samples are identical to
    the historical polling implementation while sharing the one bus
    dispatch path.
    """

    def __init__(self, queue: "BlockQueue", interval: float = 1.0):
        self.queue = queue
        self.interval = interval
        self.times: List[float] = []
        self.utilization: List[float] = []
        self._busy = 0.0
        self._last_busy = 0.0
        device_name = queue.device.name
        def on_done(event: DeviceDone) -> None:
            if event.device == device_name:
                self._busy += event.duration
        self._unsub = queue.bus.subscribe(DeviceDone, on_done)
        queue.env.process(self._sampler(), name="iostat")

    def _sampler(self):
        env = self.queue.env
        while True:
            yield env.timeout(self.interval)
            self.times.append(env.now)
            self.utilization.append(
                min(1.0, (self._busy - self._last_busy) / self.interval)
            )
            self._last_busy = self._busy

    def mean_utilization(self, since: float = 0.0) -> float:
        values = [u for t, u in zip(self.times, self.utilization) if t >= since]
        if not values:
            return 0.0
        return sum(values) / len(values)
