"""Recorders used by experiments and applications."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def percentile(samples: Sequence[float], p: float) -> float:
    """The *p*-th percentile (0-100) by linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def deviation_from_ideal(actual: Dict, ideal: Dict) -> float:
    """Mean relative deviation (%) of actual shares from ideal shares.

    Used for the paper's "CFQ deviates from the ideal by 82%, AFQ by
    16%" style comparisons.  Both dicts map key -> share; shares are
    normalized internally.
    """
    if set(actual) != set(ideal):
        raise ValueError("actual and ideal must cover the same keys")
    total_actual = sum(actual.values())
    total_ideal = sum(ideal.values())
    if total_actual <= 0 or total_ideal <= 0:
        raise ValueError("shares must sum to a positive value")
    deviations = []
    for key, ideal_share in ideal.items():
        ideal_frac = ideal_share / total_ideal
        actual_frac = actual[key] / total_actual
        deviations.append(abs(actual_frac - ideal_frac) / ideal_frac)
    return 100.0 * sum(deviations) / len(deviations)


def fault_summary(queue) -> Dict[str, object]:
    """Per-device error/retry/timeout counters for one block queue.

    Combines the block layer's view (retries, timeouts, permanently
    failed requests) with the fault injector's, when the device wraps
    one.  Cheap to call at any point; used by the CLI to report fault
    statistics alongside experiment results.

    On a multi-slot queue (``queue_depth > 1`` over a multi-channel
    device) the top-level counters stay the queue-wide totals, and a
    ``"slots"`` list breaks them down per dispatch slot so concurrent
    retries stay attributable.  Single-slot summaries are unchanged.
    """
    device = queue.device
    summary: Dict[str, object] = {
        "device": device.name,
        "completed": queue.completed,
        "failed": queue.failed,
        "device_errors": queue.errors,
        "retries": queue.retries,
        "timeouts": queue.timeouts,
    }
    slots = getattr(queue, "slots", None)
    if slots is not None and len(slots) > 1:
        summary["queue_depth"] = queue.queue_depth
        summary["slots"] = [slot.summary() for slot in slots]
    if getattr(queue, "hedge", False):
        summary["hedging"] = {
            "issued": queue.hedges_issued,
            "wins": queue.hedge_wins,
            "losses": queue.hedge_losses,
        }
    health = getattr(queue, "health", None)
    if health is not None:
        summary["health"] = health.summary()
    injector = getattr(device, "injector", None)
    if injector is not None:
        summary["injected"] = injector.summary()
    tracers = getattr(queue, "tracers", None)
    if tracers:
        summary["trace_records"] = sum(len(tracer) for tracer in tracers)
        summary["trace_dropped"] = sum(tracer.dropped for tracer in tracers)
    return summary


class LatencyRecorder:
    """Collects (time, latency) samples for one operation stream."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, at: float, latency: float) -> None:
        self.samples.append((at, latency))

    @property
    def latencies(self) -> List[float]:
        return [latency for _, latency in self.samples]

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.latencies) / len(self.samples)

    def max(self) -> float:
        return max(self.latencies)

    def percentile(self, p: float) -> float:
        return percentile(self.latencies, p)

    def over(self, threshold: float) -> float:
        """Fraction of samples exceeding *threshold*."""
        if not self.samples:
            return 0.0
        return sum(1 for latency in self.latencies if latency > threshold) / len(self.samples)


class ThroughputTracker:
    """Counts bytes over a window to report MB/s style figures."""

    __slots__ = ("name", "bytes_total", "started_at", "ended_at")

    def __init__(self, name: str = ""):
        self.name = name
        self.bytes_total = 0
        self.started_at: Optional[float] = None
        self.ended_at: Optional[float] = None

    def start(self, at: float) -> None:
        self.started_at = at

    def add(self, nbytes: int, at: float) -> None:
        if self.started_at is None:
            self.started_at = at
        self.bytes_total += nbytes
        self.ended_at = at

    def rate(self, until: Optional[float] = None) -> float:
        """Bytes/second over the observed window."""
        if self.started_at is None:
            return 0.0
        end = until if until is not None else self.ended_at
        if end is None or end <= self.started_at:
            return 0.0
        return self.bytes_total / (end - self.started_at)


class TimeSeries:
    """Periodic samples of a quantity (e.g. throughput over time)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, at: float, value: float) -> None:
        self.times.append(at)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window_average(self, start: float, end: float) -> float:
        values = [v for t, v in zip(self.times, self.values) if start <= t < end]
        if not values:
            return 0.0
        return sum(values) / len(values)
