"""The cross-layer stack event bus and its typed event vocabulary.

Every layer of the simulated stack — syscall facade, page cache,
writeback daemon, journal, block queue, device models, fault injector —
publishes its lifecycle transitions as *typed events* on one shared
:class:`StackBus` per stack.  Consumers (split schedulers' memory
hooks, :class:`~repro.metrics.trace.BlockTracer`,
:class:`~repro.obs.span.SpanBuilder`, tests) subscribe per event type;
the bus replaces the previous ad-hoc mechanisms (the cache's
single-slot ``buffer_dirty_hook`` and the block queue's
``completion_listeners`` list) with uniform multi-subscriber dispatch.

Zero cost when disabled: publishers cache the live per-type subscriber
list (:meth:`StackBus.listeners`) and construct an event object only
when that list is non-empty, so an untraced stack pays one truthiness
check per potential event — never an allocation.  With no subscribers
the simulation is byte-identical to one with no bus at all, because
event *publication* is pure observation; nothing in the simulation
reads the bus.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Type


class SyscallEnter(NamedTuple):
    """A task entered a syscall (before the call body runs)."""

    time: float
    task: Any  # repro.proc.Task
    call: str
    info: Dict[str, Any]


class SyscallReturn(NamedTuple):
    """A syscall body completed and is returning to the caller."""

    time: float
    task: Any
    call: str
    info: Dict[str, Any]


class VfsOpen(NamedTuple):
    """A task opened (or created) a file through the VFS layer.

    Published by the descriptor-table layer, not the syscall hooks:
    handle bookkeeping is free of simulated cost, so this event exists
    for attribution (which tenant owns which fd) without perturbing
    scheduler hook sequences or fast-forward disturbance counters.
    """

    time: float
    task: Any
    path: str
    fd: int
    mode: str


class VfsClose(NamedTuple):
    """A task closed a VFS file descriptor.

    ``released`` is True when this close dropped the last live handle
    of an already-unlinked inode and its resources were freed (the
    POSIX deferred-free path).
    """

    time: float
    task: Any
    fd: int
    inode_id: int
    released: bool


class PageDirtied(NamedTuple):
    """A page-cache buffer was dirtied (or a dirty buffer re-modified).

    ``old_causes`` is the cause set the page carried before this write
    (empty on a clean->dirty transition) — the information the paper's
    memory-level ``buffer-dirty`` hook exposes.
    """

    time: float
    page: Any  # repro.cache.page.Page
    old_causes: Any  # repro.core.tags.CauseSet


class PageCleaned(NamedTuple):
    """Writeback for a dirty page completed and it stayed clean."""

    time: float
    page: Any


class PageFreed(NamedTuple):
    """A dirty page was deleted before writeback (its work vanished)."""

    time: float
    page: Any


class WritebackBatch(NamedTuple):
    """The writeback daemon handed one batch of dirty pages to the fs."""

    time: float
    npages: int
    reason: str  # "background", "expired", ...


class JournalTxnOpen(NamedTuple):
    """A new running transaction opened."""

    time: float
    tid: int


class JournalTxnCommit(NamedTuple):
    """A transaction finished committing (or aborted mid-commit)."""

    time: float
    tid: int
    start: float  # commit_start
    causes: Any  # CauseSet of the joiners the commit served
    nblocks: int  # journal blocks the commit wrote
    ordered_inodes: int  # inodes whose ordered data was entangled
    aborted: bool


class JournalCheckpoint(NamedTuple):
    """Committed metadata of one transaction was checkpointed in place."""

    time: float
    tid: int
    nblocks: int


class BlockAdd(NamedTuple):
    """A block request entered the block layer (elevator add)."""

    time: float
    request: Any  # repro.block.request.BlockRequest


class BlockDispatch(NamedTuple):
    """A dispatch slot pulled a request from the elevator to serve it.

    ``slot`` is the hardware-queue slot (tag) serving the request; it is
    None on a single-slot (depth-1) queue so depth-1 span exports stay
    byte-identical to the classic serial engine's.
    """

    time: float
    request: Any
    slot: Optional[int] = None


class BlockComplete(NamedTuple):
    """A block request completed (check ``request.failed`` for EIO)."""

    time: float
    request: Any


class DeviceStart(NamedTuple):
    """The device began one service attempt for a request."""

    time: float
    device: str
    op: str
    block: int
    nblocks: int
    attempt: int


class DeviceDone(NamedTuple):
    """A device accounted one successfully served operation."""

    time: float
    device: str
    op: str
    nblocks: int
    duration: float


class FaultInjected(NamedTuple):
    """The fault injector perturbed one device operation."""

    time: float
    stream: str
    kind: str  # "error", "stall", "slow"
    op: str


class HealthTransition(NamedTuple):
    """A device health monitor changed state (fail-slow detection).

    ``ratio`` is the measured degradation (EWMA service latency over
    the healthy baseline) at the instant of the transition.
    """

    time: float
    device: str
    old_state: str  # "healthy" / "degraded" / "failed"
    new_state: str
    ratio: float


#: Every event type the bus dispatches, in taxonomy order.
EVENT_TYPES = (
    SyscallEnter,
    SyscallReturn,
    VfsOpen,
    VfsClose,
    PageDirtied,
    PageCleaned,
    PageFreed,
    WritebackBatch,
    JournalTxnOpen,
    JournalTxnCommit,
    JournalCheckpoint,
    BlockAdd,
    BlockDispatch,
    BlockComplete,
    DeviceStart,
    DeviceDone,
    FaultInjected,
    HealthTransition,
)


class StackBus:
    """Typed multi-subscriber event bus for one simulated stack.

    Subscriber lists are mutated in place and never replaced, so
    publishers may cache :meth:`listeners` once and use its truthiness
    as the fast-path "anyone watching?" guard.  Dispatch order is
    subscription order (deterministic), and subscribing during dispatch
    takes effect from the *next* event.
    """

    __slots__ = ("_listeners", "published")

    def __init__(self):
        self._listeners: Dict[Type, List[Callable]] = {
            etype: [] for etype in EVENT_TYPES
        }
        #: Events dispatched to at least one subscriber (observability
        #: of the observability: reports surface this).
        self.published = 0

    def listeners(self, event_type: Type) -> List[Callable]:
        """The *live* subscriber list for one event type.

        The returned list object is stable for the lifetime of the bus;
        hot paths cache it and check its truthiness before building an
        event.
        """
        try:
            return self._listeners[event_type]
        except KeyError:
            raise ValueError(f"unknown event type {event_type!r}") from None

    def active(self, event_type: Type) -> bool:
        """True when *event_type* has at least one subscriber."""
        return bool(self.listeners(event_type))

    def subscribe(self, event_type: Type, fn: Callable) -> Callable[[], None]:
        """Add *fn* as a subscriber; returns an unsubscribe callable."""
        listeners = self.listeners(event_type)
        listeners.append(fn)

        def unsubscribe() -> None:
            try:
                listeners.remove(fn)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def subscribe_all(self, fn: Callable) -> Callable[[], None]:
        """Subscribe *fn* to every event type; returns one unsubscriber."""
        unsubs = [self.subscribe(etype, fn) for etype in EVENT_TYPES]

        def unsubscribe() -> None:
            for unsub in unsubs:
                unsub()

        return unsubscribe

    def publish(self, event) -> None:
        """Dispatch *event* to its type's subscribers, in order."""
        self.published += 1
        for fn in self._listeners[event.__class__]:
            fn(event)

    def __repr__(self) -> str:
        live = sum(1 for subs in self._listeners.values() if subs)
        return f"<StackBus {live} active types, {self.published} published>"
