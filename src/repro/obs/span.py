"""Per-request lifecycle spans assembled from stack bus events.

A :class:`SpanBuilder` subscribes to one stack's
:class:`~repro.obs.bus.StackBus` and correlates the typed events into
JSON-ready *span* records — the cross-layer, per-I/O attribution the
split framework gives its schedulers, now available to experiments and
operators:

- ``io`` spans: one per block request, from block-layer entry through
  dispatch to completion, with the queue-wait and device-service
  stages, the *cache residency* of the dirty pages the write carried
  (dirtied -> submitted), and the true cause set (pids + names);
- ``syscall`` spans: one per traced syscall (enter -> return);
- ``journal`` spans: one per transaction commit, with the joiner cause
  set — the entanglement stage of an fsync's latency;
- ``fault`` spans: one per injected device fault;
- ``health`` spans: one per device health-state transition (fail-slow
  detection) — emitted only when a monitor is attached, so untraced
  and monitor-free traces are unchanged.

All timestamps are simulated seconds, so spans are deterministic: the
same run produces the same spans regardless of host, wall-clock, or
worker process.  :func:`latency_breakdown` aggregates spans into the
per-stage (syscall / cache / journal / queue / device) percentile
tables the ``trace-report`` CLI prints.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.bus import (
    BlockAdd,
    BlockComplete,
    BlockDispatch,
    FaultInjected,
    HealthTransition,
    JournalTxnCommit,
    StackBus,
    SyscallEnter,
    SyscallReturn,
)

#: The five lifecycle stages a span set decomposes latency into.
STAGES = ("syscall", "cache", "journal", "queue", "device")


class SpanBuilder:
    """Correlates bus events into per-I/O lifecycle span records.

    Attach one per stack (``SpanBuilder.attach(machine)``).  Spans
    accumulate in :attr:`spans` in completion order — a deterministic
    function of the simulation — as plain JSON-ready dicts.
    """

    def __init__(self, bus: StackBus, process_table=None):
        self.bus = bus
        self.process_table = process_table
        #: Completed span records, in event order.
        self.spans: List[Dict[str, Any]] = []
        self._open_io: Dict[int, Dict[str, Any]] = {}
        self._open_syscalls: Dict[int, Dict[str, Any]] = {}
        self._unsubs = [
            bus.subscribe(SyscallEnter, self._on_syscall_enter),
            bus.subscribe(SyscallReturn, self._on_syscall_return),
            bus.subscribe(BlockAdd, self._on_block_add),
            bus.subscribe(BlockDispatch, self._on_block_dispatch),
            bus.subscribe(BlockComplete, self._on_block_complete),
            bus.subscribe(JournalTxnCommit, self._on_txn_commit),
            bus.subscribe(FaultInjected, self._on_fault),
            bus.subscribe(HealthTransition, self._on_health),
        ]

    @classmethod
    def attach(cls, machine) -> "SpanBuilder":
        """Attach a builder to an assembled OS stack."""
        return cls(machine.bus, process_table=machine.process_table)

    def close(self) -> None:
        """Unsubscribe from the bus (spans already built are kept)."""
        for unsub in self._unsubs:
            unsub()
        self._unsubs = []

    # -- correlation --------------------------------------------------------

    def _names(self, pids: Iterable[int]) -> List[str]:
        """Resolve cause pids to task names (pid order, stable)."""
        names = []
        for pid in sorted(pids):
            task = self.process_table.get(pid) if self.process_table else None
            names.append(task.name if task is not None else f"pid{pid}")
        return names

    def _on_syscall_enter(self, event: SyscallEnter) -> None:
        info = event.info
        self._open_syscalls[event.task.pid] = {
            "kind": "syscall",
            "call": event.call,
            "task": event.task.name,
            "pid": event.task.pid,
            "start": event.time,
            "nbytes": info.get("nbytes"),
        }

    def _on_syscall_return(self, event: SyscallReturn) -> None:
        span = self._open_syscalls.pop(event.task.pid, None)
        if span is None or span["call"] != event.call:
            return  # unmatched return (builder attached mid-call)
        span["end"] = event.time
        span["duration"] = event.time - span["start"]
        span["causes"] = [event.task.pid]
        span["cause_names"] = [event.task.name]
        self.spans.append(span)

    def _on_block_add(self, event: BlockAdd) -> None:
        request = event.request
        cache_wait: Optional[float] = None
        if request.pages:
            # Cache residency: how long the oldest dirty page this
            # write carries sat in memory before heading to disk.
            ages = [
                event.time - page.dirtied_at
                for page in request.pages
                if page.dirtied_at is not None
            ]
            if ages:
                cache_wait = max(ages)
        self._open_io[request.id] = {
            "kind": "io",
            "id": request.id,
            "op": request.op,
            "block": request.block,
            "nblocks": request.nblocks,
            "bytes": request.nbytes,
            "submitter": request.submitter.name,
            "submitter_pid": request.submitter.pid,
            "sync": request.sync,
            "metadata": request.metadata,
            "submit": event.time,
            "cache_wait": cache_wait,
        }

    def _on_block_dispatch(self, event: BlockDispatch) -> None:
        span = self._open_io.get(event.request.id)
        if span is not None:
            span["dispatch"] = event.time
            # Only multi-slot queues tag spans with their slot, keeping
            # depth-1 exports byte-identical to the serial engine's.
            if event.slot is not None:
                span["slot"] = event.slot

    def _on_block_complete(self, event: BlockComplete) -> None:
        request = event.request
        span = self._open_io.pop(request.id, None)
        if span is None:
            return  # submitted before the builder attached
        dispatch = span.get("dispatch", event.time)
        pids = sorted(request.causes)
        span.update(
            complete=event.time,
            queue_wait=dispatch - span["submit"],
            device_time=event.time - dispatch,
            status=request.status,
            attempts=request.attempts,
            causes=pids,
            cause_names=self._names(pids),
        )
        self.spans.append(span)

    def _on_txn_commit(self, event: JournalTxnCommit) -> None:
        pids = sorted(event.causes)
        self.spans.append(
            {
                "kind": "journal",
                "tid": event.tid,
                "start": event.start,
                "end": event.time,
                "duration": event.time - event.start,
                "nblocks": event.nblocks,
                "ordered_inodes": event.ordered_inodes,
                "aborted": event.aborted,
                "causes": pids,
                "cause_names": self._names(pids),
            }
        )

    def _on_fault(self, event: FaultInjected) -> None:
        self.spans.append(
            {
                "kind": "fault",
                "time": event.time,
                "stream": event.stream,
                "fault": event.kind,
                "op": event.op,
            }
        )

    def _on_health(self, event: HealthTransition) -> None:
        self.spans.append(
            {
                "kind": "health",
                "time": event.time,
                "device": event.device,
                "from": event.old_state,
                "to": event.new_state,
                "ratio": event.ratio,
            }
        )


# -- aggregation -------------------------------------------------------------


def _stage_samples(spans: Iterable[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Extract per-stage latency samples from a span list."""
    samples: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    for span in spans:
        kind = span.get("kind")
        if kind == "syscall":
            samples["syscall"].append(span["duration"])
        elif kind == "journal":
            samples["journal"].append(span["duration"])
        elif kind == "io":
            if span.get("cache_wait") is not None:
                samples["cache"].append(span["cache_wait"])
            samples["queue"].append(span["queue_wait"])
            samples["device"].append(span["device_time"])
    return samples


def _summarize(values: List[float]) -> Dict[str, float]:
    from repro.metrics.recorders import percentile

    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }


def bytes_by_cause(spans: Iterable[Dict[str, Any]]) -> Dict[str, float]:
    """Completed I/O bytes attributed to each cause task, split evenly.

    This is the spans' answer to "who caused this I/O?" — delegated
    writes (writeback, journal commits) land on the tasks served, not
    on the kernel proxy that submitted them.
    """
    totals: Dict[str, float] = {}
    for span in spans:
        if span.get("kind") != "io" or span.get("status") != "ok":
            continue
        names = span.get("cause_names") or [str(p) for p in span.get("causes", [])]
        if not names:
            continue
        share = span["bytes"] / len(names)
        for name in names:
            totals[name] = totals.get(name, 0.0) + share
    return totals


def latency_breakdown(
    spans: Iterable[Dict[str, Any]],
    group_by: Optional[str] = None,
) -> Dict[str, Any]:
    """Aggregate spans into per-stage latency statistics.

    Returns ``{"stages": {stage: {count, mean, p50, p95, p99}},
    "by_cause": {task: bytes}, "span_counts": {kind: n}}``.  With
    ``group_by="cause"`` the stages are additionally broken down per
    cause task under ``"groups"`` — the per-task/per-scheduler view the
    issue's aggregator calls for.
    """
    spans = list(spans)
    result: Dict[str, Any] = {
        "stages": {
            stage: _summarize(values)
            for stage, values in _stage_samples(spans).items()
        },
        "by_cause": bytes_by_cause(spans),
        "span_counts": _count_kinds(spans),
    }
    if group_by == "cause":
        groups: Dict[str, List[Dict[str, Any]]] = {}
        for span in spans:
            for name in span.get("cause_names", []) or ["(untagged)"]:
                groups.setdefault(name, []).append(span)
        result["groups"] = {
            name: {
                stage: _summarize(values)
                for stage, values in _stage_samples(group).items()
            }
            for name, group in sorted(groups.items())
        }
    elif group_by is not None:
        raise ValueError(f"unsupported group_by {group_by!r}")
    return result


def _count_kinds(spans: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for span in spans:
        kind = span.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts
