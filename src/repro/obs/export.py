"""Span JSONL export, schema validation, and the trace-report text.

Spans are written one JSON object per line (``<experiment>.spans.jsonl``)
so long traces stream without holding the file in memory and external
tools (jq, pandas) can consume them directly.  :func:`load_spans`
validates every row against :data:`SPAN_SCHEMA` — the contract the CI
``trace-smoke`` step enforces — and :func:`format_report` renders the
per-stage latency breakdown with cause-set attribution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.span import STAGES, latency_breakdown

#: Required fields (name -> allowed types) per span kind.  ``None`` in
#: the tuple marks a field that may be null (JSON ``null``).
SPAN_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "io": {
        "id": (int,),
        "op": (str,),
        "block": (int,),
        "nblocks": (int,),
        "bytes": (int,),
        "submitter": (str,),
        "submit": (int, float),
        "complete": (int, float),
        "queue_wait": (int, float),
        "device_time": (int, float),
        "cache_wait": (int, float, type(None)),
        "status": (str,),
        "causes": (list,),
        "cause_names": (list,),
    },
    "syscall": {
        "call": (str,),
        "task": (str,),
        "pid": (int,),
        "start": (int, float),
        "end": (int, float),
        "duration": (int, float),
    },
    "journal": {
        "tid": (int,),
        "start": (int, float),
        "end": (int, float),
        "duration": (int, float),
        "nblocks": (int,),
        "causes": (list,),
        "aborted": (bool,),
    },
    "fault": {
        "time": (int, float),
        "stream": (str,),
        "fault": (str,),
        "op": (str,),
    },
    "health": {
        "time": (int, float),
        "device": (str,),
        "from": (str,),
        "to": (str,),
        "ratio": (int, float),
    },
}


class SpanSchemaError(ValueError):
    """A span row violated :data:`SPAN_SCHEMA`."""


def validate_span(row: Dict[str, Any]) -> None:
    """Raise :class:`SpanSchemaError` if *row* violates the schema."""
    if not isinstance(row, dict):
        raise SpanSchemaError(f"span must be an object, got {type(row).__name__}")
    kind = row.get("kind")
    schema = SPAN_SCHEMA.get(kind)
    if schema is None:
        raise SpanSchemaError(
            f"unknown span kind {kind!r}; expected one of {sorted(SPAN_SCHEMA)}"
        )
    for field, types in schema.items():
        if field not in row:
            raise SpanSchemaError(f"{kind} span missing field {field!r}")
        value = row[field]
        # bool is an int subclass; reject it where int was meant.
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            raise SpanSchemaError(
                f"{kind} span field {field!r} has type "
                f"{type(value).__name__}, expected {[t.__name__ for t in types]}"
            )


def write_spans(path, spans: Iterable[Dict[str, Any]]) -> int:
    """Write spans as JSONL to *path*; returns the row count.

    Keys are sorted and floats serialized by ``json.dumps`` defaults,
    so identical span lists produce byte-identical files — the property
    the serial-vs-parallel determinism tests pin.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps(span, sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_spans(path, validate: bool = True) -> List[Dict[str, Any]]:
    """Read a span JSONL file, validating each row by default."""
    spans = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SpanSchemaError(f"{path}:{lineno}: not JSON: {exc}") from None
            if validate:
                try:
                    validate_span(row)
                except SpanSchemaError as exc:
                    raise SpanSchemaError(f"{path}:{lineno}: {exc}") from None
            spans.append(row)
    return spans


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _stage_table(stages: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for stage in STAGES:
        stats = stages[stage]
        rows.append(
            (
                stage,
                str(stats["count"]),
                _fmt_seconds(stats["mean"]),
                _fmt_seconds(stats["p50"]),
                _fmt_seconds(stats["p95"]),
                _fmt_seconds(stats["p99"]),
            )
        )
    return _table(("stage", "count", "mean", "p50", "p95", "p99"), rows)


def format_report(
    spans: List[Dict[str, Any]], title: str = "", by_cause: bool = False
) -> str:
    """Render the per-stage latency breakdown and cause attribution.

    With ``by_cause=True`` each cause task additionally gets its own
    per-stage table (the aggregator's ``group_by="cause"`` view).
    """
    breakdown = latency_breakdown(spans, group_by="cause" if by_cause else None)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(f"{len(spans)} spans " + json.dumps(breakdown["span_counts"], sort_keys=True))

    lines.append(_stage_table(breakdown["stages"]))

    by_cause = breakdown["by_cause"]
    if by_cause:
        total = sum(by_cause.values())
        cause_rows = [
            (name, f"{nbytes / (1 << 20):.2f} MiB", f"{100 * nbytes / total:.1f}%")
            for name, nbytes in sorted(
                by_cause.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        lines.append("")
        lines.append("cause-set attribution (completed bytes, split evenly):")
        lines.append(_table(("cause", "bytes", "share"), cause_rows))

    if by_cause:
        for name, stages in breakdown.get("groups", {}).items():
            lines.append("")
            lines.append(f"-- {name} --")
            lines.append(_stage_table(stages))

    faults = sum(1 for span in spans if span.get("kind") == "fault")
    if faults:
        lines.append("")
        lines.append(f"{faults} fault events recorded")
    return "\n".join(lines)
