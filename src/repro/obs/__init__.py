"""`repro.obs`: the cross-layer instrumentation bus and lifecycle spans.

One :class:`StackBus` per simulated stack carries typed events from
every layer (syscall, cache, journal, block, device, faults); a
:class:`SpanBuilder` correlates them — via cause tags and request ids —
into per-I/O lifecycle spans, and :func:`latency_breakdown` aggregates
spans into the syscall/cache/journal/queue/device stage statistics the
``trace-report`` CLI prints.  Zero-cost when nothing subscribes.
"""

from repro.obs.bus import (
    EVENT_TYPES,
    BlockAdd,
    BlockComplete,
    BlockDispatch,
    DeviceDone,
    DeviceStart,
    FaultInjected,
    HealthTransition,
    JournalCheckpoint,
    JournalTxnCommit,
    JournalTxnOpen,
    PageCleaned,
    PageDirtied,
    PageFreed,
    StackBus,
    SyscallEnter,
    SyscallReturn,
    VfsClose,
    VfsOpen,
    WritebackBatch,
)
from repro.obs.export import (
    SpanSchemaError,
    format_report,
    load_spans,
    validate_span,
    write_spans,
)
from repro.obs.span import STAGES, SpanBuilder, bytes_by_cause, latency_breakdown

__all__ = [
    "EVENT_TYPES",
    "STAGES",
    "BlockAdd",
    "BlockComplete",
    "BlockDispatch",
    "DeviceDone",
    "DeviceStart",
    "FaultInjected",
    "HealthTransition",
    "JournalCheckpoint",
    "JournalTxnCommit",
    "JournalTxnOpen",
    "PageCleaned",
    "PageDirtied",
    "PageFreed",
    "SpanBuilder",
    "SpanSchemaError",
    "StackBus",
    "SyscallEnter",
    "SyscallReturn",
    "VfsClose",
    "VfsOpen",
    "WritebackBatch",
    "bytes_by_cause",
    "format_report",
    "latency_breakdown",
    "load_spans",
    "validate_span",
    "write_spans",
]
