"""Abstract device interface and statistics."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.bus import DeviceDone, StackBus
from repro.units import PAGE_SIZE


class DeviceError(Exception):
    """A device-level failure.

    Raised for malformed requests (bad bounds) and by fault-injecting
    device models for media errors.  ``retryable`` tells the block
    layer whether a retry could succeed (a media error might clear; a
    bounds violation never will), and ``latency`` is the time the
    failed attempt occupied the device before the error was reported.
    """

    retryable = False

    def __init__(self, message: str, latency: float = 0.0):
        super().__init__(message)
        self.latency = latency


class DeviceStats:
    """Aggregate counters maintained by every device model."""

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0
        self.seeks = 0

    @property
    def total_requests(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def __repr__(self) -> str:
        return (
            f"DeviceStats(reads={self.reads}, writes={self.writes}, "
            f"busy={self.busy_time:.3f}s)"
        )


class Device:
    """A block device addressed in 4 KiB blocks.

    Subclasses implement :meth:`service_time`; the block-layer dispatch
    engine calls it once per request, in dispatch order, so the model
    may keep head-position state between calls.

    ``channels`` is the device's internal parallelism — how many
    requests it can service concurrently (flash channels on an SSD; 1
    for a single-actuator disk).  The multi-queue dispatch engine caps
    its effective slot count at this value, so a mechanical disk
    serializes regardless of the configured queue depth.
    """

    def __init__(self, capacity_blocks: int, name: str = "disk", channels: int = 1):
        if capacity_blocks <= 0:
            raise ValueError("capacity must be positive")
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        self.capacity_blocks = capacity_blocks
        self.name = name
        self.channels = channels
        #: Requests currently in service (maintained by the dispatch
        #: engine via :meth:`begin_service`/:meth:`end_service`).
        self.active = 0
        #: Channel (dispatch slot) of the attempt being priced — a hint
        #: stored by the block queue just before :meth:`service_time`,
        #: consumed by channel-aware fault models.  None outside a call.
        self.serving_channel: Optional[int] = None
        self.stats = DeviceStats()
        self._last_block_end: Optional[int] = None
        # Stack bus plumbing (set by attach_bus when the block queue
        # adopts this device); until then events are silently skipped.
        self._bus: Optional[StackBus] = None
        self._bus_clock = None
        self._sub_done: list = []

    def attach_bus(self, bus: StackBus, clock) -> None:
        """Adopt the stack bus; *clock* supplies ``.now`` timestamps.

        Composite devices override this to forward to their members so
        every physical device in the stack reports on the same bus.
        """
        self._bus = bus
        self._bus_clock = clock
        self._sub_done = bus.listeners(DeviceDone)

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * PAGE_SIZE

    def is_sequential(self, block: int) -> bool:
        """Does *block* directly follow the previous request?"""
        return self._last_block_end is not None and block == self._last_block_end

    def begin_service(self) -> None:
        """A dispatch slot starts occupying the device with a request.

        Called by the block queue immediately before :meth:`service_time`
        (so the call sees itself counted in :attr:`active`); wrappers
        forward to their inner device so contention is visible to the
        model that computes durations.
        """
        self.active += 1

    def end_service(self) -> None:
        """The request's busy period on the device ended."""
        self.active -= 1

    #: Whether :meth:`service_time` may raise for a well-formed request
    #: (fault-injecting wrappers).  The block queue's batch-pricing pass
    #: only prices devices whose pricing cannot fail, because a batch
    #: has no per-element retry path.
    pricing_can_fail = False

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        """Seconds to serve the request; also advances device state."""
        raise NotImplementedError

    def service_time_batch(
        self,
        ops: Sequence[str],
        blocks: Sequence[int],
        nblocks: Sequence[int],
    ) -> List[float]:
        """Price a batch of requests in one call.

        Element-wise identical to calling :meth:`service_time` in a
        loop — head-position and accounting state advance between
        elements exactly as they would under per-request pricing, and
        the channel-contention state (:attr:`active`) is whatever it is
        at call time for every element, just as a pricing loop that
        does not interleave ``begin_service`` would see.  Subclasses
        override this with hoisted per-op cost tables so multi-slot
        dispatch and fast-forward replay stop paying one full method
        dispatch (attribute walks included) per request.
        """
        service_time = self.service_time
        return [
            service_time(op, block, n)
            for op, block, n in zip(ops, blocks, nblocks)
        ]

    def _account(self, op: str, nblocks: int, duration: float) -> None:
        nbytes = nblocks * PAGE_SIZE
        if op == "read":
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        elif op == "write":
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        else:
            raise ValueError(f"unknown op {op!r}")
        self.stats.busy_time += duration
        if self._sub_done:
            self._bus.publish(
                DeviceDone(self._bus_clock.now, self.name, op, nblocks, duration)
            )

    def _check_bounds(self, block: int, nblocks: int) -> None:
        """Reject malformed requests.

        Must be called before *any* accounting or head-position state is
        touched, so a rejected request leaves the device model exactly as
        it was (callers may catch :class:`DeviceError` and continue).
        """
        if nblocks <= 0:
            raise DeviceError(f"request of {nblocks} blocks")
        if block < 0 or block + nblocks > self.capacity_blocks:
            raise DeviceError(
                f"request [{block}, {block + nblocks}) outside device "
                f"of {self.capacity_blocks} blocks"
            )
