"""Hard-disk model: seek + rotational latency + transfer.

Parameters default to a 7200 RPM, ~500 GB desktop drive (the paper's
WD AAKX class).  The model is deterministic: seek time scales with the
square root of seek distance (a standard first-order approximation, cf.
Ruemmler & Wilkes), rotational delay is the expected half revolution,
and transfer proceeds at a constant areal rate.

What matters for the experiments is the *ratio* between sequential and
random throughput (~100 MB/s vs ~1 MB/s for 4 KB randoms), which this
model reproduces.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.units import MB, PAGE_SIZE


class HDD(Device):
    """Mechanical disk with head-position state."""

    def __init__(
        self,
        capacity_blocks: int = 128 * 1024 * 1024,  # 512 GB of 4 KB blocks
        name: str = "hdd",
        max_seek_time: float = 0.014,
        avg_seek_time: float = 0.0088,
        rpm: int = 7200,
        transfer_rate: float = 110 * MB,
        settle_time: float = 0.0005,
    ):
        super().__init__(capacity_blocks, name=name)
        self.max_seek_time = max_seek_time
        self.avg_seek_time = avg_seek_time
        self.rotation_time = 60.0 / rpm
        self.transfer_rate = transfer_rate
        self.settle_time = settle_time

    def seek_time(self, from_block: int, to_block: int) -> float:
        """Expected seek time between two blocks (0 if adjacent)."""
        distance = abs(to_block - from_block)
        if distance == 0:
            return 0.0
        # Square-root seek curve pinned so a full-stroke seek costs
        # max_seek_time and the settle cost dominates short seeks.
        frac = distance / self.capacity_blocks
        return self.settle_time + (self.max_seek_time - self.settle_time) * frac**0.5

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        self._check_bounds(block, nblocks)
        transfer = nblocks * PAGE_SIZE / self.transfer_rate

        if self.is_sequential(block):
            # Head already positioned: streaming transfer only.
            duration = transfer
        else:
            origin = self._last_block_end if self._last_block_end is not None else 0
            duration = self.seek_time(origin, block) + self.rotation_time / 2 + transfer
            self.stats.seeks += 1

        self._last_block_end = block + nblocks
        self._account(op, nblocks, duration)
        return duration

    def service_time_batch(self, ops, blocks, nblocks):
        """Batch pricing with the per-call cost table hoisted.

        The per-op constants :meth:`service_time` re-reads from ``self``
        on every call (page size over transfer rate, half a rotation)
        are fetched once per batch; the arithmetic keeps the exact
        expression shapes of the scalar path so results stay
        bit-identical.  Head position advances per element.
        """
        page = PAGE_SIZE
        rate = self.transfer_rate
        half_rotation = self.rotation_time / 2
        seek_time = self.seek_time
        check = self._check_bounds
        account = self._account
        stats = self.stats
        last = self._last_block_end
        durations = []
        append = durations.append
        for op, block, count in zip(ops, blocks, nblocks):
            check(block, count)
            transfer = count * page / rate
            if last is not None and block == last:
                duration = transfer
            else:
                origin = last if last is not None else 0
                duration = seek_time(origin, block) + half_rotation + transfer
                stats.seeks += 1
            last = block + count
            self._last_block_end = last
            account(op, count, duration)
            append(duration)
        return durations
