"""Storage device models.

The schedulers in the paper only depend on *relative* costs — sequential
vs random, read vs write, HDD vs SSD — so the models here compute
deterministic expected service times from simple mechanical/electrical
parameters rather than replaying measured traces.
"""

from repro.devices.base import Device, DeviceError, DeviceStats
from repro.devices.hdd import HDD
from repro.devices.ssd import SSD
from repro.devices.composite import JitteryDevice, RAID0

__all__ = ["Device", "DeviceError", "DeviceStats", "HDD", "JitteryDevice", "RAID0", "SSD"]
