"""Solid-state drive model: per-op latency + bandwidth, no seeks.

Defaults approximate the paper's Intel X25-M: reads ~250 MB/s,
writes ~80 MB/s, microsecond access latency, negligible random
penalty, ten flash channels (the X25-M's 10-channel controller).

Channel model: a lone request stripes across all channels, so the
bandwidth figures above are aggregate and depth-1 behaviour matches
the classic serial model exactly.  When the dispatch engine keeps
several requests in service concurrently, each still pays its full
access latency (latencies overlap — the NCQ win) but the transfer
phases share the aggregate bandwidth, so bandwidth-bound streams do
not scale past the device's ceiling while latency-bound small I/O
does.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.units import MB, PAGE_SIZE


class SSD(Device):
    """Flash device: flat latency, read/write bandwidth asymmetry."""

    def __init__(
        self,
        capacity_blocks: int = 20 * 1024 * 1024,  # 80 GB of 4 KB blocks
        name: str = "ssd",
        read_latency: float = 50e-6,
        write_latency: float = 150e-6,
        read_bandwidth: float = 250 * MB,
        write_bandwidth: float = 80 * MB,
        channels: int = 10,
    ):
        super().__init__(capacity_blocks, name=name, channels=channels)
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        self._check_bounds(block, nblocks)
        nbytes = nblocks * PAGE_SIZE
        # Transfer phases of concurrently-served requests share the
        # aggregate bandwidth; `contenders` stays the int 1 when the
        # device is serving serially so the arithmetic below is
        # bit-identical to the classic single-slot model.
        contenders = min(self.channels, self.active) if self.active > 1 else 1
        if op == "read":
            duration = self.read_latency + nbytes * contenders / self.read_bandwidth
        else:
            duration = self.write_latency + nbytes * contenders / self.write_bandwidth
        self._last_block_end = block + nblocks
        self._account(op, nblocks, duration)
        return duration

    def service_time_batch(self, ops, blocks, nblocks):
        """Batch pricing with the per-op cost table hoisted.

        Latency and bandwidth per op are read once; ``contenders`` is
        frozen across the batch, which matches the scalar loop exactly
        because pricing never mutates :attr:`active` (only the dispatch
        engine's ``begin_service``/``end_service`` bracket does).
        """
        contenders = min(self.channels, self.active) if self.active > 1 else 1
        read_latency = self.read_latency
        read_bandwidth = self.read_bandwidth
        write_latency = self.write_latency
        write_bandwidth = self.write_bandwidth
        page = PAGE_SIZE
        check = self._check_bounds
        account = self._account
        durations = []
        append = durations.append
        for op, block, count in zip(ops, blocks, nblocks):
            check(block, count)
            nbytes = count * page
            if op == "read":
                duration = read_latency + nbytes * contenders / read_bandwidth
            else:
                duration = write_latency + nbytes * contenders / write_bandwidth
            self._last_block_end = block + count
            account(op, count, duration)
            append(duration)
        return durations
