"""Composite device models: striped arrays and fault injection.

The paper situates block scheduling in a lineage that includes
multi-disk arrays; `RAID0` lets experiments run the same stack over a
stripe set.  `JitteryDevice` wraps any model with seeded latency
spikes — useful for stress-testing deadline schedulers' estimates.
"""

from __future__ import annotations

import random
from typing import List

from repro.devices.base import Device


class RAID0(Device):
    """Striping across N member devices (no redundancy).

    A request is split into per-member runs by the stripe unit; the
    service time is the slowest member's, since members work in
    parallel.  Sequential streams still benefit: each member sees a
    (sparser but ordered) sequential sub-stream.
    """

    def __init__(self, members: List[Device], stripe_blocks: int = 16, name: str = "raid0"):
        if not members:
            raise ValueError("RAID0 needs at least one member")
        if stripe_blocks <= 0:
            raise ValueError("stripe unit must be positive")
        capacity = min(m.capacity_blocks for m in members) * len(members)
        super().__init__(capacity_blocks=capacity, name=name)
        self.members = members
        self.stripe_blocks = stripe_blocks
        #: A faulty member makes whole-array pricing fallible.
        self.pricing_can_fail = any(m.pricing_can_fail for m in members)

    def attach_bus(self, bus, clock) -> None:
        """Adopt the bus on the array and every member device."""
        super().attach_bus(bus, clock)
        for member in self.members:
            member.attach_bus(bus, clock)

    def _locate(self, block: int):
        """Map an array block to (member index, member block)."""
        stripe = block // self.stripe_blocks
        within = block % self.stripe_blocks
        member = stripe % len(self.members)
        member_stripe = stripe // len(self.members)
        return member, member_stripe * self.stripe_blocks + within

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        self._check_bounds(block, nblocks)
        # Split the request into contiguous per-member runs.
        per_member: dict = {}
        index = block
        remaining = nblocks
        while remaining > 0:
            member, member_block = self._locate(index)
            run = min(remaining, self.stripe_blocks - (index % self.stripe_blocks))
            start, length = per_member.get(member, (member_block, 0))
            if length == 0:
                per_member[member] = (member_block, run)
            else:
                per_member[member] = (start, length + run)
            index += run
            remaining -= run

        duration = max(
            self.members[m].service_time(op, start, length)
            for m, (start, length) in per_member.items()
        )
        self._last_block_end = block + nblocks
        self._account(op, nblocks, duration)
        return duration

    def service_time_batch(self, ops, blocks, nblocks):
        """Batch pricing with the stripe-walk constants hoisted.

        Members are priced per element, in element order, so their
        head-position state advances exactly as under scalar pricing.
        """
        locate = self._locate
        members = self.members
        stripe = self.stripe_blocks
        check = self._check_bounds
        account = self._account
        durations = []
        append = durations.append
        for op, block, count in zip(ops, blocks, nblocks):
            check(block, count)
            per_member: dict = {}
            index = block
            remaining = count
            while remaining > 0:
                member, member_block = locate(index)
                run = min(remaining, stripe - (index % stripe))
                start, length = per_member.get(member, (member_block, 0))
                if length == 0:
                    per_member[member] = (member_block, run)
                else:
                    per_member[member] = (start, length + run)
                index += run
                remaining -= run
            duration = max(
                members[m].service_time(op, start, length)
                for m, (start, length) in per_member.items()
            )
            self._last_block_end = block + count
            account(op, count, duration)
            append(duration)
        return durations


class JitteryDevice(Device):
    """Wraps a device, adding seeded random latency spikes.

    With probability *spike_probability* a request takes an extra
    *spike_duration* seconds (a remapped sector, a recalibration, an
    SMR cache flush...).  Deterministic per seed.
    """

    def __init__(
        self,
        inner: Device,
        spike_probability: float = 0.01,
        spike_duration: float = 0.1,
        seed: int = 0,
    ):
        if not 0 <= spike_probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        super().__init__(capacity_blocks=inner.capacity_blocks, name=f"jittery-{inner.name}")
        self.inner = inner
        self.channels = inner.channels  # transparent to multi-queue dispatch
        self.pricing_can_fail = inner.pricing_can_fail
        self.spike_probability = spike_probability
        self.spike_duration = spike_duration
        self._rng = random.Random(seed)
        self.spikes = 0

    def attach_bus(self, bus, clock) -> None:
        """Adopt the bus on the wrapper and the wrapped device."""
        super().attach_bus(bus, clock)
        self.inner.attach_bus(bus, clock)

    def begin_service(self) -> None:
        super().begin_service()
        self.inner.begin_service()

    def end_service(self) -> None:
        super().end_service()
        self.inner.end_service()

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        duration = self.inner.service_time(op, block, nblocks)
        if self._rng.random() < self.spike_probability:
            duration += self.spike_duration
            self.spikes += 1
        self._last_block_end = block + nblocks
        self._account(op, nblocks, duration)
        return duration

    def service_time_batch(self, ops, blocks, nblocks):
        """Batch pricing; the seeded RNG is drawn once per element, in
        element order, so spike placement is identical to scalar pricing.
        """
        inner_service = self.inner.service_time
        draw = self._rng.random
        probability = self.spike_probability
        spike = self.spike_duration
        account = self._account
        durations = []
        append = durations.append
        for op, block, count in zip(ops, blocks, nblocks):
            duration = inner_service(op, block, count)
            if draw() < probability:
                duration += spike
                self.spikes += 1
            self._last_block_end = block + count
            account(op, count, duration)
            append(duration)
        return durations
