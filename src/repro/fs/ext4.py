"""ext4 model: ordered-mode physical journal, delayed allocation,
and full split-framework integration (proxies correctly tagged)."""

from __future__ import annotations

from repro.fs.base import FileSystem


class Ext4(FileSystem):
    """ext4 as modelled for the paper's experiments.

    Integration with the split framework is *full* (paper §6): the
    journal commit task and the writeback daemon doing delayed
    allocation both run in proxy contexts, so journal and metadata
    writes map back to the applications that caused them (~80 lines of
    tagging across 5 files in the real implementation).
    """

    name = "ext4"
    full_integration = True
