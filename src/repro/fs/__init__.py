"""Simulated journaling filesystems (ext4- and XFS-like).

These models reproduce the filesystem behaviours that break single-layer
schedulers (paper §2.3):

- **delayed writeback**: writes buffer in the page cache and are
  flushed later by proxy tasks;
- **delayed allocation**: on-disk locations are unknown until flush
  time;
- **journaling (ordered mode)**: one running transaction batches
  metadata from every writer, and committing it requires flushing the
  ordered data of unrelated files first — the entanglement that defeats
  block-level reordering;
- **write amplification**: metadata and journal writes accompany data.
"""

from repro.fs.inode import Inode
from repro.fs.alloc import Allocator
from repro.fs.journal import Journal, Transaction
from repro.fs.base import FileSystem
from repro.fs.ext4 import Ext4
from repro.fs.xfs import XFS

__all__ = ["Allocator", "Ext4", "FileSystem", "Inode", "Journal", "Transaction", "XFS"]
