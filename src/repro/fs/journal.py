"""The journal (jbd2-like), ordered mode, and transaction entanglement.

One *running* transaction accumulates metadata updates from every
writer; at most one transaction *commits* at a time.  Committing, per
ext4 ordered mode (paper Figure 4), requires:

1. writing the *ordered data* — the dirty pages of every inode whose
   allocation joined the transaction (even if the fsync caller never
   touched those files);
2. writing the journal blocks (descriptor + metadata + commit record)
   sequentially into the journal area;
3. later, checkpointing the metadata in place.

Steps 1–2 are performed by a kernel commit task.  In the split
framework this task is a *proxy*: the journal writes carry the cause
set of every joiner.  A partially-integrated filesystem (our XFS model)
skips that tagging, so its metadata I/O is attributed to the journal
task itself — reproducing Figure 17.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Set

from repro.block.request import WRITE, BlockRequest
from repro.core.tags import CauseSet
from repro.faults.errors import EIO
from repro.obs.bus import JournalCheckpoint, JournalTxnCommit, JournalTxnOpen

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.base import FileSystem
    from repro.proc import Task
    from repro.sim.core import Environment


class CommitRecord(NamedTuple):
    """A durable commit, as crash recovery would reconstruct it.

    Snapshotted the instant the commit record completes: the metadata
    blocks the transaction journalled, and the data blocks that
    metadata references (the ordered inodes' block maps).  Recovery
    checks the ordered-mode invariant against these.
    """

    tid: int
    committed_at: float
    metadata_blocks: frozenset
    data_blocks: frozenset


class CheckpointEntry(NamedTuple):
    """Metadata committed to the journal but not yet written in place."""

    time: float
    tid: int
    blocks: Set[int]
    causes: CauseSet


class Transaction:
    """A batch of metadata updates plus its ordered-data obligations."""

    _tids = itertools.count(1)

    RUNNING = "running"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(self, env: "Environment"):
        self.tid = next(Transaction._tids)
        self.env = env
        self.state = Transaction.RUNNING
        #: Metadata blocks (inode table entries, bitmaps, directories)
        #: modified in this transaction.
        self.metadata_blocks: Set[int] = set()
        #: Tasks whose updates are batched here (set tag of the commit).
        self.joiners = CauseSet()
        #: Inodes whose data must reach disk before the commit record
        #: (ordered mode: their allocations are in this transaction).
        self.ordered_inodes: Set[int] = set()
        #: Triggered when the commit record is durable.
        self.done = env.event()
        self.commit_start: Optional[float] = None
        self.commit_end: Optional[float] = None

    @property
    def empty(self) -> bool:
        return not self.metadata_blocks and not self.ordered_inodes

    def __repr__(self) -> str:
        return (
            f"<Txn #{self.tid} {self.state} meta={len(self.metadata_blocks)} "
            f"ordered={len(self.ordered_inodes)}>"
        )


class Journal:
    """Transaction manager and commit engine for one filesystem."""

    def __init__(
        self,
        env: "Environment",
        fs: "FileSystem",
        area_start: int,
        area_blocks: int,
        commit_interval: float = 5.0,
        checkpoint_delay: float = 30.0,
    ):
        self.env = env
        self.fs = fs
        self.area_start = area_start
        self.area_blocks = area_blocks
        self.commit_interval = commit_interval
        self.checkpoint_delay = checkpoint_delay
        #: The jbd2 kernel task (a proxy when committing).
        self.task = fs.process_table.spawn(f"jbd2-{fs.name}", kernel=True)
        self.bus = fs.bus
        self._sub_txn_open = self.bus.listeners(JournalTxnOpen)
        self._sub_txn_commit = self.bus.listeners(JournalTxnCommit)
        self._sub_checkpoint = self.bus.listeners(JournalCheckpoint)
        self.running = self._open_transaction()
        self.committing: Optional[Transaction] = None
        self._journal_head = area_start
        #: Metadata blocks committed but not yet checkpointed in place,
        #: with the cause set recorded at commit time.
        self._checkpoint_queue: List[CheckpointEntry] = []
        #: Durable commits in order (crash recovery's view of the log).
        self.committed_log: List[CommitRecord] = []
        #: Set when a journal write failed permanently: the filesystem
        #: is effectively read-only and fsync raises EIO (ext4 behaviour
        #: short of remount-ro).
        self.aborted = False
        self.commits = 0
        self.journal_blocks_written = 0
        self.checkpoint_errors = 0
        env.process(self._commit_timer(), name=f"jbd2-timer-{fs.name}")
        env.process(self._checkpointer(), name=f"jbd2-checkpoint-{fs.name}")

    def _open_transaction(self) -> Transaction:
        """Open a fresh running transaction (publishing TxnOpen)."""
        txn = Transaction(self.env)
        if self._sub_txn_open:
            self.bus.publish(JournalTxnOpen(self.env.now, txn.tid))
        return txn

    def _publish_commit(self, txn: Transaction, causes: CauseSet, nblocks: int, aborted: bool) -> None:
        if self._sub_txn_commit:
            self.bus.publish(
                JournalTxnCommit(
                    self.env.now,
                    txn.tid,
                    txn.commit_start if txn.commit_start is not None else self.env.now,
                    causes,
                    nblocks,
                    len(txn.ordered_inodes),
                    aborted,
                )
            )

    # -- joining the running transaction ------------------------------------

    def add_metadata(self, task: "Task", block: int, ordered_inode: Optional[int] = None) -> Transaction:
        """Record a metadata update by *task* (or its proxied causes)."""
        txn = self.running
        txn.metadata_blocks.add(block)
        txn.joiners = txn.joiners | self.fs.tags.current_causes(task)
        if ordered_inode is not None:
            txn.ordered_inodes.add(ordered_inode)
        self.fs.tags.account_tag(txn, txn.joiners)
        return txn

    def transaction_of(self, inode_id: int, metadata_block: Optional[int]) -> Optional[Transaction]:
        """The transaction (running or committing) involving this inode."""
        for txn in (self.running, self.committing):
            if txn is None:
                continue
            if inode_id in txn.ordered_inodes:
                return txn
            if metadata_block is not None and metadata_block in txn.metadata_blocks:
                return txn
        return None

    # -- committing ----------------------------------------------------------

    def ensure_committed(self, txn: Transaction):
        """Generator: wait until *txn* is durable, committing if needed.

        Raises :class:`EIO` if the journal aborted (a journal or
        ordered-data write failed permanently): the transaction can
        never become durable.
        """
        while txn.state != Transaction.COMMITTED:
            if self.aborted or txn.state == Transaction.ABORTED:
                raise EIO(f"journal of {self.fs.name} aborted; txn #{txn.tid} lost")
            if txn.state == Transaction.RUNNING:
                yield from self.commit_running()
            else:
                yield txn.done

    def commit_running(self):
        """Generator: commit the current running transaction.

        On a permanent write failure the journal *aborts*: the
        transaction is marked :attr:`~Transaction.ABORTED`, its waiters
        are released (they observe the state and raise EIO in their own
        context), and no further commits are attempted.
        """
        if self.aborted:
            return
        # Only one commit at a time: wait for any in-flight commit first.
        while self.committing is not None:
            committing = self.committing
            target_running = self.running
            yield committing.done
            # If our running txn got committed by someone else meanwhile,
            # we are done.
            if target_running.state == Transaction.COMMITTED:
                return

        txn = self.running
        if txn.empty:
            return
        txn.state = Transaction.COMMITTING
        txn.commit_start = self.env.now
        self.committing = txn
        self.running = self._open_transaction()

        try:
            # Step 1: ordered data — flush dirty pages of every inode
            # whose allocation joined this transaction.  The commit task
            # acts as a proxy for the original writers.
            data_events = []
            for inode_id in sorted(txn.ordered_inodes):
                inode = self.fs.inode_by_id(inode_id)
                if inode is None:
                    continue
                pages = self.fs.cache.dirty_pages_of(inode_id)
                if pages:
                    data_events.extend(self.fs.writepages(self.task, inode, pages, sync=True))
            if data_events:
                from repro.sim.events import AllOf

                yield AllOf(self.env, data_events)
                if any(event.value.failed for event in data_events):
                    # Ordered data never became durable: committing now
                    # would let recovered metadata reference lost data.
                    self._abort(txn)
                    return

            # Step 2: journal blocks, written sequentially.
            nblocks = self.commit_size(txn)
            causes = self.journal_write_causes(txn)
            block = self._advance_journal_head(nblocks)
            request = BlockRequest(
                WRITE,
                block=block,
                nblocks=nblocks,
                submitter=self.task,
                causes=causes,
                sync=True,
                metadata=True,
            )
            done = self.fs.block_queue.submit(request)
            yield done
            if request.failed:
                self._abort(txn)
                return
            self.journal_blocks_written += nblocks

            txn.state = Transaction.COMMITTED
            txn.commit_end = self.env.now
            self.commits += 1
            self.fs.tags.release_tag(txn)
            self.committed_log.append(self._commit_record(txn))
            self._checkpoint_queue.append(
                CheckpointEntry(self.env.now, txn.tid, set(txn.metadata_blocks), causes)
            )
            self._publish_commit(txn, causes, nblocks, aborted=False)
            txn.done.succeed(txn)
        finally:
            self.committing = None

    def _commit_record(self, txn: Transaction) -> CommitRecord:
        """Snapshot what recovery would reconstruct for this commit."""
        data_blocks: Set[int] = set()
        for inode_id in txn.ordered_inodes:
            inode = self.fs.inode_by_id(inode_id)
            if inode is not None:
                data_blocks.update(inode.block_map.values())
        return CommitRecord(
            tid=txn.tid,
            committed_at=self.env.now,
            metadata_blocks=frozenset(txn.metadata_blocks),
            data_blocks=frozenset(data_blocks),
        )

    def _abort(self, txn: Transaction) -> None:
        """A commit write failed permanently: the journal shuts down."""
        self.aborted = True
        txn.state = Transaction.ABORTED
        txn.commit_end = self.env.now
        self.fs.tags.release_tag(txn)
        self._publish_commit(txn, txn.joiners, 0, aborted=True)
        # Release waiters; they observe ABORTED and raise EIO themselves
        # (failing the event would kill kernel daemons waiting on it).
        txn.done.succeed(txn)

    def commit_size(self, txn: Transaction) -> int:
        """Journal blocks for one commit.

        Physical journaling (ext4/jbd2): a descriptor, one block per
        modified metadata buffer, and a commit record.
        """
        return len(txn.metadata_blocks) + 2

    def journal_write_causes(self, txn: Transaction) -> CauseSet:
        """Cause tag for the journal write — overridden per integration.

        Full split integration attributes journal I/O to the joiners;
        a partially-integrated filesystem cannot, and charges the
        journal task itself.
        """
        if self.fs.full_integration:
            return txn.joiners
        return CauseSet((self.task.pid,))

    def _advance_journal_head(self, nblocks: int) -> int:
        if self._journal_head + nblocks > self.area_start + self.area_blocks:
            self._journal_head = self.area_start  # wrap (space reuse)
        block = self._journal_head
        self._journal_head += nblocks
        return block

    # -- background tasks ------------------------------------------------------

    def _commit_timer(self):
        """Periodic commit, like ext4's 5-second default."""
        while True:
            yield self.env.timeout(self.commit_interval)
            if not self.running.empty:
                yield from self.commit_running()

    def _checkpointer(self):
        """Write committed metadata in place once it has aged.

        A failed checkpoint write is harmless for durability (the
        journal copy is authoritative until the in-place write lands),
        so failed blocks are simply re-queued for the next pass.
        """
        while True:
            yield self.env.timeout(self.checkpoint_delay)
            now = self.env.now
            due = [
                entry for entry in self._checkpoint_queue if now - entry.time >= self.checkpoint_delay
            ]
            self._checkpoint_queue = [
                entry for entry in self._checkpoint_queue if now - entry.time < self.checkpoint_delay
            ]
            pending = []  # (entry, block, done-event)
            for entry in due:
                for block in sorted(entry.blocks):
                    request = BlockRequest(
                        WRITE,
                        block=block,
                        nblocks=1,
                        submitter=self.task,
                        causes=entry.causes,
                        metadata=True,
                    )
                    pending.append((entry, block, self.fs.block_queue.submit(request)))
            if pending:
                from repro.sim.events import AllOf

                yield AllOf(self.env, [event for _, _, event in pending])
                requeue: Dict[int, CheckpointEntry] = {}
                for entry, block, event in pending:
                    if not event.value.failed:
                        continue
                    self.checkpoint_errors += 1
                    retry = requeue.get(entry.tid)
                    if retry is None:
                        retry = CheckpointEntry(self.env.now, entry.tid, set(), entry.causes)
                        requeue[entry.tid] = retry
                    retry.blocks.add(block)
                self._checkpoint_queue.extend(requeue.values())
                if self._sub_checkpoint:
                    for entry in due:
                        failed = len(requeue.get(entry.tid).blocks) if entry.tid in requeue else 0
                        self.bus.publish(
                            JournalCheckpoint(
                                self.env.now, entry.tid, len(entry.blocks) - failed
                            )
                        )


class LogicalJournal(Journal):
    """XFS-style logical journaling.

    Instead of writing whole metadata buffers, logical records describe
    the *changes*; many records pack into one log block, so commits are
    much smaller than jbd2's physical commits for metadata-heavy loads.
    """

    #: How many logical change records fit in one 4 KiB log block.
    records_per_block = 16

    def commit_size(self, txn: Transaction) -> int:
        records = max(1, len(txn.metadata_blocks))
        record_blocks = (records + self.records_per_block - 1) // self.records_per_block
        return record_blocks + 1  # + the commit/unmount record
