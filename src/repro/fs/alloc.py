"""Block allocation with extent-based, delayed-allocation semantics.

A bump allocator with per-file locality: consecutive allocations for
the same file continue its last extent when possible, while
interleaved allocations from different files fragment the layout —
exactly the uncertainty that makes memory-level cost estimation
imprecise (paper Figure 8) and that the block-level model can later
correct for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class AllocationError(Exception):
    """Raised when the device has no free extent of the requested size."""


class Allocator:
    """Allocates 4 KiB blocks inside [start, start + size)."""

    def __init__(self, start_block: int, num_blocks: int):
        if num_blocks <= 0:
            raise ValueError("allocator needs at least one block")
        self.start_block = start_block
        self.num_blocks = num_blocks
        self._next = start_block
        self.allocated = 0
        #: inode id -> end block of its most recent extent (locality hint).
        self._file_hints: Dict[int, int] = {}
        #: Free extents returned by freeing files: list of (start, len).
        self._free_list: List[Tuple[int, int]] = []

    @property
    def end_block(self) -> int:
        return self.start_block + self.num_blocks

    @property
    def free_blocks(self) -> int:
        tail = self.end_block - self._next
        return tail + sum(length for _, length in self._free_list)

    def allocate(self, inode_id: int, nblocks: int) -> int:
        """Allocate a contiguous extent of *nblocks*; returns its start.

        Tries to extend the file's previous extent (so one file flushed
        in order stays sequential); otherwise takes from the bump
        pointer, falling back to the free list.
        """
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")

        hint = self._file_hints.get(inode_id)
        if hint is not None and hint == self._next and self._next + nblocks <= self.end_block:
            start = self._next
            self._next += nblocks
        elif self._next + nblocks <= self.end_block:
            start = self._next
            self._next += nblocks
        else:
            start = self._take_from_free_list(nblocks)
            if start is None:
                raise AllocationError(
                    f"no contiguous extent of {nblocks} blocks "
                    f"({self.free_blocks} free)"
                )
        self._file_hints[inode_id] = start + nblocks
        self.allocated += nblocks
        return start

    def free(self, start: int, nblocks: int) -> None:
        """Return an extent to the free list."""
        if nblocks <= 0:
            return
        self._free_list.append((start, nblocks))
        self.allocated -= nblocks

    def _take_from_free_list(self, nblocks: int) -> Optional[int]:
        for i, (start, length) in enumerate(self._free_list):
            if length >= nblocks:
                if length == nblocks:
                    self._free_list.pop(i)
                else:
                    self._free_list[i] = (start + nblocks, length - nblocks)
                return start
        return None
