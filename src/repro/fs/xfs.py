"""XFS model: logical journal with *partial* split integration.

The paper integrates XFS only through the generic buffer structures
(part (a) of §6): data pages carry correct cause tags, but XFS's own
logical journal is not taught about proxies, so journal/metadata writes
are attributed to the journal task itself.  Data-intensive workloads
are still well isolated (Figure 16); metadata-intensive workloads leak
unthrottled journal I/O (Figure 17).
"""

from __future__ import annotations

from repro.fs.base import FileSystem
from repro.fs.journal import LogicalJournal


class XFS(FileSystem):
    """XFS model: correct data tagging, untagged journal proxies."""

    name = "xfs"
    #: Partial integration: proxies are NOT tagged, so metadata I/O maps
    #: to the journal task rather than the real causes.
    full_integration = False
    #: XFS brings its own logical journal implementation.
    journal_class = LogicalJournal
