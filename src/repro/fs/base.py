"""The filesystem core: VFS operations over cache, journal, and disk.

All potentially-blocking operations (`read`, `write`, `fsync`) are
generators driven by the simulation; pure-memory operations are plain
methods.  The class is file-system-agnostic; :class:`~repro.fs.ext4.Ext4`
and :class:`~repro.fs.xfs.XFS` configure journaling mode and split-tag
integration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.block.request import READ, WRITE, BlockRequest
from repro.cache.page import PageKey
from repro.faults.errors import EIO
from repro.fs.alloc import Allocator
from repro.fs.inode import Inode
from repro.fs.journal import Journal
from repro.sim.events import AllOf
from repro.units import PAGE_SIZE


def raise_on_failed(events) -> None:
    """Raise :class:`EIO` if any completed block request in *events* failed.

    Every ``done`` event succeeds with its request (even on failure);
    synchronous paths — reads, O_DIRECT, fsync — call this after
    waiting so persistent device errors surface at the syscall layer
    instead of being silently absorbed.
    """
    for event in events:
        request = event.value
        if getattr(request, "failed", False):
            raise EIO(request.error or request)

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.queue import BlockQueue
    from repro.cache.cache import PageCache
    from repro.cache.page import Page
    from repro.core.tags import TagManager
    from repro.proc import ProcessTable, Task
    from repro.sim.core import Environment


class FileSystem:
    """A journaling filesystem instance mounted on one block queue."""

    name = "genericfs"
    #: Full split integration: proxies (journal, writeback doing delayed
    #: allocation) are tagged so metadata I/O maps to true causes.
    full_integration = True
    #: Journal flavour (physical jbd2-style by default).
    journal_class = Journal

    def __init__(
        self,
        env: "Environment",
        cache: "PageCache",
        block_queue: "BlockQueue",
        tags: "TagManager",
        process_table: "ProcessTable",
        journal_blocks: int = 32768,
        metadata_blocks: int = 8192,
        commit_interval: float = 5.0,
        checkpoint_delay: float = 30.0,
    ):
        self.env = env
        self.cache = cache
        self.block_queue = block_queue
        #: The stack event bus, shared with the block layer.
        self.bus = block_queue.bus
        self.tags = tags
        self.process_table = process_table

        capacity = block_queue.device.capacity_blocks
        needed = metadata_blocks + journal_blocks + 1
        if capacity <= needed:
            raise ValueError(f"device too small: {capacity} blocks, need > {needed}")

        #: Disk layout: [metadata | journal | data].
        self._metadata_region = Allocator(0, metadata_blocks)
        self.journal = self.journal_class(
            env,
            self,
            area_start=metadata_blocks,
            area_blocks=journal_blocks,
            commit_interval=commit_interval,
            checkpoint_delay=checkpoint_delay,
        )
        self.allocator = Allocator(metadata_blocks + journal_blocks, capacity - metadata_blocks - journal_blocks)

        self._inodes: Dict[int, Inode] = {}
        self._namespace: Dict[str, Inode] = {}
        self.root = self._new_inode("/", is_dir=True)
        #: In-flight page-write completion events per inode (ordered-mode
        #: commits must wait for these, not only for still-dirty pages).
        self._inflight: Dict[int, Set] = {}
        #: Readahead: pages prefetched beyond a sequential read (0 = off).
        self.readahead_pages = 32
        self._last_read_end: Dict[int, int] = {}
        #: The writeback daemon is attached after construction.
        self.writeback = None

        # Counters
        self.reads = 0
        self.writes = 0
        self.fsyncs = 0
        self.creates = 0

    # -- namespace ------------------------------------------------------------

    def _new_inode(self, path: str, is_dir: bool) -> Inode:
        meta_block = self._metadata_region.allocate(0, 1)
        inode = Inode(path, is_dir=is_dir, metadata_block=meta_block)
        self._inodes[inode.id] = inode
        self._namespace[path] = inode
        return inode

    def inode_by_id(self, inode_id: int) -> Optional[Inode]:
        return self._inodes.get(inode_id)

    def lookup(self, path: str) -> Optional[Inode]:
        return self._namespace.get(path)

    def _parent_dir(self, path: str) -> Inode:
        parent_path = path.rsplit("/", 1)[0] or "/"
        parent = self._namespace.get(parent_path)
        if parent is None or not parent.is_dir:
            raise FileNotFoundError(f"no such directory: {parent_path}")
        return parent

    def create(self, task: "Task", path: str, is_dir: bool = False) -> Inode:
        """creat/mkdir: new inode + parent directory metadata update."""
        if path in self._namespace:
            raise FileExistsError(path)
        parent = self._parent_dir(path)
        inode = self._new_inode(path, is_dir=is_dir)
        self.creates += 1
        # Both the new inode and the parent directory join the journal.
        self.journal.add_metadata(task, inode.metadata_block)
        self.journal.add_metadata(task, parent.metadata_block)
        return inode

    def children(self, dirpath: str) -> List[str]:
        """Direct children of *dirpath* in the flat namespace, sorted.

        Derived by scanning the namespace on demand — there is no
        second index to fall out of sync with ``create``/``unlink``.
        """
        prefix = "/" if dirpath == "/" else dirpath + "/"
        return sorted(
            path
            for path in self._namespace
            if path != dirpath
            and path.startswith(prefix)
            and "/" not in path[len(prefix):]
        )

    def unlink(self, task: "Task", path: str, release: bool = True) -> Inode:
        """Remove *path* from the namespace; returns the inode.

        With ``release`` (the default) the file's pages are freed (the
        buffer-free hook fires) and its disk blocks returned.  The VFS
        passes ``release=False`` while live handles reference the inode
        — POSIX deferred free — and calls :meth:`release_inode` itself
        on the last close.
        """
        inode = self._namespace.pop(path, None)
        if inode is None:
            raise FileNotFoundError(path)
        if release:
            self.release_inode(inode)
        inode.nlink = 0
        parent = self._parent_dir(path)
        self.journal.add_metadata(task, parent.metadata_block)
        self.journal.add_metadata(task, inode.metadata_block)
        return inode

    def release_inode(self, inode: Inode) -> None:
        """Free an inode's cached pages and disk blocks (last unref)."""
        self.cache.free_file(inode.id)
        for index, block in inode.block_map.items():
            self.allocator.free(block, 1)
        inode.block_map.clear()
        self._inodes.pop(inode.id, None)
        self._last_read_end.pop(inode.id, None)

    def rename(self, task: "Task", old_path: str, new_path: str) -> Inode:
        """Move *old_path* to *new_path* (directories carry subtrees).

        The target must not exist and its parent directory must; both
        parents and the moved inode join the running transaction, like
        a journaled directory-entry update.
        """
        inode = self._namespace.get(old_path)
        if inode is None:
            raise FileNotFoundError(old_path)
        if new_path in self._namespace:
            raise FileExistsError(new_path)
        if new_path == old_path or (
            inode.is_dir and new_path.startswith(old_path + "/")
        ):
            raise ValueError(f"cannot move {old_path!r} into itself")
        old_parent = self._parent_dir(old_path)
        new_parent = self._parent_dir(new_path)
        moved = [old_path]
        if inode.is_dir:
            prefix = old_path + "/"
            moved.extend(p for p in self._namespace if p.startswith(prefix))
        for path in moved:
            node = self._namespace.pop(path)
            rekeyed = new_path + path[len(old_path):]
            node.path = rekeyed
            self._namespace[rekeyed] = node
        self.journal.add_metadata(task, old_parent.metadata_block)
        self.journal.add_metadata(task, new_parent.metadata_block)
        self.journal.add_metadata(task, inode.metadata_block)
        return inode

    def truncate(self, task: "Task", inode: Inode, new_size: int) -> None:
        """Shrink (or sparsely extend) a file.

        Shrinking frees the cached pages beyond the new end — dirty
        ones fire the buffer-free hook (the work disappeared before
        writeback) — and returns their disk blocks.
        """
        if new_size < 0:
            raise ValueError("negative size")
        old_pages = inode.size_pages
        inode.size = new_size
        new_pages = inode.size_pages
        for index in range(new_pages, old_pages):
            self.cache.free(PageKey(inode.id, index))
            block = inode.block_map.pop(index, None)
            if block is not None:
                self.allocator.free(block, 1)
        self.journal.add_metadata(task, inode.metadata_block)

    # -- data path --------------------------------------------------------------

    def write(self, task: "Task", inode: Inode, offset: int, nbytes: int):
        """Generator: buffered write (dirty pages, journal join, throttle)."""
        if nbytes <= 0:
            return 0
        self.writes += 1
        first_page = offset // PAGE_SIZE
        last_page = (offset + nbytes - 1) // PAGE_SIZE
        block_map = inode.block_map
        for index in range(first_page, last_page + 1):
            page = self.cache.mark_dirty(PageKey(inode.id, index), task)
            existing = block_map.get(index)
            if existing is not None:
                page.disk_block = existing
            # else: delayed allocation — the location stays unknown and
            # the allocation joins the journal at writeback time.
        if offset + nbytes > inode.size:
            inode.size = offset + nbytes
        # mtime (and size, for appends) updates join the running txn.
        self.journal.add_metadata(task, inode.metadata_block)
        if self.writeback is not None:
            yield from self.writeback.balance_dirty_pages(task)
        return nbytes

    def read(self, task: "Task", inode: Inode, offset: int, nbytes: int):
        """Generator: read through the cache; misses hit the disk."""
        if nbytes <= 0 or offset >= inode.size:
            return 0
        self.reads += 1
        nbytes = min(nbytes, inode.size - offset)
        first_page = offset // PAGE_SIZE
        last_page = (offset + nbytes - 1) // PAGE_SIZE

        sequential = self._last_read_end.get(inode.id) == first_page
        self._last_read_end[inode.id] = last_page + 1

        missing: List[Tuple[int, int]] = []  # (page index, disk block)
        for index in range(first_page, last_page + 1):
            key = PageKey(inode.id, index)
            if self.cache.contains(key):
                self.cache.lookup(key)  # LRU touch
                self.cache.hits += 1
                continue
            block = inode.block_of(index)
            if block is None:
                # Sparse / not-yet-flushed region: zero fill, no I/O.
                self.cache.insert_clean(key)
                self.cache.hits += 1
                continue
            self.cache.misses += 1
            missing.append((index, block))

        # Readahead: when a sequential read goes to disk anyway, fetch
        # a window beyond it (Linux-style sequential detection).
        if missing and sequential and self.readahead_pages:
            max_page = max(inode.size_pages - 1, last_page)
            for index in range(last_page + 1, min(last_page + self.readahead_pages, max_page) + 1):
                key = PageKey(inode.id, index)
                if self.cache.contains(key):
                    continue
                block = inode.block_of(index)
                if block is not None:
                    missing.append((index, block))

        if missing:
            events = self._read_blocks(task, inode, missing)
            if events:
                yield AllOf(self.env, events)
                raise_on_failed(events)
        return nbytes

    def _read_blocks(self, task: "Task", inode: Inode, missing: List[Tuple[int, int]]):
        """Submit block reads for contiguous runs of missing pages."""
        causes = self.tags.current_causes(task)
        missing.sort(key=lambda pair: pair[1])
        events = []
        run_start = 0
        for i in range(1, len(missing) + 1):
            end_of_run = (
                i == len(missing)
                or missing[i][1] != missing[i - 1][1] + 1
            )
            if not end_of_run:
                continue
            run = missing[run_start:i]
            run_start = i
            request = BlockRequest(
                READ,
                block=run[0][1],
                nblocks=len(run),
                submitter=task,
                causes=causes,
                sync=True,
            )
            done = self.block_queue.submit(request)
            events.append(done)
            for index, block in run:
                self.cache.insert_clean(PageKey(inode.id, index), disk_block=block)
        return events

    # -- direct I/O (O_DIRECT) -------------------------------------------------------

    def read_direct(self, task: "Task", inode: Inode, offset: int, nbytes: int):
        """Generator: read bypassing the page cache (O_DIRECT).

        Used by hypervisors (`cache=none`): the I/O goes straight to
        the block layer, so the host cache is not polluted and the
        block scheduler sees every request.
        """
        if nbytes <= 0 or offset >= inode.size:
            return 0
        self.reads += 1
        nbytes = min(nbytes, inode.size - offset)
        first_page = offset // PAGE_SIZE
        last_page = (offset + nbytes - 1) // PAGE_SIZE
        missing = []
        for index in range(first_page, last_page + 1):
            block = inode.block_of(index)
            if block is not None:
                missing.append((index, block))
        if missing:
            events = self._read_blocks_nocache(task, missing)
            if events:
                yield AllOf(self.env, events)
                raise_on_failed(events)
        return nbytes

    def write_direct(self, task: "Task", inode: Inode, offset: int, nbytes: int):
        """Generator: synchronous write bypassing the cache (O_DIRECT).

        Unallocated ranges are allocated immediately (no delayed
        allocation without a cache), and the call returns only when the
        device has the data.
        """
        if nbytes <= 0:
            return 0
        self.writes += 1
        first_page = offset // PAGE_SIZE
        last_page = (offset + nbytes - 1) // PAGE_SIZE
        causes = self.tags.current_causes(task)
        runs: List[List[int]] = []
        for index in range(first_page, last_page + 1):
            block = inode.block_of(index)
            if block is None:
                block = self.allocator.allocate(inode.id, 1)
                inode.map_block(index, block)
                self.journal.add_metadata(task, inode.metadata_block)
            if runs and runs[-1][-1] == block - 1:
                runs[-1].append(block)
            else:
                runs.append([block])
        events = []
        for run in runs:
            request = BlockRequest(
                WRITE, block=run[0], nblocks=len(run), submitter=task,
                causes=causes, sync=True,
            )
            events.append(self.block_queue.submit(request))
        if offset + nbytes > inode.size:
            inode.size = offset + nbytes
        if events:
            yield AllOf(self.env, events)
            raise_on_failed(events)
        return nbytes

    def _read_blocks_nocache(self, task: "Task", missing: List[Tuple[int, int]]):
        causes = self.tags.current_causes(task)
        missing.sort(key=lambda pair: pair[1])
        events = []
        run_start = 0
        for i in range(1, len(missing) + 1):
            if i != len(missing) and missing[i][1] == missing[i - 1][1] + 1:
                continue
            run = missing[run_start:i]
            run_start = i
            request = BlockRequest(
                READ, block=run[0][1], nblocks=len(run), submitter=task,
                causes=causes, sync=True,
            )
            events.append(self.block_queue.submit(request))
        return events

    # -- writeback path ------------------------------------------------------------

    def writepages(self, task: "Task", inode: Inode, pages: List["Page"], sync: bool = False):
        """Flush dirty *pages* of *inode*: allocate (delayed allocation),
        tag proxies, and submit block writes.  Returns completion events.

        Callers: the writeback daemon, fsync, the journal's ordered-data
        step, and schedulers initiating async writeback.
        """
        pages = [p for p in pages if p.dirty and not p.under_writeback]
        if not pages:
            return []

        union_causes = None
        for page in pages:
            union_causes = page.causes if union_causes is None else union_causes | page.causes

        proxying = task.kernel and self.full_integration
        if proxying:
            self.tags.set_proxy(task, union_causes)
        try:
            unallocated = [p for p in pages if not p.allocated]
            if unallocated:
                self._allocate_pages(task, inode, unallocated)

            pages.sort(key=lambda p: p.disk_block)
            events = []
            run_start = 0
            for i in range(1, len(pages) + 1):
                end_of_run = (
                    i == len(pages)
                    or pages[i].disk_block != pages[i - 1].disk_block + 1
                )
                if not end_of_run:
                    continue
                run = pages[run_start:i]
                run_start = i
                run_causes = None
                for page in run:
                    run_causes = page.causes if run_causes is None else run_causes | page.causes
                request = BlockRequest(
                    WRITE,
                    block=run[0].disk_block,
                    nblocks=len(run),
                    submitter=task,
                    causes=run_causes,
                    sync=sync,
                    pages=list(run),
                )
                for page in run:
                    page.write_submitted()
                done = self.block_queue.submit(request)
                events.append(done)
                self._track_inflight(inode.id, done)
            return events
        finally:
            if proxying:
                self.tags.clear_proxy(task)

    def _allocate_pages(self, task: "Task", inode: Inode, pages: List["Page"]) -> None:
        """Delayed allocation at flush time: assign contiguous extents.

        The allocation dirties block bitmaps and the inode's extent tree
        — a metadata update that joins the running transaction and puts
        the inode on the ordered list (its data must precede the
        commit).
        """
        pages = sorted(pages, key=lambda p: p.key.index)
        run_start = 0
        for i in range(1, len(pages) + 1):
            end_of_run = (
                i == len(pages)
                or pages[i].key.index != pages[i - 1].key.index + 1
            )
            if not end_of_run:
                continue
            run = pages[run_start:i]
            run_start = i
            start_block = self.allocator.allocate(inode.id, len(run))
            for j, page in enumerate(run):
                page.disk_block = start_block + j
                inode.map_block(page.key.index, start_block + j)
        self.journal.add_metadata(task, inode.metadata_block, ordered_inode=inode.id)

    def _track_inflight(self, inode_id: int, done) -> None:
        pending = self._inflight.setdefault(inode_id, set())
        pending.add(done)

        def _clear(event, pending=pending):
            pending.discard(event)

        done.callbacks.append(_clear)

    def inflight_events(self, inode_id: int) -> List:
        return list(self._inflight.get(inode_id, ()))

    # -- fsync --------------------------------------------------------------------

    def fsync(self, task: "Task", inode: Inode):
        """Generator: make *inode* durable (data flush + journal commit).

        This is where entanglement bites: committing the running
        transaction may require flushing *other* files' ordered data
        first, and only one transaction commits at a time.
        """
        self.fsyncs += 1
        pages = self.cache.dirty_pages_of(inode.id)
        events = self.writepages(task, inode, pages, sync=True)
        events.extend(self.inflight_events(inode.id))
        if events:
            yield AllOf(self.env, events)
            raise_on_failed(events)

        txn = self.journal.transaction_of(inode.id, inode.metadata_block)
        if txn is not None:
            yield from self.journal.ensure_committed(txn)
        return None
