"""Inodes: per-file metadata and the index → disk-block map."""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.units import PAGE_SIZE


class Inode:
    """A file (or directory): size, block map, and a metadata block.

    The block map stores the on-disk block for each page index; an index
    with dirty data but no entry is a *delayed allocation* — its
    location is decided only at writeback time (paper §2.3.1).
    """

    _ids = itertools.count(1)

    def __init__(self, path: str, is_dir: bool = False, metadata_block: Optional[int] = None):
        self.id = next(Inode._ids)
        self.path = path
        self.is_dir = is_dir
        self.size = 0
        #: page index -> disk block (absent = unallocated / sparse).
        self.block_map: Dict[int, int] = {}
        #: Synthetic on-disk location of this inode's metadata
        #: (inode table entry + index blocks), for checkpoint writes.
        self.metadata_block = metadata_block
        self.nlink = 1

    @property
    def size_pages(self) -> int:
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    def block_of(self, index: int) -> Optional[int]:
        return self.block_map.get(index)

    def map_block(self, index: int, block: int) -> None:
        self.block_map[index] = block

    def allocated_fraction(self) -> float:
        """How much of the file currently has on-disk locations."""
        if self.size_pages == 0:
            return 1.0
        return len(self.block_map) / self.size_pages

    def __repr__(self) -> str:
        kind = "dir" if self.is_dir else "file"
        return f"<Inode #{self.id} {kind} {self.path!r} {self.size}B>"
