"""Workload process generators.

Each generator is a simulated thread body: drive it with
``env.process(workload(...))``.  They operate through the OS syscall
API only, so every scheduler hook applies to them exactly as it would
to a real application.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.metrics.recorders import LatencyRecorder, ThroughputTracker
from repro.units import KB, MB, PAGE_SIZE


def prefill_file(os, task, path: str, size: int, chunk: int = 1 * MB, drop: bool = True):
    """Create *path*, write *size* bytes sequentially, fsync.

    With ``drop=True`` the file's pages are evicted afterwards so
    subsequent readers start cold (the common setup for the paper's
    read experiments).
    """
    handle = yield from os.creat(task, path)
    written = 0
    while written < size:
        n = yield from handle.append(min(chunk, size - written))
        written += n
    yield from handle.fsync()
    if drop:
        handle.drop_cache()
    return handle


def sequential_reader(
    os,
    task,
    path: str,
    duration: float,
    chunk: int = 1 * MB,
    tracker: Optional[ThroughputTracker] = None,
    cold: bool = False,
):
    """Read the file sequentially (wrapping) until *duration* elapses."""
    env = os.env
    handle = yield from os.open(task, path)
    if cold:
        handle.drop_cache()
    size = handle.inode.size
    end = env.now + duration
    if tracker is not None:
        tracker.start(env.now)
    offset = 0
    total = 0
    while env.now < end:
        n = yield from handle.pread(offset, min(chunk, size - offset))
        if n <= 0:
            offset = 0
            if cold:
                handle.drop_cache()
            continue
        offset = (offset + n) % size
        if offset == 0 and cold:
            # Wrapped around: drop the file so every pass hits the disk.
            handle.drop_cache()
        total += n
        if tracker is not None:
            tracker.add(n, env.now)
    return total


def sequential_writer(
    os,
    task,
    path: str,
    duration: float,
    chunk: int = 64 * KB,
    tracker: Optional[ThroughputTracker] = None,
):
    """Append to the file continuously until *duration* elapses."""
    env = os.env
    handle = yield from os.open(task, path, create=True)
    end = env.now + duration
    if tracker is not None:
        tracker.start(env.now)
    total = 0
    while env.now < end:
        n = yield from handle.append(chunk)
        total += n
        if tracker is not None:
            tracker.add(n, env.now)
    return total


def sequential_overwriter(
    os,
    task,
    path: str,
    duration: float,
    region: int = 4 * MB,
    chunk: int = 64 * KB,
    tracker: Optional[ThroughputTracker] = None,
):
    """Overwrite the same *region* repeatedly (memory-speed workload)."""
    env = os.env
    handle = yield from os.open(task, path, create=True)
    if handle.inode.size < region:
        yield from handle.pwrite(0, region)
    end = env.now + duration
    if tracker is not None:
        tracker.start(env.now)
    offset, total = 0, 0
    while env.now < end:
        n = yield from handle.pwrite(offset, chunk)
        offset = (offset + n) % region
        total += n
        if tracker is not None:
            tracker.add(n, env.now)
    return total


def random_writer_fsync(
    os,
    task,
    path: str,
    duration: float,
    file_size: int = 64 * MB,
    block: int = 4 * KB,
    tracker: Optional[ThroughputTracker] = None,
    rng: Optional[random.Random] = None,
):
    """Random 4 KB write + fsync loop (Figure 11c's sync workload)."""
    env = os.env
    rng = rng or random.Random(task.pid)
    handle = yield from os.open(task, path, create=True)
    if handle.inode.size < file_size:
        yield from prefill_region(os, handle, file_size)
    end = env.now + duration
    if tracker is not None:
        tracker.start(env.now)
    total = 0
    while env.now < end:
        offset = rng.randrange(0, file_size // block) * block
        n = yield from handle.pwrite(offset, block)
        yield from handle.fsync()
        total += n
        if tracker is not None:
            tracker.add(n, env.now)
    return total


def prefill_region(os, handle, size: int, chunk: int = 1 * MB):
    """Extend *handle*'s file to *size* bytes and flush it."""
    offset = handle.inode.size
    while offset < size:
        n = yield from handle.pwrite(offset, min(chunk, size - offset))
        offset += n
    yield from handle.fsync()


def fsync_appender(
    os,
    task,
    path: str,
    duration: float,
    append: int = 4 * KB,
    recorder: Optional[LatencyRecorder] = None,
    think: float = 0.0,
):
    """Append *append* bytes and fsync, recording fsync call latency.

    Mimics a database log appender (thread A of Figures 5 and 12).
    """
    env = os.env
    handle = yield from os.open(task, path, create=True)
    end = env.now + duration
    count = 0
    while env.now < end:
        yield from handle.append(append)
        start = env.now
        yield from handle.fsync()
        if recorder is not None:
            recorder.record(env.now, env.now - start)
        count += 1
        if think > 0:
            yield env.timeout(think)
    return count


def random_write_burst(
    os,
    task,
    path: str,
    total: int,
    file_size: int = 256 * MB,
    block: int = 4 * KB,
    rng: Optional[random.Random] = None,
):
    """Dirty *total* bytes at random offsets as fast as possible.

    Thread B of Figure 1: a short burst that, under a block-level
    scheduler, poisons the write buffer for minutes.
    """
    rng = rng or random.Random(task.pid)
    handle = yield from os.open(task, path, create=True)
    if handle.inode.size < file_size:
        yield from prefill_region(os, handle, file_size)
    written = 0
    while written < total:
        offset = rng.randrange(0, file_size // block) * block
        n = yield from handle.pwrite(offset, block)
        written += n
    return written


def run_pattern_reader(
    os,
    task,
    path: str,
    run_bytes: int,
    duration: float,
    tracker: Optional[ThroughputTracker] = None,
    rng: Optional[random.Random] = None,
    chunk: int = 64 * KB,
):
    """Read *run_bytes* sequentially, seek randomly, repeat (§2.3.3)."""
    env = os.env
    rng = rng or random.Random(task.pid)
    handle = yield from os.open(task, path)
    size = handle.inode.size
    end = env.now + duration
    if tracker is not None:
        tracker.start(env.now)
    while env.now < end:
        offset = rng.randrange(0, max(1, (size - run_bytes) // PAGE_SIZE)) * PAGE_SIZE
        done = 0
        while done < run_bytes and env.now < end:
            n = yield from handle.pread(offset + done, min(chunk, run_bytes - done))
            if n <= 0:
                break
            done += n
            if tracker is not None:
                tracker.add(n, env.now)


def run_pattern_writer(
    os,
    task,
    path: str,
    run_bytes: int,
    duration: float,
    tracker: Optional[ThroughputTracker] = None,
    rng: Optional[random.Random] = None,
    chunk: int = 64 * KB,
):
    """Write *run_bytes* sequentially, seek randomly, repeat."""
    env = os.env
    rng = rng or random.Random(task.pid)
    handle = yield from os.open(task, path, create=True)
    size = max(handle.inode.size, run_bytes + PAGE_SIZE)
    end = env.now + duration
    if tracker is not None:
        tracker.start(env.now)
    while env.now < end:
        offset = rng.randrange(0, max(1, (size - run_bytes) // PAGE_SIZE)) * PAGE_SIZE
        done = 0
        while done < run_bytes and env.now < end:
            n = yield from handle.pwrite(offset + done, min(chunk, run_bytes - done))
            if n <= 0:
                break
            done += n
            if tracker is not None:
                tracker.add(n, env.now)


def spin_loop(os, task, duration: float, slice_seconds: float = 0.001):
    """Burn CPU without any I/O (Figure 15's control workload)."""
    env = os.env
    end = env.now + duration
    while env.now < end:
        yield from os.cpu.consume(task, slice_seconds)
