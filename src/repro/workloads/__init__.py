"""Workload generators used across the paper's experiments."""

from repro.workloads.generators import (
    fsync_appender,
    prefill_file,
    random_write_burst,
    random_writer_fsync,
    run_pattern_reader,
    run_pattern_writer,
    sequential_overwriter,
    sequential_reader,
    sequential_writer,
    spin_loop,
)

__all__ = [
    "fsync_appender",
    "prefill_file",
    "random_write_burst",
    "random_writer_fsync",
    "run_pattern_reader",
    "run_pattern_writer",
    "sequential_overwriter",
    "sequential_reader",
    "sequential_writer",
    "spin_loop",
]
