"""Simulated tasks (processes/threads) and the process table.

A :class:`Task` is the scheduling identity used throughout the stack: it
carries a pid, an I/O priority (CFQ-style, 0 = highest .. 7 = lowest), an
optional idle-class flag, and per-task accounting.  Kernel helper tasks
(the writeback daemon, the journal commit task) are Tasks too — that is
precisely what lets block-level schedulers mis-attribute delegated I/O.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

#: CFQ priority range: 0 is highest, 7 is lowest; the default is 4
#: (which is what kernel threads such as the writeback daemon run at).
DEFAULT_PRIORITY = 4
NUM_PRIORITIES = 8


class Task:
    """A schedulable entity: an application thread or a kernel task."""

    _pids = itertools.count(1)

    def __init__(
        self,
        name: str,
        priority: int = DEFAULT_PRIORITY,
        idle_class: bool = False,
        kernel: bool = False,
    ):
        if not 0 <= priority < NUM_PRIORITIES:
            raise ValueError(f"priority {priority} outside [0, {NUM_PRIORITIES})")
        self.pid = next(Task._pids)
        self.name = name
        self.priority = priority
        #: CFQ "idle" ionice class: only run when nothing else wants disk.
        self.idle_class = idle_class
        #: True for kernel helper threads (writeback, journal commit).
        self.kernel = kernel
        #: Bytes of I/O completed on behalf of this task (true causes).
        self.bytes_read = 0
        self.bytes_written = 0

    def __repr__(self) -> str:
        return f"<Task {self.name} pid={self.pid} prio={self.priority}>"


class ProcessTable:
    """Registry of live tasks, keyed by pid."""

    def __init__(self):
        self._tasks: Dict[int, Task] = {}

    def register(self, task: Task) -> Task:
        self._tasks[task.pid] = task
        return task

    def spawn(self, name: str, priority: int = DEFAULT_PRIORITY, **kwargs) -> Task:
        """Create and register a new task."""
        return self.register(Task(name, priority=priority, **kwargs))

    def get(self, pid: int) -> Optional[Task]:
        return self._tasks.get(pid)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks.values())
