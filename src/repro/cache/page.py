"""A page-cache page (Linux ``struct page`` + ``buffer_head``)."""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.core.tags import CauseSet, EMPTY_CAUSES
from repro.units import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import PageCache


class PageKey(NamedTuple):
    """Identity of a page: (inode id, page index within the file)."""

    inode_id: int
    index: int


class Page:
    """One 4 KiB cached page of a file.

    State machine: *clean* ⇄ *dirty* → *under writeback* → *clean*.
    A page re-dirtied while under writeback stays dirty after the write
    completes.  The page carries the split framework's cause tag and the
    (possibly delayed) disk block assignment.
    """

    __slots__ = (
        "key",
        "cache",
        "dirty",
        "under_writeback",
        "redirtied",
        "causes",
        "dirtied_at",
        "disk_block",
        "last_access",
    )

    def __init__(self, key: PageKey, cache: "PageCache"):
        self.key = key
        self.cache = cache
        self.dirty = False
        self.under_writeback = False
        #: Dirtied again while its writeback I/O was in flight.
        self.redirtied = False
        self.causes: CauseSet = EMPTY_CAUSES
        self.dirtied_at: Optional[float] = None
        #: Disk block backing this page; None while allocation is delayed.
        self.disk_block: Optional[int] = None
        self.last_access = 0.0

    @property
    def size(self) -> int:
        return PAGE_SIZE

    @property
    def allocated(self) -> bool:
        return self.disk_block is not None

    def write_submitted(self) -> None:
        """The page's writeback I/O entered the block layer."""
        self.under_writeback = True
        self.redirtied = False

    def write_completed(self) -> None:
        """The device finished writing this page (block-layer callback)."""
        self.under_writeback = False
        if self.redirtied:
            self.redirtied = False
            return  # still dirty: it was modified mid-flight
        if self.dirty:
            self.cache.page_cleaned(self)

    def write_failed(self) -> None:
        """The page's writeback I/O failed permanently.

        The data never reached the device, so the page stays dirty
        (re-dirtied, in kernel terms) and becomes eligible for a later
        flush attempt instead of being cleaned.
        """
        self.under_writeback = False
        self.redirtied = False

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        if self.under_writeback:
            state += "+wb"
        return f"<Page {self.key.inode_id}:{self.key.index} {state}>"
