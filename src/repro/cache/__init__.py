"""Page cache: pages, dirty tracking, and the writeback daemon.

Reproduces the Linux behaviours the paper hinges on: writes are absorbed
by the cache and flushed much later by a kernel *proxy* task (pdflush),
dirty data is bounded by the ``dirty_background_ratio`` /
``dirty_ratio`` pair (background flush vs foreground throttling), and
pages older than ``dirty_expire`` are flushed on the periodic wakeup.
"""

from repro.cache.page import Page, PageKey
from repro.cache.cache import PageCache
from repro.cache.writeback import WritebackDaemon, WritebackConfig

__all__ = ["Page", "PageCache", "PageKey", "WritebackConfig", "WritebackDaemon"]
