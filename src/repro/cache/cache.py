"""The page cache proper: lookup, dirtying, eviction, accounting."""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cache.page import Page, PageKey
from repro.core.tags import EMPTY_CAUSES, TagManager
from repro.obs.bus import PageCleaned, PageDirtied, PageFreed, StackBus
from repro.units import GB, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.proc import Task
    from repro.sim.core import Environment


class PageCache:
    """An LRU page cache with dirty-page accounting and split hooks.

    The split framework's memory-level hooks (`buffer-dirty`,
    `buffer-free`, Table 2) fire from here — published as
    :class:`~repro.obs.bus.PageDirtied` / :class:`PageFreed` events on
    the stack bus, so any number of subscribers (the installed split
    scheduler, span builders, tests) observe them.  The legacy
    single-slot ``buffer_dirty_hook`` / ``buffer_free_hook`` attributes
    remain as properties layered over one bus subscription each.  A
    stack running a pure block-level scheduler has no memory
    subscribers, which is exactly the information gap the paper
    describes.
    """

    def __init__(
        self,
        env: "Environment",
        tags: TagManager,
        memory_bytes: int = 16 * GB,
        bus: Optional[StackBus] = None,
    ):
        if memory_bytes < PAGE_SIZE:
            raise ValueError("cache must hold at least one page")
        self.env = env
        self.tags = tags
        self.memory_bytes = memory_bytes
        self.capacity_pages = memory_bytes // PAGE_SIZE
        self._pages: Dict[PageKey, Page] = {}
        #: LRU of *clean* pages only (dirty pages are never evictable,
        #: so keeping them out of the LRU makes eviction O(1)).
        self._clean_lru: "OrderedDict[PageKey, None]" = OrderedDict()
        # Dirty indexes: insertion order == age order (a page's
        # dirtied_at is set only on the clean->dirty transition).
        self._dirty: "OrderedDict[PageKey, None]" = OrderedDict()
        self._dirty_by_inode: Dict[int, "OrderedDict[PageKey, None]"] = {}
        self.dirty_bytes = 0
        #: The stack event bus (shared with the rest of the stack when
        #: assembled by the OS; private when constructed standalone).
        self.bus = bus if bus is not None else StackBus()
        # Live subscriber lists, cached so the hot paths pay one
        # truthiness check when nobody listens (zero-cost-off).
        self._sub_dirtied = self.bus.listeners(PageDirtied)
        self._sub_cleaned = self.bus.listeners(PageCleaned)
        self._sub_freed = self.bus.listeners(PageFreed)
        # Legacy single-slot hook state (see the properties below).
        self._buffer_dirty_hook = None
        self._buffer_dirty_unsub = None
        self._buffer_free_hook = None
        self._buffer_free_unsub = None
        # Counters
        self.hits = 0
        self.misses = 0
        self.overwrites = 0
        self.evictions = 0

    # -- legacy hook compatibility ------------------------------------------

    @property
    def buffer_dirty_hook(self):
        """Single-slot ``f(page, old_causes)`` shim over the bus.

        Assigning subscribes the callable to :class:`PageDirtied`
        events (replacing a previously assigned hook, preserving the
        historical one-slot semantics); other subscribers attached
        directly to the bus are unaffected.
        """
        return self._buffer_dirty_hook

    @buffer_dirty_hook.setter
    def buffer_dirty_hook(self, fn) -> None:
        if self._buffer_dirty_unsub is not None:
            self._buffer_dirty_unsub()
            self._buffer_dirty_unsub = None
        self._buffer_dirty_hook = fn
        if fn is not None:
            self._buffer_dirty_unsub = self.bus.subscribe(
                PageDirtied, lambda event: fn(event.page, event.old_causes)
            )

    @property
    def buffer_free_hook(self):
        """Single-slot ``f(page)`` shim over :class:`PageFreed` events."""
        return self._buffer_free_hook

    @buffer_free_hook.setter
    def buffer_free_hook(self, fn) -> None:
        if self._buffer_free_unsub is not None:
            self._buffer_free_unsub()
            self._buffer_free_unsub = None
        self._buffer_free_hook = fn
        if fn is not None:
            self._buffer_free_unsub = self.bus.subscribe(
                PageFreed, lambda event: fn(event.page)
            )

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    @property
    def dirty_fraction(self) -> float:
        return self.dirty_bytes / self.memory_bytes

    def lookup(self, key: PageKey) -> Optional[Page]:
        """Return the cached page or None; refreshes LRU position."""
        page = self._pages.get(key)
        if page is not None:
            if key in self._clean_lru:
                self._clean_lru.move_to_end(key)
            page.last_access = self.env.now
        return page

    def contains(self, key: PageKey) -> bool:
        return key in self._pages

    def dirty_pages_of(self, inode_id: int) -> List[Page]:
        """All dirty pages of one file, in file order."""
        index = self._dirty_by_inode.get(inode_id)
        if not index:
            return []
        pages = [
            self._pages[key] for key in index if not self._pages[key].under_writeback
        ]
        pages.sort(key=lambda p: p.key.index)
        return pages

    def dirty_bytes_of(self, inode_id: int) -> int:
        """Dirty bytes of one file (including pages under writeback)."""
        index = self._dirty_by_inode.get(inode_id)
        return len(index) * PAGE_SIZE if index else 0

    def dirty_pages_by_age(self, limit: Optional[int] = None) -> List[Page]:
        """Dirty pages not under writeback, oldest first."""
        pages = []
        for key in self._dirty:
            page = self._pages[key]
            if page.under_writeback:
                continue
            pages.append(page)
            if limit is not None and len(pages) >= limit:
                break
        return pages

    # -- mutation ----------------------------------------------------------

    def insert_clean(self, key: PageKey, disk_block: Optional[int] = None) -> Page:
        """Add a page read from disk (or reuse the cached one)."""
        page = self._pages.get(key)
        if page is None:
            page = Page(key, self)
            self._pages[key] = page
        if not page.dirty:
            self._clean_lru[key] = None
            self._clean_lru.move_to_end(key)
        self._maybe_evict()
        page.disk_block = disk_block if disk_block is not None else page.disk_block
        page.last_access = self.env.now
        return page

    def mark_dirty(self, key: PageKey, task: "Task") -> Page:
        """Dirty a page on behalf of *task* (or its proxied causes).

        Fires the buffer-dirty hook with the page's previous causes so
        a scheduler can shift accounting to the last writer if its
        policy wants that (§4.2).
        """
        causes = self.tags.current_causes(task)
        page = self._pages.get(key)
        if page is None:
            page = Page(key, self)
            self._pages[key] = page
            self._maybe_evict()
        self._clean_lru.pop(key, None)  # dirty pages leave the clean LRU
        page.last_access = self.env.now

        old_causes = page.causes if page.dirty else EMPTY_CAUSES
        newly_dirty = not page.dirty
        if newly_dirty:
            page.dirty = True
            page.dirtied_at = self.env.now
            page.causes = causes
            self._dirty[key] = None
            self._dirty_by_inode.setdefault(key.inode_id, OrderedDict())[key] = None
            self.dirty_bytes += PAGE_SIZE
        else:
            self.overwrites += 1
            page.causes = page.causes | causes
            if page.under_writeback:
                page.redirtied = True
        self.tags.account_tag(page, page.causes)

        if self._sub_dirtied:
            self.bus.publish(PageDirtied(self.env.now, page, old_causes))
        return page

    def page_cleaned(self, page: Page) -> None:
        """Writeback for *page* finished and it was not re-dirtied."""
        if not page.dirty:
            return
        page.dirty = False
        page.dirtied_at = None
        self._discard_dirty(page.key)
        self.dirty_bytes -= PAGE_SIZE
        self.tags.release_tag(page)
        page.causes = EMPTY_CAUSES
        if page.key in self._pages:
            self._clean_lru[page.key] = None
        if self._sub_cleaned:
            self.bus.publish(PageCleaned(self.env.now, page))
        self._maybe_evict()

    def free(self, key: PageKey) -> Optional[Page]:
        """Drop a page (file deletion / truncation).

        A dirty page freed before writeback fires the buffer-free hook:
        the work disappeared, and schedulers may refund its cost.
        """
        page = self._pages.pop(key, None)
        if page is None:
            return None
        self._clean_lru.pop(key, None)
        if page.dirty:
            self._discard_dirty(key)
            self.dirty_bytes -= PAGE_SIZE
            self.tags.release_tag(page)
            if self._sub_freed:
                self.bus.publish(PageFreed(self.env.now, page))
        return page

    def _discard_dirty(self, key: PageKey) -> None:
        self._dirty.pop(key, None)
        index = self._dirty_by_inode.get(key.inode_id)
        if index is not None:
            index.pop(key, None)
            if not index:
                del self._dirty_by_inode[key.inode_id]

    def drop_volatile(self) -> int:
        """Simulate power loss: every cached page vanishes, no hooks.

        DRAM contents are gone, so dirty pages are lost *without*
        firing buffer-free hooks or releasing tags — there is no
        orderly teardown in a crash.  Returns the number of pages
        dropped.  Only meaningful on a halted environment.
        """
        count = len(self._pages)
        self._pages.clear()
        self._clean_lru.clear()
        self._dirty.clear()
        self._dirty_by_inode.clear()
        self.dirty_bytes = 0
        return count

    def free_file(self, inode_id: int) -> int:
        """Drop every cached page of a file; returns count freed."""
        keys = [key for key in self._pages if key.inode_id == inode_id]
        for key in keys:
            self.free(key)
        return len(keys)

    def _maybe_evict(self) -> None:
        """Evict clean LRU pages when over capacity (O(1) per page)."""
        while len(self._pages) > self.capacity_pages and self._clean_lru:
            key, _ = self._clean_lru.popitem(last=False)
            page = self._pages.get(key)
            if page is None:
                continue
            if page.dirty or page.under_writeback:
                continue  # stale entry; dirty pages are not evictable
            del self._pages[key]
            self.evictions += 1
