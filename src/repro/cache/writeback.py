"""The writeback daemon (pdflush) and dirty throttling.

pdflush is the canonical *proxy* task of the paper: it submits (and,
via delayed allocation, dirties metadata for) I/O that other tasks
caused.  Its behaviour follows Linux:

- every ``wakeup_interval`` it flushes pages dirtier than
  ``dirty_expire`` seconds;
- when dirty bytes exceed ``dirty_background_ratio`` of memory it
  flushes down to that watermark;
- writers crossing ``dirty_ratio`` are blocked in
  :meth:`balance_dirty_pages` until the flushers catch up (this is the
  foreground throttling the paper notes applications already cope
  with).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.cache.page import Page
from repro.obs.bus import WritebackBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.cache import PageCache
    from repro.proc import ProcessTable, Task
    from repro.sim.core import Environment


class WritebackConfig:
    """Tunables mirroring /proc/sys/vm/dirty_*."""

    __slots__ = (
        "dirty_background_ratio",
        "dirty_ratio",
        "dirty_expire",
        "wakeup_interval",
        "batch_pages",
    )

    def __init__(
        self,
        dirty_background_ratio: float = 0.10,
        dirty_ratio: float = 0.20,
        dirty_expire: float = 30.0,
        wakeup_interval: float = 5.0,
        batch_pages: int = 2048,
    ):
        if not 0 < dirty_background_ratio <= dirty_ratio <= 1:
            raise ValueError("need 0 < background <= dirty_ratio <= 1")
        self.dirty_background_ratio = dirty_background_ratio
        self.dirty_ratio = dirty_ratio
        self.dirty_expire = dirty_expire
        self.wakeup_interval = wakeup_interval
        self.batch_pages = batch_pages


class WritebackDaemon:
    """Background flusher; one per filesystem instance."""

    def __init__(
        self,
        env: "Environment",
        cache: "PageCache",
        fs,
        process_table: "ProcessTable",
        config: WritebackConfig = None,
        enabled: bool = True,
    ):
        self.env = env
        self.cache = cache
        self.fs = fs
        self.config = config or WritebackConfig()
        #: pdflush runs at the default (4) priority — the root cause of
        #: Figure 3's unfairness under CFQ.
        self.task = process_table.spawn("pdflush", kernel=True)
        self.bus = cache.bus
        self._sub_batch = self.bus.listeners(WritebackBatch)
        self.enabled = enabled
        self._kick = env.event()
        self._throttle_waiters: List = []
        self._flush_target: float = float("inf")
        self.flushes = 0
        self.pages_flushed = 0
        #: Write requests that failed permanently (their pages were
        #: re-dirtied by the block layer and will be retried later).
        self.write_errors = 0
        if enabled:
            env.process(self._run(), name="pdflush")

    def kick(self) -> None:
        """Request an immediate flush pass."""
        if not self._kick.triggered:
            self._kick.succeed()

    def request_flush(self, target_bytes: float) -> None:
        """Ask the daemon to flush until dirty bytes <= *target_bytes*.

        Schedulers that bound the write backlog below the background
        ratio (e.g. AFQ's admission window) use this — the paper's
        "rely on Linux to perform writeback, and throttle write system
        calls to control how much dirty data accumulates" option.
        """
        self._flush_target = min(self._flush_target, target_bytes)
        self.kick()

    # -- foreground throttling ---------------------------------------------

    def over_background(self) -> bool:
        return self.cache.dirty_fraction > self.config.dirty_background_ratio

    def over_limit(self) -> bool:
        return self.cache.dirty_fraction > self.config.dirty_ratio

    def balance_dirty_pages(self, task: "Task"):
        """Block *task* while dirty bytes exceed the hard dirty ratio."""
        while self.enabled and self.over_limit():
            self.kick()
            waiter = self.env.event()
            self._throttle_waiters.append(waiter)
            yield waiter

    def _wake_throttled(self) -> None:
        if not self.over_limit():
            waiters, self._throttle_waiters = self._throttle_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()

    # -- the flusher --------------------------------------------------------

    def _run(self):
        config = self.config
        while True:
            timer = self.env.timeout(config.wakeup_interval)
            self._kick = self.env.event()
            from repro.sim.events import AnyOf

            yield AnyOf(self.env, [timer, self._kick])
            if not timer.processed:
                # Kicked early: the losing timer has no other
                # subscribers, so let the run loop sweep it lazily
                # instead of executing its stale callbacks.
                timer.cancel()

            # Flush until below the background watermark (or an explicit
            # flush target), then expired pages.
            goal = min(
                self.config.dirty_background_ratio * self.cache.memory_bytes,
                self._flush_target,
            )
            while self.cache.dirty_bytes > goal:
                flushed = yield from self._flush_batch(config.batch_pages)
                self._wake_throttled()
                if flushed == 0:
                    break
            self._flush_target = float("inf")
            yield from self._flush_expired()
            self._wake_throttled()

    def _flush_expired(self):
        cutoff = self.env.now - self.config.dirty_expire
        expired = []
        for page in self.cache.dirty_pages_by_age():
            if page.dirtied_at > cutoff:
                break  # age-ordered: the rest are younger
            expired.append(page)
        if expired:
            yield from self._writeback_pages(expired, reason="expired")

    def _flush_batch(self, max_pages: int):
        pages = self.cache.dirty_pages_by_age(limit=max_pages)
        if not pages:
            return 0
        yield from self._writeback_pages(pages, reason="background")
        return len(pages)

    def _writeback_pages(self, pages: List[Page], reason: str = "background"):
        """Group pages by file and hand them to the filesystem."""
        if self._sub_batch:
            self.bus.publish(WritebackBatch(self.env.now, len(pages), reason))
        by_inode: Dict[int, List[Page]] = {}
        for page in pages:
            by_inode.setdefault(page.key.inode_id, []).append(page)

        done_events = []
        for inode_id, file_pages in by_inode.items():
            inode = self.fs.inode_by_id(inode_id)
            if inode is None:
                continue
            file_pages.sort(key=lambda p: p.key.index)
            events = self.fs.writepages(self.task, inode, file_pages)
            done_events.extend(events)
        self.flushes += 1
        self.pages_flushed += len(pages)

        # Pace the daemon: wait for the batch to reach the platter so we
        # do not flood the block queue unboundedly.
        from repro.sim.events import AllOf

        if done_events:
            yield AllOf(self.env, done_events)
            # A kernel flusher survives I/O errors: failed pages are
            # already re-dirtied, so just count and move on.
            for event in done_events:
                if getattr(event.value, "failed", False):
                    self.write_errors += 1
        self._wake_throttled()
