"""Device health monitoring: fail-slow detection for the storage stack.

A :class:`HealthMonitor` subscribes to one stack's
:class:`~repro.obs.bus.StackBus` and tracks an EWMA of device service
latency per op class.  When the fast EWMA diverges from the healthy
baseline it drives a ``HEALTHY -> DEGRADED -> FAILED`` state machine
with hysteresis, publishing typed
:class:`~repro.obs.bus.HealthTransition` events on each change.  The
monitor also answers two operational questions:

- :meth:`HealthMonitor.deadline` — an adaptive hedging deadline (a
  latency percentile of recent samples) used by the block layer's
  hedged dispatch;
- :meth:`HealthMonitor.billing_factor` — the measured slowdown, used
  by split schedulers to re-price token contracts while the device is
  sick so tenant isolation holds under fail-slow hardware.
"""

from repro.health.monitor import (
    DEGRADED,
    FAILED,
    HEALTHY,
    HealthConfig,
    HealthMonitor,
    resolve_health,
)

__all__ = [
    "DEGRADED",
    "FAILED",
    "HEALTHY",
    "HealthConfig",
    "HealthMonitor",
    "resolve_health",
]
