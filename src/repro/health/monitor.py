"""The per-device health monitor and its fail-slow state machine.

Fail-slow hardware does not announce itself: a device that silently
degrades drags every tenant's tail latency without tripping a single
error path.  The monitor detects the onset statistically — a fast EWMA
of per-op service latency compared against a *healthy baseline* that is
only updated while the device is believed healthy (so the baseline
cannot creep up and mask a slow decline).  State transitions require
``hysteresis`` consecutive agreeing samples, and the DEGRADED exit
threshold sits below the entry threshold, so a noisy device does not
flap between states.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.bus import DeviceDone, HealthTransition, StackBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Health states, in degradation order.
HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"

_STATES = (HEALTHY, DEGRADED, FAILED)


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of the fail-slow detector (defaults are deliberately
    conservative: ~3x sustained degradation before acting)."""

    #: Fast EWMA weight for the current service-latency estimate.
    ewma_alpha: float = 0.3
    #: Slow EWMA weight for the healthy baseline (only updated while
    #: the state machine believes the device healthy).
    baseline_alpha: float = 0.02
    #: Samples per op class before the detector may judge at all.
    warmup: int = 16
    #: EWMA/baseline ratio at which DEGRADED is entered...
    degraded_enter: float = 3.0
    #: ...and the (lower) ratio below which it is exited — the band
    #: between the two is the hysteresis dead zone.
    degraded_exit: float = 1.5
    #: Ratio at which the device is declared FAILED.
    failed_enter: float = 20.0
    #: Consecutive agreeing samples required to switch state.
    hysteresis: int = 4
    #: Recent-sample ring size for the adaptive hedging deadline.
    window: int = 128
    #: Percentile of recent samples the deadline is derived from.
    deadline_percentile: float = 95.0
    #: Multiplier over that percentile: hedge only when an attempt is
    #: clearly an outlier, not merely above-median.
    deadline_margin: float = 3.0

    def __post_init__(self):
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if not 0.0 < self.baseline_alpha <= 1.0:
            raise ValueError(f"baseline_alpha must be in (0, 1], got {self.baseline_alpha}")
        if self.warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {self.warmup}")
        if self.degraded_exit > self.degraded_enter:
            raise ValueError(
                f"degraded_exit ({self.degraded_exit}) must not exceed "
                f"degraded_enter ({self.degraded_enter})"
            )
        if self.failed_enter < self.degraded_enter:
            raise ValueError(
                f"failed_enter ({self.failed_enter}) must be >= "
                f"degraded_enter ({self.degraded_enter})"
            )
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if not 0.0 < self.deadline_percentile <= 100.0:
            raise ValueError(
                f"deadline_percentile must be in (0, 100], got {self.deadline_percentile}"
            )
        if self.deadline_margin < 1.0:
            raise ValueError(f"deadline_margin must be >= 1, got {self.deadline_margin}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly payload (StackConfig serialization)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HealthConfig":
        return cls(**payload)


def resolve_health(health: Any):
    """Normalize a StackConfig ``health`` field value.

    Returns ``False`` (explicitly disabled), ``None`` (auto: attach
    when hedging or fault injection is active), ``True`` (attach with
    defaults), or a :class:`HealthConfig` (attach with that config).
    """
    if health is None or health is False or health is True:
        return health
    if isinstance(health, HealthConfig):
        return health
    if isinstance(health, dict):
        return HealthConfig(**health)
    raise TypeError(f"health must be None, a bool, a HealthConfig, or a dict, got {health!r}")


class _OpHealth:
    """Latency statistics for one op class ("read"/"write")."""

    __slots__ = ("count", "ewma", "baseline", "samples", "_sorted")

    def __init__(self):
        self.count = 0
        self.ewma: Optional[float] = None
        self.baseline: Optional[float] = None
        #: The most recent service latencies (the deadline source); the
        #: monitor trims it to the configured window on append.
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None


class HealthMonitor:
    """Tracks one device's service health from its StackBus events.

    Subscribe with :meth:`attach` (or construct directly with a bus):
    every :class:`~repro.obs.bus.DeviceDone` published under the
    watched device name feeds the EWMA detector.  Pure observer: the
    monitor never perturbs the simulation, so attaching one leaves
    results byte-identical.
    """

    def __init__(
        self,
        env: "Environment",
        device_name: str,
        bus: StackBus,
        config: Optional[HealthConfig] = None,
    ):
        self.env = env
        self.device_name = device_name
        self.bus = bus
        self.config = config or HealthConfig()
        self.state = HEALTHY
        #: (time, old_state, new_state, ratio) per transition.
        self.transitions: List[Tuple[float, str, str, float]] = []
        self._ops: Dict[str, _OpHealth] = {}
        self._streak_state: Optional[str] = None
        self._streak = 0
        self.observed = 0
        self._sub_transition = bus.listeners(HealthTransition)
        self._unsub = bus.subscribe(DeviceDone, self._on_device_done)

    # -- ingestion -----------------------------------------------------------

    def _on_device_done(self, event: DeviceDone) -> None:
        if event.device != self.device_name:
            return
        self.observe(event.op, event.duration)

    def observe(self, op: str, duration: float) -> None:
        """Feed one completed service attempt into the detector."""
        stats = self._ops.get(op)
        if stats is None:
            stats = self._ops[op] = _OpHealth()
        self.observed += 1
        stats.count += 1
        if stats.ewma is None:
            stats.ewma = duration
        else:
            alpha = self.config.ewma_alpha
            stats.ewma = alpha * duration + (1.0 - alpha) * stats.ewma
        # The healthy baseline only learns while we believe the device
        # healthy (or during warmup), so a slow decline cannot drag the
        # reference along with it and hide itself.
        if stats.baseline is None:
            stats.baseline = duration
        elif self.state == HEALTHY or stats.count <= self.config.warmup:
            beta = self.config.baseline_alpha
            stats.baseline = beta * duration + (1.0 - beta) * stats.baseline
        samples = stats.samples
        samples.append(duration)
        if len(samples) > self.config.window:
            del samples[0]
        stats._sorted = None
        self._step_state_machine()

    # -- detection -----------------------------------------------------------

    def degradation(self) -> float:
        """Worst-op EWMA/baseline ratio (1.0 = healthy, judged ops only)."""
        worst = 1.0
        for stats in self._ops.values():
            if stats.count < self.config.warmup:
                continue
            if not stats.baseline or stats.ewma is None:
                continue
            ratio = stats.ewma / stats.baseline
            if ratio > worst:
                worst = ratio
        return worst

    def _desired_state(self, ratio: float) -> str:
        config = self.config
        if ratio >= config.failed_enter:
            return FAILED
        if ratio >= config.degraded_enter:
            return DEGRADED
        if ratio <= config.degraded_exit:
            return HEALTHY
        return self.state  # dead band: hold the current state

    def _step_state_machine(self) -> None:
        ratio = self.degradation()
        desired = self._desired_state(ratio)
        if desired == self.state:
            self._streak_state = None
            self._streak = 0
            return
        if desired != self._streak_state:
            self._streak_state = desired
            self._streak = 0
        self._streak += 1
        if self._streak < self.config.hysteresis:
            return
        old, self.state = self.state, desired
        self._streak_state = None
        self._streak = 0
        self.transitions.append((self.env.now, old, desired, ratio))
        if self._sub_transition:
            self.bus.publish(
                HealthTransition(self.env.now, self.device_name, old, desired, ratio)
            )

    # -- operational surface -------------------------------------------------

    def deadline(self, op: str) -> Optional[float]:
        """The adaptive hedging deadline for *op* attempts, or None.

        A latency percentile of the recent-sample window times the
        configured margin.  None until the op class has warmed up — the
        block layer then falls back to its static ``request_timeout``.
        """
        stats = self._ops.get(op)
        if stats is None or stats.count < self.config.warmup:
            return None
        cache = stats._sorted
        if cache is None:
            cache = stats._sorted = sorted(stats.samples)
        from repro.metrics.recorders import percentile

        return percentile(cache, self.config.deadline_percentile) * self.config.deadline_margin

    def billing_factor(self) -> float:
        """Measured slowdown schedulers divide service charges by.

        1.0 while HEALTHY; the live degradation ratio once the state
        machine has committed to DEGRADED/FAILED — so token contracts
        are re-priced against measured degraded throughput, and tenants
        are not billed for the device's sickness.
        """
        if self.state == HEALTHY:
            return 1.0
        return max(1.0, self.degradation())

    def close(self) -> None:
        """Unsubscribe from the bus (transitions already seen are kept)."""
        if self._unsub is not None:
            self._unsub()
            self._unsub = None

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly digest for ``fault_summary`` / trace export."""
        return {
            "device": self.device_name,
            "state": self.state,
            "degradation": round(self.degradation(), 4),
            "observed": self.observed,
            "transitions": [
                {
                    "time": round(time, 6),
                    "from": old,
                    "to": new,
                    "ratio": round(ratio, 4),
                }
                for time, old, new, ratio in self.transitions
            ],
            "ops": {
                op: {
                    "count": stats.count,
                    "ewma": stats.ewma,
                    "baseline": stats.baseline,
                }
                for op, stats in sorted(self._ops.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<HealthMonitor {self.device_name} state={self.state} "
            f"degradation={self.degradation():.2f} observed={self.observed}>"
        )
