"""Power-loss crash modelling and journal recovery.

The crash story mirrors a real ordered-mode journal (jbd2):

1. power is cut (:func:`crash`): the environment halts, the page cache
   — volatile DRAM — vanishes, and any in-flight block request is torn;
2. recovery (:func:`recover`) scans the journal as a fresh mount would:
   transactions whose commit record reached the device are *replayed*
   (their metadata is reinstated in place), the running transaction and
   any mid-commit transaction are discarded;
3. the ordered-mode invariant is checked: no recovered metadata may
   reference a data block that never reached the device.  Ordered mode
   guarantees this by writing ordered data before the commit record —
   the checker exists to prove the simulated protocol (and any elevator
   reordering the journal stream) actually preserves it.

Durability is ground truth recorded at the block layer: a
:class:`DurabilityLog` subscribes to a queue's completion listeners and
remembers every block a *successful* write covered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.obs.bus import BlockComplete

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.queue import BlockQueue
    from repro.block.request import BlockRequest
    from repro.fs.base import FileSystem


class DurabilityLog:
    """Records which blocks were durably written on one block queue.

    Attach before the workload starts; the log subscribes to the stack
    bus's :class:`BlockComplete` events and keeps the set of blocks
    covered by successful writes.  Intended for crash/recovery
    experiments over bounded workloads (the block set is kept exactly).
    """

    def __init__(self, queue: "BlockQueue"):
        self.queue = queue
        self.written: Set[int] = set()
        self.writes = 0
        self.failed_writes = 0
        self._unsub = queue.bus.subscribe(
            BlockComplete, lambda event: self._on_complete(event.request)
        )

    def _on_complete(self, request: "BlockRequest") -> None:
        if not request.is_write:
            return
        if request.failed:
            self.failed_writes += 1
            return
        self.writes += 1
        self.written.update(range(request.block, request.end_block))

    def contains(self, block: int) -> bool:
        """Was *block* ever durably written?"""
        return block in self.written

    def __len__(self) -> int:
        return len(self.written)


class RecoveryReport:
    """What a post-crash recovery pass found and did."""

    def __init__(self):
        #: tids whose commit record was durable and metadata was replayed.
        self.replayed_tids: List[int] = []
        #: Metadata blocks reinstated in place by replay.
        self.replayed_metadata_blocks: Set[int] = set()
        #: The running transaction discarded at recovery (None if empty).
        self.discarded_running_tid: Optional[int] = None
        #: A mid-commit transaction whose commit record never landed.
        self.discarded_committing_tid: Optional[int] = None
        #: Ordered-mode violations: (tid, data blocks referenced but never written).
        self.violations: List[Tuple[int, List[int]]] = []
        #: Volatile pages lost in the crash.
        self.dropped_pages = 0
        #: The request torn mid-flight by the power cut (id, or None).
        self.torn_request_id: Optional[int] = None

    @property
    def invariant_ok(self) -> bool:
        """Ordered-mode invariant: all recovered metadata references durable data."""
        return not self.violations

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest of the recovery pass."""
        return {
            "replayed_transactions": len(self.replayed_tids),
            "replayed_metadata_blocks": len(self.replayed_metadata_blocks),
            "discarded_running_tid": self.discarded_running_tid,
            "discarded_committing_tid": self.discarded_committing_tid,
            "dropped_pages": self.dropped_pages,
            "torn_request_id": self.torn_request_id,
            "invariant_ok": self.invariant_ok,
            "violations": [
                {"tid": tid, "missing_blocks": blocks} for tid, blocks in self.violations
            ],
        }

    def __repr__(self) -> str:
        status = "ok" if self.invariant_ok else f"{len(self.violations)} violations"
        return (
            f"<RecoveryReport replayed={len(self.replayed_tids)} "
            f"discarded_running={self.discarded_running_tid} {status}>"
        )


def crash(machine) -> Dict[str, Optional[int]]:
    """Cut power to *machine* right now.

    Halts the environment (subsequent ``run`` calls return immediately)
    and drops all volatile state: the page cache's contents disappear
    without firing any hooks, and the in-flight block request is torn.
    Returns ``{"dropped_pages": ..., "torn_request_id": ...}``.
    """
    env = machine.env
    if not env.halted:
        env.halt(reason=env.now)
    dropped = machine.cache.drop_volatile()
    torn = machine.block_queue.in_flight
    return {
        "dropped_pages": dropped,
        "torn_request_id": torn.id if torn is not None else None,
    }


def recover(fs: "FileSystem", durability: DurabilityLog) -> RecoveryReport:
    """Run a mount-time recovery pass over *fs*'s journal.

    Committed transactions whose metadata is not yet checkpointed in
    place are replayed; the running transaction and any transaction
    caught mid-commit (commit record not durable) are discarded.  Every
    durable commit is then checked against the ordered-mode invariant
    using the block-level *durability* ground truth.
    """
    from repro.fs.journal import Transaction

    journal = fs.journal
    report = RecoveryReport()

    # Discard volatile transaction state, as a fresh mount would.
    if not journal.running.empty:
        report.discarded_running_tid = journal.running.tid
    if journal.committing is not None and journal.committing.state != Transaction.COMMITTED:
        report.discarded_committing_tid = journal.committing.tid
    journal.running = Transaction(journal.env)
    journal.committing = None

    # Replay: commits whose metadata never reached its home location.
    for entry in journal._checkpoint_queue:
        report.replayed_tids.append(entry.tid)
        report.replayed_metadata_blocks.update(entry.blocks)
    journal._checkpoint_queue = []

    # Ordered-mode invariant over every durable commit.
    for record in journal.committed_log:
        missing = sorted(b for b in record.data_blocks if b not in durability.written)
        if missing:
            report.violations.append((record.tid, missing))
    return report


def crash_and_recover(machine, durability: DurabilityLog) -> RecoveryReport:
    """Convenience wrapper: :func:`crash` then :func:`recover`."""
    crashed = crash(machine)
    report = recover(machine.fs, durability)
    report.dropped_pages = crashed["dropped_pages"]
    report.torn_request_id = crashed["torn_request_id"]
    return report
