"""Exception types for injected faults and their syscall-level surface.

Layering: :class:`~repro.devices.base.DeviceError` is the device-level
base (defined with the devices so the block layer need not import this
package); :class:`MediumError` is the injected, retryable flavour; and
:class:`EIO` is what ultimately reaches workload tasks through the
syscall API once the block layer has exhausted its retries — the
simulation's ``errno == EIO``.
"""

from __future__ import annotations

import errno
from typing import Any

from repro.devices.base import DeviceError
from repro.sim.core import StopSimulation


class MediumError(DeviceError):
    """A transient media failure injected by a fault plan.

    Retryable: the block layer backs off and re-issues the request; a
    persistent fault keeps failing every attempt until retries exhaust.
    """

    retryable = True


class EIO(OSError):
    """An I/O error surfaced to the application through a syscall.

    Carries POSIX ``errno.EIO`` so workloads can treat the simulated
    stack like the real one.
    """

    def __init__(self, detail: Any = None):
        message = "I/O error" if detail is None else f"I/O error: {detail}"
        super().__init__(errno.EIO, message)
        self.detail = detail


class PowerLoss(StopSimulation):
    """Power was cut: the simulation halts at the instant of the cut.

    Subclasses :class:`~repro.sim.core.StopSimulation`, so
    ``Environment.run`` returns normally (with the crash time as its
    value) instead of crashing the harness; the environment is left
    halted and a recovery pass can inspect the wreckage.
    """
