"""A fault-injecting device wrapper, composable with any device model.

``FaultyDevice(HDD(), injector)`` behaves exactly like the wrapped
device until the injector says otherwise: injected media errors raise
:class:`~repro.faults.errors.MediumError` (which the block layer
retries with backoff), degradation multiplies the inner service time,
and stalls add a large latency that trips the block layer's per-request
timeout.  With an empty plan the wrapper is behaviour-neutral — service
times are bit-identical to the inner device's.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import Device
from repro.faults.errors import MediumError
from repro.faults.injector import FaultInjector


class FaultyDevice(Device):
    """Wraps any :class:`Device`, injecting faults per its plan."""

    #: Injected media errors surface as exceptions from pricing, so the
    #: block queue's batch-pricing pass must not pre-price this device.
    pricing_can_fail = True

    def __init__(self, inner: Device, injector: FaultInjector, name: Optional[str] = None):
        super().__init__(capacity_blocks=inner.capacity_blocks,
                         name=name or f"faulty-{inner.name}")
        self.inner = inner
        self.injector = injector
        self.channels = inner.channels  # transparent to multi-queue dispatch

    def attach_bus(self, bus, clock) -> None:
        """Adopt the bus on the wrapper, the inner device, and the injector."""
        super().attach_bus(bus, clock)
        self.inner.attach_bus(bus, clock)
        self.injector.attach_bus(bus, clock)

    def begin_service(self) -> None:
        super().begin_service()
        self.inner.begin_service()

    def end_service(self) -> None:
        super().end_service()
        self.inner.end_service()

    def service_time(self, op: str, block: int, nblocks: int) -> float:
        self._check_bounds(block, nblocks)
        decision = self.injector.decide(op, block, nblocks, channel=self.serving_channel)
        if decision.error:
            raise MediumError(
                f"injected {op} error on {self.name} at block {block}",
                latency=self.injector.plan.error_latency,
            )
        base = self.inner.service_time(op, block, nblocks)
        duration = base * decision.slow_factor + decision.extra_latency
        if duration > base:
            self.injector.note_slowdown(duration - base)
        self._last_block_end = block + nblocks
        self._account(op, nblocks, duration)
        return duration

    def service_time_batch(self, ops, blocks, nblocks):
        """Batch pricing; the injector is consulted once per element, in
        element order, so fault placement (including budget- and
        sequence-based plans) is identical to scalar pricing.  An
        injected error raises mid-batch with every earlier element fully
        applied, exactly as a pricing loop would leave the device.
        """
        decide = self.injector.decide
        inner_service = self.inner.service_time
        note_slowdown = self.injector.note_slowdown
        error_latency = self.injector.plan.error_latency
        check = self._check_bounds
        account = self._account
        durations = []
        append = durations.append
        for op, block, count in zip(ops, blocks, nblocks):
            check(block, count)
            decision = decide(op, block, count, channel=self.serving_channel)
            if decision.error:
                raise MediumError(
                    f"injected {op} error on {self.name} at block {block}",
                    latency=error_latency,
                )
            base = inner_service(op, block, count)
            duration = base * decision.slow_factor + decision.extra_latency
            if duration > base:
                note_slowdown(duration - base)
            self._last_block_end = block + count
            account(op, count, duration)
            append(duration)
        return durations
