"""The fault injector: turns a declarative plan into per-op decisions.

One injector serves one device.  All randomness comes from a named
:class:`~repro.sim.rand.RandomStreams` stream (``faults.<device>`` by
default), so fault sequences are seed-reproducible and adding an
injector never perturbs the draws seen by workloads or other
subsystems.  RNG draws happen *only* for fault modes with a non-zero
probability, keeping an inert plan truly inert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, NamedTuple, Optional

from repro.faults.errors import PowerLoss
from repro.faults.plan import FaultPlan
from repro.obs.bus import FaultInjected, StackBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment
    from repro.sim.rand import RandomStreams


class FaultDecision(NamedTuple):
    """The injector's verdict for one device operation."""

    #: Fail this op with a (retryable) medium error.
    error: bool
    #: Multiply the op's service time by this factor (>= 1).
    slow_factor: float
    #: Add this much latency (an injected stall; 0 normally).
    extra_latency: float

    @property
    def clean(self) -> bool:
        """True when the op proceeds untouched."""
        return not self.error and self.slow_factor == 1.0 and self.extra_latency == 0.0


#: The no-fault decision, shared to avoid allocation on the hot path.
CLEAN = FaultDecision(error=False, slow_factor=1.0, extra_latency=0.0)


class FaultInjector:
    """Draws fault decisions for one device from a seeded stream."""

    def __init__(
        self,
        env: "Environment",
        plan: FaultPlan,
        streams: "RandomStreams",
        stream_name: str = "faults",
    ):
        self.env = env
        self.plan = plan
        self.stream_name = stream_name
        self._rng = streams.stream(stream_name)
        self._bus: Optional[StackBus] = None
        self._sub_fault: list = []
        # Counters (exposed via summary()).
        self.injected_read_errors = 0
        self.injected_write_errors = 0
        self.window_errors = 0
        self.injected_stalls = 0
        self.slowed_ops = 0
        self.channel_slow_ops = 0
        self.hiccup_ops = 0
        self.slow_window_ops = 0
        #: Indices (into plan.slow_windows) of windows seen active.
        self.slow_windows_triggered: set = set()
        #: Total extra service time added by slowdowns (seconds).
        self.slow_extra_time = 0.0
        self.power_lost_at: Optional[float] = None

    def attach_bus(self, bus: StackBus, clock) -> None:
        """Adopt the stack bus; injected faults publish FaultInjected."""
        self._bus = bus
        self._sub_fault = bus.listeners(FaultInjected)

    def _publish(self, kind: str, op: str) -> None:
        if self._sub_fault:
            self._bus.publish(
                FaultInjected(self.env.now, self.stream_name, kind, op)
            )

    def decide(
        self, op: str, block: int, nblocks: int, channel: Optional[int] = None
    ) -> FaultDecision:
        """The fate of one device operation happening now.

        ``channel`` is the hardware channel (dispatch slot) serving the
        op, when the caller knows it — per-channel fail-slow faults only
        apply to ops that carry a channel identity.
        """
        plan = self.plan
        now = self.env.now

        for window in plan.error_windows:
            if window.covers(now, op):
                self.window_errors += 1
                self._count_error(op)
                self._publish("error", op)
                return FaultDecision(error=True, slow_factor=1.0, extra_latency=0.0)

        probability = plan.error_probability(op)
        if probability > 0.0 and self._rng.random() < probability:
            self._count_error(op)
            self._publish("error", op)
            return FaultDecision(error=True, slow_factor=1.0, extra_latency=0.0)

        extra = 0.0
        if plan.stall_prob > 0.0 and self._rng.random() < plan.stall_prob:
            self.injected_stalls += 1
            extra = plan.stall_duration
            self._publish("stall", op)

        factor = plan.slow_factor
        for index, window in enumerate(plan.slow_windows):
            if window.covers(now):
                factor *= window.factor
                self.slow_window_ops += 1
                self.slow_windows_triggered.add(index)
        for fault in plan.channel_faults:
            if fault.covers(now, channel):
                factor *= fault.factor
                self.channel_slow_ops += 1
        for hiccup in plan.hiccups:
            if hiccup.covers(now):
                factor *= hiccup.factor
                self.hiccup_ops += 1
        if factor != 1.0:
            self.slowed_ops += 1
            self._publish("slow", op)

        if extra == 0.0 and factor == 1.0:
            return CLEAN
        return FaultDecision(error=False, slow_factor=factor, extra_latency=extra)

    def note_slowdown(self, extra_time: float) -> None:
        """Record *extra_time* seconds of service added by a slowdown."""
        self.slow_extra_time += extra_time

    def _count_error(self, op: str) -> None:
        if op == "read":
            self.injected_read_errors += 1
        else:
            self.injected_write_errors += 1

    # -- power loss ----------------------------------------------------------

    def arm_power_loss(self) -> None:
        """Schedule the plan's power cut (no-op if the plan has none).

        At the cut instant the environment is halted (subsequent
        ``run`` calls return immediately) and ``Environment.run``
        returns the crash time via :class:`PowerLoss`.
        """
        if self.plan.power_loss_at is None:
            return
        self.env.process(self._power_loss(), name=f"power-loss-{self.stream_name}")

    def _power_loss(self):
        yield self.env.timeout(self.plan.power_loss_at - self.env.now)
        self.power_lost_at = self.env.now
        self.env.halt(reason=self.env.now)
        raise PowerLoss(self.env.now)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Counters of everything this injector did."""
        return {
            "stream": self.stream_name,
            "injected_read_errors": self.injected_read_errors,
            "injected_write_errors": self.injected_write_errors,
            "window_errors": self.window_errors,
            "injected_stalls": self.injected_stalls,
            "slowed_ops": self.slowed_ops,
            "slow_window_ops": self.slow_window_ops,
            "slow_windows_triggered": len(self.slow_windows_triggered),
            "channel_slow_ops": self.channel_slow_ops,
            "hiccup_ops": self.hiccup_ops,
            "slow_extra_time": round(self.slow_extra_time, 9),
            "power_lost_at": self.power_lost_at,
        }

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {self.stream_name} plan={self.plan!r} "
            f"errors={self.injected_read_errors + self.injected_write_errors}>"
        )
