"""Seeded chaos campaigns: random fault plans, hard invariants, shrinking.

A campaign turns the fault machinery from a demonstration into a
*property test* of the whole stack.  Each run draws a random — but
seed-reproducible — :class:`~repro.faults.plan.FaultPlan` mixing the
fail-slow models (per-channel degradation, GC-like hiccups, slow
windows) with transient errors, stalls, and the occasional power cut,
drives a two-tenant Split-Token workload through it, and checks four
invariants that must hold under *any* fault plan:

- **watchdog** — the simulation quiesces: after the workload window
  plus a bounded sim-time grace period, no request is in flight and
  the scheduler holds no work (a hang shows up as a violation, never
  as a wedged test run);
- **conservation** — every submitted block request is accounted for:
  ``submitted == completed + failed`` once drained (power-cut runs may
  additionally carry the torn in-flight requests);
- **isolation** — the rate-limited tenant never exceeds its token
  contract by more than a generous slack, faults or no faults;
- **recovery** — after a power cut, journal recovery replays to a
  state satisfying the ordered-mode invariant.

Campaigns fan across cores through the experiment runner's cell
machinery (same worker pool, same declaration-order determinism:
``--jobs 1`` and ``--jobs N`` produce identical reports), and a
failing plan is *shrunk* — components zeroed one at a time to a local
fixpoint — so the artefact of a red campaign is the smallest plan that
still trips the invariant, not a 7-component haystack.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import StackConfig, resolve_fault_plan
from repro.faults.errors import EIO
from repro.faults.plan import ChannelFault, FaultPlan, FaultWindow, Hiccup, SlowWindow
from repro.faults.recovery import DurabilityLog, crash_and_recover
from repro.units import KB, MB

#: Default campaign shape: enough plans to cover every fault mode a
#: few times over while staying CI-fast at the default duration.
DEFAULT_PLANS = 25
DEFAULT_DURATION = 3.0
DEFAULT_QUEUE_DEPTH = 4

#: Upper bound on sim-seconds the drain phase may add after the
#: workload window before the watchdog calls the run hung.
DRAIN_GRACE = 180.0

#: Slack on the isolation bound: the limited tenant may exceed its
#: contract by this fraction (plus the bucket's one-second burst cap)
#: before the run counts as a violation.  Generous on purpose — the
#: invariant is "throttling cannot collapse under faults", not a
#: precision claim (fig18/fig23 make those).
ISOLATION_SLACK = 0.5


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------


def generate_plan(rng: random.Random, horizon: float = DEFAULT_DURATION) -> FaultPlan:
    """Draw one random fault plan from *rng*, scaled to *horizon*.

    Component probabilities are tuned so most plans combine two or
    three fault modes; a plan that comes out empty is redrawn, so the
    result always injects something.  All magnitudes are rounded to
    keep serialized plans short and reports readable.
    """
    while True:
        kwargs: Dict[str, Any] = {}
        if rng.random() < 0.6:
            kwargs["channel_faults"] = [
                ChannelFault(
                    channel=rng.randrange(10),
                    factor=round(rng.uniform(4.0, 24.0), 3),
                    start=round(rng.uniform(0.0, horizon / 2), 3),
                )
            ]
        if rng.random() < 0.35:
            period = round(rng.uniform(0.3, 1.5), 3)
            kwargs["hiccups"] = [
                Hiccup(
                    period=period,
                    duration=round(period * rng.uniform(0.1, 0.4), 4),
                    factor=round(rng.uniform(2.0, 8.0), 3),
                )
            ]
        if rng.random() < 0.35:
            kwargs["read_error_prob"] = round(rng.uniform(0.001, 0.05), 4)
        if rng.random() < 0.25:
            kwargs["write_error_prob"] = round(rng.uniform(0.001, 0.03), 4)
        if rng.random() < 0.25:
            start = round(rng.uniform(0.0, horizon * 0.6), 3)
            kwargs["slow_windows"] = [
                SlowWindow(
                    start=start,
                    end=round(start + rng.uniform(0.2, horizon / 2), 3),
                    factor=round(rng.uniform(2.0, 10.0), 3),
                )
            ]
        if rng.random() < 0.15:
            start = round(rng.uniform(0.0, horizon * 0.7), 3)
            kwargs["error_windows"] = [
                FaultWindow(
                    start=start,
                    end=round(start + rng.uniform(0.05, 0.3), 3),
                    op=rng.choice(["read", "write", None]),
                )
            ]
        if rng.random() < 0.1:
            kwargs["stall_prob"] = round(rng.uniform(0.0005, 0.005), 5)
            kwargs["stall_duration"] = round(rng.uniform(0.5, 5.0), 3)
        if rng.random() < 0.12:
            kwargs["power_loss_at"] = round(rng.uniform(horizon * 0.3, horizon * 0.9), 3)
        plan = FaultPlan(**kwargs)
        if not plan.empty:
            return plan


# ---------------------------------------------------------------------------
# one chaos run
# ---------------------------------------------------------------------------


def _chaos_reader(machine, task, path, until, chunk, tracker, stats):
    """Cold sequential reader that survives EIO (counts it, skips on)."""
    env = machine.env
    try:
        handle = yield from machine.open(task, path)
    except EIO:
        stats["eio"] += 1
        return
    size = handle.inode.size
    if size <= 0:
        return
    machine.cache.free_file(handle.inode.id)
    offset = 0
    while env.now < until:
        want = min(chunk, size - offset)
        try:
            n = yield from handle.pread(offset, want)
        except EIO:
            # The region is unreadable right now; record it and move
            # past it rather than hammering the same bad blocks.
            stats["eio"] += 1
            n = want
        if n <= 0:
            n = want
        offset = (offset + n) % size
        if offset == 0:
            # Wrapped: drop the file so every pass hits the device.
            machine.cache.free_file(handle.inode.id)
        else:
            tracker.add(n, env.now)


def _chaos_writer(machine, task, path, until, chunk, tracker, stats):
    """Appender that survives EIO on writes and fsyncs."""
    env = machine.env
    try:
        handle = yield from machine.open(task, path, create=True)
    except EIO:
        stats["eio"] += 1
        return
    while env.now < until:
        try:
            n = yield from handle.append(chunk)
            tracker.add(n, env.now)
        except EIO:
            stats["eio"] += 1
            # EIO already consumed retry/backoff sim-time, but step
            # once more so a permanently failing device can't spin.
            yield env.timeout(0.01)


def run_one(
    config: Dict,
    duration: float = DEFAULT_DURATION,
    rate_limit: float = 8 * MB,
    prefill: int = 16 * MB,
    grace: float = DRAIN_GRACE,
    forbid_retries: bool = False,
) -> Dict:
    """Execute one chaos run and return its verdict dict.

    *config* is a serialized :class:`~repro.config.StackConfig` whose
    ``fault_plan`` carries the (randomly generated) plan.  The verdict
    lists every violated invariant under ``"violations"`` — an empty
    list is a pass — plus the measurements backing each check.

    ``forbid_retries=True`` installs an intentionally unsatisfiable
    invariant ("the block layer never retries"): the campaign's own
    sanity check that a red run is detected and shrunk, not absorbed.
    """
    from repro.experiments.common import build_stack, drive, run_for
    from repro.metrics.recorders import ThroughputTracker, fault_summary
    from repro.workloads import prefill_file

    stack_config = StackConfig.from_dict(config)
    plan = resolve_fault_plan(config.get("fault_plan"))
    env, machine = build_stack(stack_config)
    queue = machine.block_queue
    durability = DurabilityLog(queue)

    stats = {"eio": 0}
    setup = machine.spawn("setup")

    def setup_proc():
        try:
            yield from prefill_file(machine, setup, "/a", prefill)
        except EIO:
            stats["eio"] += 1

    try:
        drive(env, setup_proc())
    except Exception:
        # A power cut during setup halts the environment mid-drive.
        pass

    a = machine.spawn("A")
    b = machine.spawn("B")
    machine.scheduler.set_limit(b, rate_limit)
    a_tracker = ThroughputTracker("A")
    b_tracker = ThroughputTracker("B")
    start = env.now
    until = start + duration
    if not env.halted:
        env.process(
            _chaos_reader(machine, a, "/a", until, 256 * KB, a_tracker, stats)
        )
        env.process(
            _chaos_writer(machine, b, "/bgrow", until, 64 * KB, b_tracker, stats)
        )
        run_for(env, duration)

    violations: List[str] = []
    power_lost = env.halted
    recovery = None

    if power_lost:
        report = crash_and_recover(machine, durability)
        recovery = report.summary()
        if not report.invariant_ok:
            violations.append(
                f"recovery: ordered-mode invariant violated "
                f"({len(report.violations)} transactions)"
            )
        # Torn requests are expected at a cut; conservation still must
        # account for every submission.
        if queue.submitted != queue.completed + queue.failed + queue.inflight_count:
            violations.append(
                f"conservation: submitted={queue.submitted} != "
                f"completed={queue.completed} + failed={queue.failed} + "
                f"inflight={queue.inflight_count} at power cut"
            )
    else:
        # Watchdog: the stack must quiesce within a bounded sim-time
        # grace window once the workload stops submitting.
        drain_deadline = env.now + grace
        while env.now < drain_deadline and (
            queue.inflight_count or machine.scheduler.has_work()
        ):
            env.run(until=min(drain_deadline, env.now + 1.0))
        drained = queue.inflight_count == 0 and not machine.scheduler.has_work()
        if not drained:
            violations.append(
                f"watchdog: {queue.inflight_count} in flight and "
                f"scheduler work={machine.scheduler.has_work()} after "
                f"{grace}s drain grace"
            )
        if queue.submitted != queue.completed + queue.failed:
            violations.append(
                f"conservation: submitted={queue.submitted} != "
                f"completed={queue.completed} + failed={queue.failed}"
            )
        # Isolation: the limited tenant's dirtied bytes stay within its
        # token contract (burst cap + slack) no matter what the device
        # does.  Skipped on power-cut runs (the window is truncated).
        window = env.now - start
        bound_bytes = rate_limit * (window * (1.0 + ISOLATION_SLACK) + 2.0)
        if b_tracker.bytes_total > bound_bytes:
            violations.append(
                f"isolation: limited tenant wrote "
                f"{b_tracker.bytes_total / MB:.1f} MB > bound "
                f"{bound_bytes / MB:.1f} MB over {window:.1f}s"
            )

    if forbid_retries and queue.retries > 0:
        violations.append(f"sanity: block layer retried {queue.retries} times")

    return {
        "plan": repr(plan),
        "violations": violations,
        "power_loss": power_lost,
        "recovery": recovery,
        "eio": stats["eio"],
        "a_mbps": round(a_tracker.rate(until=env.now) / MB, 3),
        "b_mbps": round(b_tracker.rate(until=env.now) / MB, 3),
        "sim_end": round(env.now, 6),
        "fault_summary": fault_summary(queue),
    }


# ---------------------------------------------------------------------------
# the campaign
# ---------------------------------------------------------------------------


def plan_for_index(seed: int, index: int, duration: float = DEFAULT_DURATION) -> FaultPlan:
    """The deterministic plan a campaign assigns to run *index*."""
    rng = random.Random(seed * 1_000_003 + index)
    return generate_plan(rng, horizon=duration)


def campaign_cells(
    plans: int = DEFAULT_PLANS,
    seed: int = 1,
    duration: float = DEFAULT_DURATION,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    hedge: bool = True,
    forbid_retries: bool = False,
) -> List:
    """Build the runner cells for one campaign (declaration order)."""
    from repro.experiments.runner import Cell

    cells = []
    for index in range(plans):
        plan = plan_for_index(seed, index, duration)
        config = StackConfig(
            device="ssd",
            scheduler="split-token",
            memory_bytes=256 * MB,
            queue_depth=queue_depth,
            hedge=hedge,
            fault_plan=plan,
            fault_seed=seed + index,
        )
        cells.append(
            Cell(
                "chaos",
                f"plan{index:03d}",
                "repro.faults.campaign",
                "run_one",
                dict(
                    config=config.to_dict(),
                    duration=duration,
                    forbid_retries=forbid_retries,
                ),
            )
        )
    return cells


def run_campaign(
    plans: int = DEFAULT_PLANS,
    seed: int = 1,
    jobs: int = 1,
    duration: float = DEFAULT_DURATION,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    hedge: bool = True,
    shrink: bool = True,
    forbid_retries: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run a seeded chaos campaign; returns the JSON-able report.

    Failing runs are re-executed serially with shrunken plans (unless
    ``shrink=False``), so the report's ``"failures"`` carry both the
    original violating plan and the minimal plan that still violates.
    """
    from repro.experiments.runner import execute_cells

    cells = campaign_cells(
        plans=plans,
        seed=seed,
        duration=duration,
        queue_depth=queue_depth,
        hedge=hedge,
        forbid_retries=forbid_retries,
    )
    outcomes = execute_cells(cells, jobs=jobs, progress=progress)

    runs = []
    failures = []
    for index, (cell, outcome) in enumerate(zip(cells, outcomes)):
        verdict = outcome[0]
        runs.append(
            {
                "label": cell.label,
                "plan": verdict["plan"],
                "violations": verdict["violations"],
                "power_loss": verdict["power_loss"],
                "eio": verdict["eio"],
                "a_mbps": verdict["a_mbps"],
                "b_mbps": verdict["b_mbps"],
            }
        )
        if verdict["violations"]:
            failure: Dict[str, Any] = {
                "label": cell.label,
                "seed": seed,
                "index": index,
                "violations": verdict["violations"],
                "plan": dict(cell.kwargs["config"]["fault_plan"]),
            }
            if shrink:
                minimal, evals = shrink_plan(
                    failure["plan"],
                    _still_fails(cell.kwargs["config"], duration, forbid_retries),
                )
                failure["shrunk_plan"] = minimal
                failure["shrink_evals"] = evals
            failures.append(failure)

    return {
        "plans": plans,
        "seed": seed,
        "duration": duration,
        "queue_depth": queue_depth,
        "hedge": hedge,
        "violations": sum(len(run["violations"]) for run in runs),
        "failed_runs": len(failures),
        "power_loss_runs": sum(1 for run in runs if run["power_loss"]),
        "runs": runs,
        "failures": failures,
    }


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def _still_fails(
    config: Dict, duration: float, forbid_retries: bool
) -> Callable[[Dict], bool]:
    """A predicate: does *config* with this plan payload still violate?"""

    def check(plan_payload: Dict) -> bool:
        candidate = dict(config)
        candidate["fault_plan"] = plan_payload
        verdict = run_one(
            candidate, duration=duration, forbid_retries=forbid_retries
        )
        return bool(verdict["violations"])

    return check


def _simplifications(payload: Dict) -> List[Tuple[str, Dict]]:
    """Every one-component-removed variant of a plan payload."""
    out: List[Tuple[str, Dict]] = []

    def variant(description: str, **changes) -> None:
        candidate = dict(payload)
        candidate.update(changes)
        out.append((description, candidate))

    for field, neutral in (
        ("read_error_prob", 0.0),
        ("write_error_prob", 0.0),
        ("stall_prob", 0.0),
        ("slow_factor", 1.0),
        ("power_loss_at", None),
    ):
        if payload.get(field) not in (neutral, None):
            variant(f"drop {field}", **{field: neutral})
    for field in ("error_windows", "slow_windows", "channel_faults", "hiccups"):
        items = list(payload.get(field) or ())
        for i in range(len(items)):
            variant(
                f"drop {field}[{i}]", **{field: items[:i] + items[i + 1 :]}
            )
    return out


def shrink_plan(
    payload: Dict,
    check: Callable[[Dict], bool],
    budget: int = 64,
) -> Tuple[Dict, int]:
    """Greedily minimise a violating plan payload.

    Tries removing one component at a time (each probability, each
    window/channel-fault/hiccup, the power cut); a removal is kept
    whenever ``check`` still reports a violation, and the pass repeats
    until a fixpoint or the evaluation *budget* runs out.  Returns
    ``(minimal payload, evaluations used)``.  Delta-debugging's greedy
    1-minimal core — quadratic worst case, tiny in practice because
    generated plans carry at most ~8 components.
    """
    current = dict(payload)
    evals = 0
    progressed = True
    while progressed and evals < budget:
        progressed = False
        for _description, candidate in _simplifications(current):
            if evals >= budget:
                break
            evals += 1
            if check(candidate):
                current = candidate
                progressed = True
                break
    return current, evals
