"""Deterministic fault injection for the simulated storage stack.

A declarative :class:`FaultPlan` describes what can go wrong on a
device (transient read/write errors, scheduled failure windows, latency
degradation, stalls, a power cut); a :class:`FaultInjector` draws every
decision from a seeded :class:`~repro.sim.rand.RandomStreams` stream so
fault sequences are reproducible; and :class:`FaultyDevice` composes
the two with any existing device model.  Failures propagate up the
stack: the block layer retries with exponential backoff and per-request
timeouts, exhausted requests surface as :class:`EIO` at the syscall
layer, failed writes re-dirty their pages, and a power loss halts the
environment for a journal :func:`recovery pass <recover>` checked
against the ordered-mode invariant.
"""

from repro.faults.device import FaultyDevice
from repro.faults.errors import EIO, MediumError, PowerLoss
from repro.faults.injector import CLEAN, FaultDecision, FaultInjector
from repro.faults.plan import ChannelFault, FaultPlan, FaultWindow, Hiccup, SlowWindow
from repro.faults.recovery import (
    DurabilityLog,
    RecoveryReport,
    crash,
    crash_and_recover,
    recover,
)

__all__ = [
    "CLEAN",
    "ChannelFault",
    "DurabilityLog",
    "EIO",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "FaultyDevice",
    "Hiccup",
    "MediumError",
    "PowerLoss",
    "RecoveryReport",
    "SlowWindow",
    "crash",
    "crash_and_recover",
    "recover",
]
