"""Declarative fault plans.

A :class:`FaultPlan` is a pure description of *what can go wrong* on a
device: transient per-op error probabilities, scheduled full-failure
windows, latency degradation (a slowing disk), injected stalls, and an
optional power-loss instant.  Plans carry no randomness of their own —
the :class:`~repro.faults.injector.FaultInjector` draws from a named
:class:`~repro.sim.rand.RandomStreams` stream, so the same seed and the
same plan always produce the same fault sequence.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.block.request import READ, WRITE


class FaultWindow(NamedTuple):
    """A scheduled failure interval: every matching op in it errors.

    ``op`` restricts the window to ``"read"`` or ``"write"``; ``None``
    fails both.  The window covers ``[start, end)``.
    """

    start: float
    end: float
    op: Optional[str] = None

    def covers(self, now: float, op: str) -> bool:
        """Does this window fail *op* at time *now*?"""
        return self.start <= now < self.end and (self.op is None or self.op == op)


class SlowWindow(NamedTuple):
    """A degradation interval: service times multiply by ``factor``."""

    start: float
    end: float
    factor: float

    def covers(self, now: float) -> bool:
        """Is *now* inside the degradation interval?"""
        return self.start <= now < self.end


class FaultPlan:
    """What can fail on one device, and when.

    All probabilities are per-request.  An empty plan (the default)
    injects nothing; installing it is behaviour-neutral.
    """

    def __init__(
        self,
        read_error_prob: float = 0.0,
        write_error_prob: float = 0.0,
        error_latency: float = 0.005,
        error_windows: Optional[List[FaultWindow]] = None,
        slow_factor: float = 1.0,
        slow_windows: Optional[List[SlowWindow]] = None,
        stall_prob: float = 0.0,
        stall_duration: float = 60.0,
        power_loss_at: Optional[float] = None,
    ):
        for name, prob in (
            ("read_error_prob", read_error_prob),
            ("write_error_prob", write_error_prob),
            ("stall_prob", stall_prob),
        ):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {prob}")
        if error_latency < 0:
            raise ValueError(f"error_latency must be >= 0, got {error_latency}")
        if slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {slow_factor}")
        if stall_duration < 0:
            raise ValueError(f"stall_duration must be >= 0, got {stall_duration}")
        if power_loss_at is not None and power_loss_at <= 0:
            raise ValueError(f"power_loss_at must be positive, got {power_loss_at}")
        for window in error_windows or ():
            if window.start >= window.end:
                raise ValueError(f"empty fault window {window}")
            if window.op not in (None, READ, WRITE):
                raise ValueError(f"window op must be read/write/None, got {window.op!r}")
        for window in slow_windows or ():
            if window.start >= window.end:
                raise ValueError(f"empty slow window {window}")
            if window.factor < 1.0:
                raise ValueError(f"slow window factor must be >= 1, got {window.factor}")

        self.read_error_prob = read_error_prob
        self.write_error_prob = write_error_prob
        #: Time a failed attempt occupies the device before erroring.
        self.error_latency = error_latency
        self.error_windows: List[FaultWindow] = list(error_windows or ())
        #: Global service-time multiplier (a uniformly slow disk).
        self.slow_factor = slow_factor
        self.slow_windows: List[SlowWindow] = list(slow_windows or ())
        self.stall_prob = stall_prob
        self.stall_duration = stall_duration
        #: Simulated time of an abrupt power cut (None = never).
        self.power_loss_at = power_loss_at

    @property
    def empty(self) -> bool:
        """True if this plan injects nothing at all."""
        return (
            self.read_error_prob == 0.0
            and self.write_error_prob == 0.0
            and not self.error_windows
            and self.slow_factor == 1.0
            and not self.slow_windows
            and self.stall_prob == 0.0
            and self.power_loss_at is None
        )

    def error_probability(self, op: str) -> float:
        """The transient error probability for *op*."""
        return self.read_error_prob if op == READ else self.write_error_prob

    def __repr__(self) -> str:
        if self.empty:
            return "<FaultPlan empty>"
        parts = []
        if self.read_error_prob:
            parts.append(f"read_err={self.read_error_prob}")
        if self.write_error_prob:
            parts.append(f"write_err={self.write_error_prob}")
        if self.error_windows:
            parts.append(f"windows={len(self.error_windows)}")
        if self.slow_factor != 1.0 or self.slow_windows:
            parts.append("slow")
        if self.stall_prob:
            parts.append(f"stall={self.stall_prob}")
        if self.power_loss_at is not None:
            parts.append(f"power_loss@{self.power_loss_at}")
        return f"<FaultPlan {' '.join(parts)}>"
