"""Declarative fault plans.

A :class:`FaultPlan` is a pure description of *what can go wrong* on a
device: transient per-op error probabilities, scheduled full-failure
windows, latency degradation (a slowing disk), injected stalls, and an
optional power-loss instant.  Plans carry no randomness of their own —
the :class:`~repro.faults.injector.FaultInjector` draws from a named
:class:`~repro.sim.rand.RandomStreams` stream, so the same seed and the
same plan always produce the same fault sequence.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.block.request import READ, WRITE


class FaultWindow(NamedTuple):
    """A scheduled failure interval: every matching op in it errors.

    ``op`` restricts the window to ``"read"`` or ``"write"``; ``None``
    fails both.  The window covers ``[start, end)``.
    """

    start: float
    end: float
    op: Optional[str] = None

    def covers(self, now: float, op: str) -> bool:
        """Does this window fail *op* at time *now*?"""
        return self.start <= now < self.end and (self.op is None or self.op == op)


class SlowWindow(NamedTuple):
    """A degradation interval: service times multiply by ``factor``."""

    start: float
    end: float
    factor: float

    def covers(self, now: float) -> bool:
        """Is *now* inside the degradation interval?"""
        return self.start <= now < self.end


class ChannelFault(NamedTuple):
    """A fail-slow *channel*: ops served on it multiply by ``factor``.

    Models the dominant fleet-scale failure mode — one flash channel
    (equivalently, one dispatch slot at the block layer) silently
    degrading while its siblings stay fast.  The fault is scoped to
    ``[start, end)`` in simulated time (default: forever).
    """

    channel: int
    factor: float
    start: float = 0.0
    end: float = float("inf")

    def covers(self, now: float, channel: Optional[int]) -> bool:
        """Does this fault slow an op on *channel* at time *now*?"""
        return channel == self.channel and self.start <= now < self.end


class Hiccup(NamedTuple):
    """Intermittent device-wide hiccups: periodic slow episodes.

    Every ``period`` seconds of simulated time the device enters a
    ``duration``-long episode in which service times multiply by
    ``factor`` — the signature of background GC or firmware housekeeping
    on a sick drive.  Deterministic in sim time (no randomness needed).
    """

    period: float
    duration: float
    factor: float

    def covers(self, now: float) -> bool:
        """Is *now* inside a hiccup episode?"""
        return now % self.period < self.duration


class FaultPlan:
    """What can fail on one device, and when.

    All probabilities are per-request.  An empty plan (the default)
    injects nothing; installing it is behaviour-neutral.
    """

    __slots__ = (
        "read_error_prob",
        "write_error_prob",
        "error_latency",
        "error_windows",
        "slow_factor",
        "slow_windows",
        "stall_prob",
        "stall_duration",
        "power_loss_at",
        "channel_faults",
        "hiccups",
    )

    def __init__(
        self,
        read_error_prob: float = 0.0,
        write_error_prob: float = 0.0,
        error_latency: float = 0.005,
        error_windows: Optional[List[FaultWindow]] = None,
        slow_factor: float = 1.0,
        slow_windows: Optional[List[SlowWindow]] = None,
        stall_prob: float = 0.0,
        stall_duration: float = 60.0,
        power_loss_at: Optional[float] = None,
        channel_faults: Optional[List[ChannelFault]] = None,
        hiccups: Optional[List[Hiccup]] = None,
    ):
        for name, prob in (
            ("read_error_prob", read_error_prob),
            ("write_error_prob", write_error_prob),
            ("stall_prob", stall_prob),
        ):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {prob}")
        if error_latency < 0:
            raise ValueError(f"error_latency must be >= 0, got {error_latency}")
        if slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {slow_factor}")
        if stall_duration < 0:
            raise ValueError(f"stall_duration must be >= 0, got {stall_duration}")
        if power_loss_at is not None and power_loss_at <= 0:
            raise ValueError(f"power_loss_at must be positive, got {power_loss_at}")
        for window in error_windows or ():
            if window.start >= window.end:
                raise ValueError(f"empty fault window {window}")
            if window.op not in (None, READ, WRITE):
                raise ValueError(f"window op must be read/write/None, got {window.op!r}")
        for window in slow_windows or ():
            if window.start >= window.end:
                raise ValueError(f"empty slow window {window}")
            if window.factor < 1.0:
                raise ValueError(f"slow window factor must be >= 1, got {window.factor}")
        for fault in channel_faults or ():
            if fault.channel < 0:
                raise ValueError(f"channel must be >= 0, got {fault.channel}")
            if fault.factor < 1.0:
                raise ValueError(f"channel fault factor must be >= 1, got {fault.factor}")
            if fault.start >= fault.end:
                raise ValueError(f"empty channel fault {fault}")
        for hiccup in hiccups or ():
            if hiccup.period <= 0:
                raise ValueError(f"hiccup period must be positive, got {hiccup.period}")
            if not 0 < hiccup.duration <= hiccup.period:
                raise ValueError(
                    f"hiccup duration must be in (0, period], got {hiccup.duration}"
                )
            if hiccup.factor < 1.0:
                raise ValueError(f"hiccup factor must be >= 1, got {hiccup.factor}")

        self.read_error_prob = read_error_prob
        self.write_error_prob = write_error_prob
        #: Time a failed attempt occupies the device before erroring.
        self.error_latency = error_latency
        self.error_windows: List[FaultWindow] = list(error_windows or ())
        #: Global service-time multiplier (a uniformly slow disk).
        self.slow_factor = slow_factor
        self.slow_windows: List[SlowWindow] = list(slow_windows or ())
        self.stall_prob = stall_prob
        self.stall_duration = stall_duration
        #: Simulated time of an abrupt power cut (None = never).
        self.power_loss_at = power_loss_at
        #: Per-channel fail-slow faults (one sick flash channel).
        self.channel_faults: List[ChannelFault] = list(channel_faults or ())
        #: Periodic device-wide slow episodes (GC-like hiccups).
        self.hiccups: List[Hiccup] = list(hiccups or ())

    @property
    def empty(self) -> bool:
        """True if this plan injects nothing at all."""
        return (
            self.read_error_prob == 0.0
            and self.write_error_prob == 0.0
            and not self.error_windows
            and self.slow_factor == 1.0
            and not self.slow_windows
            and self.stall_prob == 0.0
            and self.power_loss_at is None
            and not self.channel_faults
            and not self.hiccups
        )

    def error_probability(self, op: str) -> float:
        """The transient error probability for *op*."""
        return self.read_error_prob if op == READ else self.write_error_prob

    def __repr__(self) -> str:
        if self.empty:
            return "<FaultPlan empty>"
        parts = []
        if self.read_error_prob:
            parts.append(f"read_err={self.read_error_prob}")
        if self.write_error_prob:
            parts.append(f"write_err={self.write_error_prob}")
        if self.error_windows:
            parts.append(f"windows={len(self.error_windows)}")
        if self.slow_factor != 1.0 or self.slow_windows:
            parts.append("slow")
        if self.stall_prob:
            parts.append(f"stall={self.stall_prob}")
        if self.power_loss_at is not None:
            parts.append(f"power_loss@{self.power_loss_at}")
        if self.channel_faults:
            parts.append(f"channels={len(self.channel_faults)}")
        if self.hiccups:
            parts.append(f"hiccups={len(self.hiccups)}")
        return f"<FaultPlan {' '.join(parts)}>"
