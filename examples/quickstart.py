#!/usr/bin/env python
"""Quickstart: assemble a simulated storage stack and run two workloads.

Builds one machine (HDD, ext4-like filesystem, Split-Token scheduler),
throttles a background writer, and shows that a foreground reader's
throughput is protected — the paper's core isolation story in ~60
lines of user code.

Run:  python examples/quickstart.py
"""

from repro import Environment, HDD, MB, OS
from repro.metrics import ThroughputTracker
from repro.schedulers import SplitToken
from repro.workloads import prefill_file, run_pattern_writer, sequential_reader


def main():
    env = Environment()
    scheduler = SplitToken()
    machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=1024 * MB)

    # --- set the stage: two files on disk -----------------------------
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/reader.dat", 128 * MB)
        yield from prefill_file(machine, setup, "/writer.dat", 128 * MB)

    proc = env.process(setup_proc())
    env.run(until=proc)
    print(f"[{env.now:6.2f}s] files created and flushed")

    # --- a foreground reader and a throttled background writer --------
    reader = machine.spawn("reader")
    writer = machine.spawn("writer")
    scheduler.set_limit(writer, 2 * MB)  # 2 MB/s of normalized I/O

    read_rate = ThroughputTracker("reader")
    write_rate = ThroughputTracker("writer")
    duration = 20.0
    env.process(
        sequential_reader(machine, reader, "/reader.dat", duration, chunk=1 * MB,
                          tracker=read_rate, cold=True)
    )
    env.process(
        run_pattern_writer(machine, writer, "/writer.dat", 4 * 1024, duration,
                           tracker=write_rate)
    )
    env.run(until=env.now + duration)

    print(f"[{env.now:6.2f}s] reader: {read_rate.rate(env.now) / MB:6.1f} MB/s "
          "(isolated from the writer)")
    print(f"[{env.now:6.2f}s] writer: {write_rate.rate(env.now) / MB:6.1f} MB/s "
          "(random writes billed at true disk cost)")
    print(f"disk: {machine.device.stats}")
    print(f"journal commits: {machine.fs.journal.commits}, "
          f"cache hit ratio: {machine.cache.hits}/{machine.cache.hits + machine.cache.misses}")


if __name__ == "__main__":
    main()
