#!/usr/bin/env python
"""Block-level tracing: watch write delegation and journal amplification.

Attaches a BlockTracer to the stack, runs two tenants through a mixed
workload, and prints (a) the *submitter* view a block-level scheduler
would see — almost everything from pdflush/jbd2 — against (b) the
*cause* view the split framework's tags provide, plus the measured
write amplification from journaling.

Run:  python examples/block_trace_analysis.py
"""

from repro import Environment, HDD, KB, MB, OS
from repro.metrics import BlockTracer
from repro.schedulers import SplitNoop
from repro.units import PAGE_SIZE


def main():
    env = Environment()
    machine = OS(env, device=HDD(), scheduler=SplitNoop(), memory_bytes=512 * MB)
    tracer = BlockTracer(machine.block_queue)

    alice = machine.spawn("alice")
    bob = machine.spawn("bob")
    payload = {}

    def tenant(task, path, nbytes):
        handle = yield from machine.creat(task, path)
        yield from handle.append(nbytes)  # buffered: pdflush will submit
        payload[task.name] = nbytes

    env.process(tenant(alice, "/alice.db", 8 * MB))
    env.process(tenant(bob, "/bob.log", 2 * MB))
    env.run(until=env.now + 1.0)
    machine.writeback.request_flush(0)  # let the delegation happen
    env.run(until=env.now + 30.0)

    print("== what a block-level scheduler sees (submitters) ==")
    for name, nbytes in sorted(tracer.bytes_by_submitter().items()):
        print(f"  {name:12s} {nbytes / MB:8.2f} MB")

    print("\n== what split tags reveal (true causes) ==")
    names = {alice.pid: "alice", bob.pid: "bob"}
    for pid, nbytes in sorted(tracer.bytes_by_cause().items()):
        who = names.get(pid, f"pid{pid}")
        print(f"  {who:12s} {nbytes / MB:8.2f} MB")

    total_payload = sum(payload.values())
    print(f"\nwrite amplification: {tracer.amplification(total_payload):.3f}x "
          f"({len(tracer)} requests, "
          f"{tracer.sequential_fraction():.0%} sequential)")
    print("journal/metadata writes:",
          sum(1 for r in tracer.records if r.metadata))


if __name__ == "__main__":
    main()
