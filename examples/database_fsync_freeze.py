#!/usr/bin/env python
"""The database "fsync freeze" problem — and Split-Deadline's fix.

Runs the same WAL database (log appender + big checkpointer) twice:
once over Linux's Block-Deadline, once over Split-Deadline with short
deadlines for the log's fsyncs and long ones for the checkpointer's.
Prints the log appender's fsync latency distribution under each.

This is the paper's §5.2/§7.1 story: block-request deadlines cannot
protect an fsync whose completion depends on a flood of checkpoint
I/O, but scheduling the *fsync call itself* can.

Run:  python examples/database_fsync_freeze.py
"""

import random

from repro import Environment, HDD, KB, MB, OS
from repro.metrics import LatencyRecorder
from repro.schedulers import BlockDeadline, SplitDeadline
from repro.units import PAGE_SIZE
from repro.workloads import fsync_appender, prefill_file


def checkpointer(machine, task, path, blocks, duration, rng):
    env = machine.env
    handle = yield from machine.open(task, path)
    size = handle.inode.size
    end = env.now + duration
    while env.now < end:
        for _ in range(blocks):
            offset = rng.randrange(0, size // PAGE_SIZE) * PAGE_SIZE
            yield from handle.pwrite(offset, PAGE_SIZE)
        yield from handle.fsync()
        yield env.timeout(2.0)


def run(scheduler_name):
    env = Environment()
    if scheduler_name == "block-deadline":
        scheduler = BlockDeadline(read_deadline=0.05, write_deadline=0.02)
    else:
        scheduler = SplitDeadline(read_deadline=0.05, fsync_deadline=0.1)
    machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=1024 * MB)

    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/wal", 4 * KB)
        yield from prefill_file(machine, setup, "/table", 128 * MB)

    proc = env.process(setup_proc())
    env.run(until=proc)

    logger = machine.spawn("log-appender")
    ckpt = machine.spawn("checkpointer")
    if isinstance(scheduler, SplitDeadline):
        scheduler.set_fsync_deadline(logger, 0.1)   # logs want 100 ms
        scheduler.set_fsync_deadline(ckpt, 10.0)    # checkpoints can wait

    latency = LatencyRecorder("wal-fsync")
    duration = 30.0
    env.process(fsync_appender(machine, logger, "/wal", duration, recorder=latency))
    env.process(checkpointer(machine, ckpt, "/table", 1024, duration, random.Random(0)))
    env.run(until=env.now + duration)
    return latency


def main():
    for name in ("block-deadline", "split-deadline"):
        latency = run(name)
        print(f"{name:16s}: {latency.count:4d} commits | "
              f"median {1000 * latency.percentile(50):7.1f} ms | "
              f"p95 {1000 * latency.percentile(95):7.1f} ms | "
              f"max {1000 * latency.max():8.1f} ms")


if __name__ == "__main__":
    main()
