#!/usr/bin/env python
"""Distributed isolation: an HDFS-like cluster over local Split-Token.

Seven workers, 3× replication.  A throttled account and an unthrottled
account each run four writers; the throttled account is capped at a
per-worker rate, and the cluster-level effect (including the lost
tokens from block-placement imbalance, and the improvement from a
smaller block size) is printed — the paper's Figure 21 in miniature.

Run:  python examples/hdfs_cluster.py
"""

from repro import Environment, GB, MB
from repro.apps.hdfs import HDFSCluster
from repro.metrics import ThroughputTracker
from repro.schedulers import SplitToken


def run(block_size, rate_cap, duration=20.0):
    env = Environment()
    cluster = HDFSCluster(
        env, workers=7, replication=3, block_size=block_size,
        scheduler_factory=SplitToken,
    )
    cluster.set_account_limit("tenant-a", rate_cap)

    throttled = ThroughputTracker()
    free = ThroughputTracker()
    for i in range(4):
        env.process(cluster.write_file("tenant-a", f"/a{i}", 16 * GB,
                                       duration=duration, tracker=throttled))
        env.process(cluster.write_file("tenant-b", f"/b{i}", 16 * GB,
                                       duration=duration, tracker=free))
    env.run(until=duration)

    upper = (rate_cap / 3) * 7
    return {
        "throttled": throttled.rate(env.now) / MB,
        "free": free.rate(env.now) / MB,
        "upper_bound": upper / MB,
    }


def main():
    print(f"{'block':>7} {'cap/node':>9} {'throttled':>10} {'bound':>7} "
          f"{'util':>5} {'unthrottled':>12}")
    for block_size in (64 * MB, 16 * MB):
        for rate_cap in (8 * MB, 16 * MB):
            r = run(block_size, rate_cap)
            util = r["throttled"] / r["upper_bound"]
            print(f"{block_size // MB:>5}MB {rate_cap / MB:>7.0f}MB "
                  f"{r['throttled']:>8.1f}MB {r['upper_bound']:>6.1f}MB "
                  f"{util:>5.0%} {r['free']:>10.1f}MB")
    print("\nSmaller blocks spread load better, so fewer tokens go unused")
    print("and the throttled tenant gets closer to its (cap/3)*7 bound.")


if __name__ == "__main__":
    main()
