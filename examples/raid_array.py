#!/usr/bin/env python
"""Running the split stack over a striped array (RAID-0).

The schedulers never look inside the device model, so the same stack
runs unchanged over a 4-disk stripe set: sequential bandwidth scales
with members while the split framework's isolation still holds.

Run:  python examples/raid_array.py
"""

from repro import Environment, HDD, MB, OS
from repro.devices import RAID0
from repro.metrics import ThroughputTracker
from repro.schedulers import SplitToken
from repro.workloads import prefill_file, run_pattern_writer, sequential_reader


def run(device, label):
    env = Environment()
    scheduler = SplitToken()
    machine = OS(env, device=device, scheduler=scheduler, memory_bytes=1024 * MB)
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", 256 * MB)
        yield from prefill_file(machine, setup, "/b", 256 * MB)

    proc = env.process(setup_proc())
    env.run(until=proc)

    reader = machine.spawn("reader")
    noisy = machine.spawn("noisy")
    scheduler.set_limit(noisy, 2 * MB)
    tracker = ThroughputTracker()
    duration = 15.0
    env.process(sequential_reader(machine, reader, "/a", duration, chunk=4 * MB,
                                  tracker=tracker, cold=True))
    env.process(run_pattern_writer(machine, noisy, "/b", 4 * 1024, duration))
    env.run(until=env.now + duration)
    print(f"{label:18s} reader: {tracker.rate(env.now) / MB:7.1f} MB/s")


def main():
    run(HDD(), "single HDD")
    run(RAID0([HDD() for _ in range(4)], stripe_blocks=256), "4-disk RAID-0")


if __name__ == "__main__":
    main()
