#!/usr/bin/env python
"""Multi-tenant isolation: SCS-Token vs Split-Token, six noisy
neighbours.

Tenant A is an unthrottled sequential reader.  Tenant B is capped at
1 MB/s of normalized I/O and cycles through six behaviours (cached
reads, sequential disk reads, random disk reads, buffer overwrites,
sequential writes, random writes).  For each behaviour the script
prints A's throughput (isolation) and B's own throughput — the paper's
Figure 14 as a runnable demo, including the memory-workload blowup
that makes SCS unusable (it bills cache hits as if they were disk I/O).

Run:  python examples/tenant_isolation.py  (takes a few minutes)
"""

from repro.experiments.isolation import SIX_WORKLOADS, run_pair
from repro.units import MB


def main():
    print(f"{'B workload':>11} | {'A (SCS)':>8} {'A (Split)':>9} | "
          f"{'B (SCS)':>9} {'B (Split)':>9}")
    print("-" * 56)
    for workload in SIX_WORKLOADS:
        scs = run_pair("scs", workload, 1 * MB, duration=10.0)
        split = run_pair("split", workload, 1 * MB, duration=10.0)
        print(f"{workload:>11} | {scs['a_mbps']:>7.1f} {split['a_mbps']:>8.1f} | "
              f"{scs['b_mbps']:>8.2f} {split['b_mbps']:>8.2f}")
    print("\nA should be flat under Split (isolation), and B's memory-bound")
    print("workloads should run orders of magnitude faster under Split.")


if __name__ == "__main__":
    main()
