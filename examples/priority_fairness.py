#!/usr/bin/env python
"""Priority fairness: why CFQ fails for buffered writes, and AFQ's fix.

Eight writers at ionice priorities 0-7 write sequentially to their own
files.  Under CFQ everything is submitted by the priority-4 writeback
task, so all threads get the same throughput; AFQ (split-level) tags
the true causes and paces write() admission with stride scheduling, so
throughput tracks priority.

Run:  python examples/priority_fairness.py
"""

from repro import Environment, HDD, MB, OS
from repro.metrics import ThroughputTracker, deviation_from_ideal
from repro.schedulers import AFQ, CFQ
from repro.workloads import sequential_writer


def run(scheduler):
    env = Environment()
    machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=1024 * MB)
    duration = 20.0
    trackers = {}
    for priority in range(8):
        task = machine.spawn(f"writer-p{priority}", priority=priority)
        tracker = trackers[priority] = ThroughputTracker()
        env.process(
            sequential_writer(machine, task, f"/out{priority}", duration,
                              chunk=1 * MB, tracker=tracker)
        )
    env.run(until=duration)
    return {p: t.rate(until=duration) / MB for p, t in trackers.items()}


def main():
    ideal = {p: 8 - p for p in range(8)}
    print(f"{'prio':>4} {'ideal%':>7} {'CFQ MB/s':>9} {'AFQ MB/s':>9}")
    cfq_rates = run(CFQ())
    afq_rates = run(AFQ())
    total_ideal = sum(ideal.values())
    for p in range(8):
        print(f"{p:>4} {100 * ideal[p] / total_ideal:>6.1f}% "
              f"{cfq_rates[p]:>9.1f} {afq_rates[p]:>9.1f}")
    print(f"\ndeviation from priority-proportional ideal: "
          f"CFQ {deviation_from_ideal(cfq_rates, ideal):.0f}%  "
          f"AFQ {deviation_from_ideal(afq_rates, ideal):.0f}%")


if __name__ == "__main__":
    main()
