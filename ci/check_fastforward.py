"""Shape-equivalence gate for analytical fast-forward.

Compares two ``repro run fig01`` outputs — one event-accurate, one with
``--fast-forward`` — and fails if the figure's *shape* diverged.
Fast-forward replay is an approximation, not a bit-exact transform:
replayed calls skip per-page cache bookkeeping, so summary numbers may
drift by a few percent.  What must survive is the story the figure
tells: the reader's pre-burst throughput, the magnitude of its
post-burst degradation, and the ordering between schedulers (CFQ
degrades under the burst's writeback; split-level isolation does not).

Usage::

    python ci/check_fastforward.py accurate.json fastforward.json

Exit 0 when every cell matches within tolerance, 1 otherwise.
"""

from __future__ import annotations

import json
import sys

#: Pre-burst throughput is uncontended and heavily replayed — it must
#: land almost exactly on the event-accurate value.
BEFORE_TOL = 0.05
#: Post-burst metrics include the measured/replayed boundary around
#: writeback transients; allow a wider (still shape-preserving) band.
AFTER_TOL = 0.25


def _load(path: str) -> dict:
    with open(path) as fh:
        text = "".join(line for line in fh if not line.startswith("#"))
    return json.loads(text)


def _rel_close(a: float, b: float, tol: float) -> bool:
    scale = max(abs(a), abs(b))
    return scale == 0 or abs(a - b) <= tol * scale


def check(accurate: dict, fastforward: dict) -> int:
    failures = []

    def expect(cond: bool, message: str) -> None:
        status = "ok" if cond else "SHAPE DIVERGENCE"
        print(f"  {message} -> {status}", file=sys.stderr)
        if not cond:
            failures.append(message)

    if set(accurate) != set(fastforward):
        print(
            f"cell sets differ: {sorted(accurate)} vs {sorted(fastforward)}",
            file=sys.stderr,
        )
        return 1

    for name in sorted(accurate):
        off, on = accurate[name], fastforward[name]
        print(f"cell {name}:", file=sys.stderr)
        expect(
            len(off["series_t"]) == len(on["series_t"]),
            f"series length {len(off['series_t'])} vs {len(on['series_t'])}",
        )
        expect(
            off["burst_finished"] == on["burst_finished"],
            f"burst_finished {off['burst_finished']} vs {on['burst_finished']}",
        )
        for key, tol in (
            ("reader_before_mbps", BEFORE_TOL),
            ("reader_after_mbps", AFTER_TOL),
            ("degradation", AFTER_TOL),
        ):
            expect(
                _rel_close(off[key], on[key], tol),
                f"{key} {off[key]:.3f} vs {on[key]:.3f} (tol {tol:.0%})",
            )

    # The figure's headline: CFQ suffers from the burst, split does not.
    # Whatever ordering the event-accurate run shows with a clear margin
    # must survive fast-forward.
    if {"cfq", "split"} <= set(accurate):
        off_gap = accurate["cfq"]["degradation"] - accurate["split"]["degradation"]
        on_gap = fastforward["cfq"]["degradation"] - fastforward["split"]["degradation"]
        print("scheduler ordering:", file=sys.stderr)
        expect(
            off_gap <= 0.1 or on_gap > 0,
            f"cfq-split degradation gap {off_gap:.3f} vs {on_gap:.3f}",
        )

    if failures:
        print(f"{len(failures)} shape check(s) failed", file=sys.stderr)
        return 1
    print("fast-forward output matches the event-accurate shape", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return check(_load(argv[0]), _load(argv[1]))


if __name__ == "__main__":
    sys.exit(main())
