#!/bin/bash
# Final verification runs: full test suite, then the benchmark suite.
cd /root/repo
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
echo "FINAL_RUNS_COMPLETE" >> /root/repo/bench_output.txt
