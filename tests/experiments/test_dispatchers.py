"""Tests for experiment entry-point validation (cheap, no simulation)."""

import pytest


def test_fig11_rejects_unknown_panel_and_scheduler():
    from repro.experiments import fig11_afq_priority

    with pytest.raises(ValueError):
        fig11_afq_priority.run("mystery", "afq")
    with pytest.raises(ValueError):
        fig11_afq_priority._make("bfq")


def test_fig11_ideal_weights():
    from repro.experiments.fig11_afq_priority import IDEAL

    assert IDEAL[0] == 8 and IDEAL[7] == 1
    assert sum(IDEAL.values()) == 36


def test_fig01_rejects_unknown_scheduler():
    from repro.experiments import fig01_write_burst

    with pytest.raises(ValueError):
        fig01_write_burst.run(scheduler="bfq", duration=1.0)


def test_fig12_table3_settings_sane():
    from repro.experiments.fig12_fsync_isolation import TABLE3

    for device, settings in TABLE3.items():
        # fsync deadlines exceed block deadlines: each fsync causes
        # multiple block writes (the paper's Table 3 rationale).
        assert settings["a_fsync"] > settings["block_write"]
        assert settings["b_fsync"] > settings["a_fsync"]


def test_fig12_rejects_unknown_scheduler():
    from repro.experiments import fig12_fsync_isolation

    with pytest.raises(ValueError):
        fig12_fsync_isolation.run(scheduler="cfq", duration=1.0)


def test_fig19_rejects_unknown_config():
    from repro.experiments import fig19_postgres

    with pytest.raises(ValueError):
        fig19_postgres.run_config("split-magic", duration=1.0)


def test_fig18_rejects_unknown_scheduler():
    from repro.experiments import fig18_sqlite

    with pytest.raises(ValueError):
        fig18_sqlite.run_cell("noop", threshold=10, duration=1.0)


def test_isolation_rejects_unknown_workload_and_scheduler():
    from repro.experiments.isolation import _b_workload, make_scheduler

    with pytest.raises(ValueError):
        make_scheduler("cfq")
    with pytest.raises(ValueError):
        _b_workload(None, None, "read-backwards", 1.0, None, 0)


def test_fig15_rejects_unknown_workload():
    from repro.experiments.fig15_scalability import _b_thread

    with pytest.raises(ValueError):
        _b_thread(None, None, "sleep", 1.0)


def test_fig20_rejects_unknown_guest_workload():
    from repro.experiments.fig20_qemu import _guest_workload

    class FakeVM:
        guest = None

    with pytest.raises(ValueError):
        _guest_workload(FakeVM(), None, "read-backwards", 1.0, None)


def test_isolation_six_workloads_list_matches_fig14():
    from repro.experiments.isolation import SIX_WORKLOADS

    assert len(SIX_WORKLOADS) == 6
    assert {"read-mem", "write-mem"} <= set(SIX_WORKLOADS)


def test_experiment_registry_is_complete():
    from repro.experiments import EXPERIMENTS

    # Every evaluation figure of the paper plus Table 1.
    expected = {f"fig{n:02d}" for n in (1, 3, 5, 6, 9, 10, 11, 12, 13, 14,
                                        15, 16, 17, 18, 19, 20, 21)}
    expected.add("tab1")
    assert expected <= set(EXPERIMENTS)
