"""Parallel experiment runner: determinism and plumbing.

The runner's contract is that fanning an experiment's cells across
worker processes changes wall-clock time and nothing else: the merged
result (and any fault summaries) must be byte-identical to a serial
run.  These tests pin that contract at reduced simulation scale.
"""

import json

import pytest

from repro.cli import _jsonable
from repro.experiments import runner
from repro.faults import FaultPlan
from repro.units import KB, MB

#: Reduced-scale overrides per experiment: big enough to exercise real
#: scheduling, small enough for a unit-test budget.
SCALED = {
    "fig01": {"duration": 8.0, "burst_at": 2.0, "burst_bytes": 16 * MB,
              "reader_file": 48 * MB},
    "fig13": {"run_sizes": [16 * KB, 1 * MB], "duration": 2.0},
    "fig17": {"sleeps": [0.0, 0.008], "duration": 2.0},
}


def _fingerprint(outcome) -> str:
    return json.dumps(
        {"result": _jsonable(outcome.result), "faults": _jsonable(outcome.faults)},
        sort_keys=True,
    )


@pytest.mark.parametrize("key", sorted(SCALED))
def test_serial_and_parallel_results_identical(key):
    serial = runner.run_experiment(key, SCALED[key], jobs=1)
    parallel = runner.run_experiment(key, SCALED[key], jobs=4)
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_parallel_fault_summaries_match_serial():
    plan = FaultPlan(read_error_prob=0.02)
    overrides = {"duration": 2.0}
    serial = runner.run_experiment(
        "fig12", overrides, jobs=1, fault_plan=plan, fault_seed=7)
    parallel = runner.run_experiment(
        "fig12", overrides, jobs=2, fault_plan=plan, fault_seed=7)
    assert serial.faults, "fault plan should produce summaries"
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_experiment_run_matches_runner_serial():
    """The module's own run() and the runner agree (same cells+merge)."""
    from repro.experiments import fig13_split_token_ext4 as fig13

    direct = fig13.run(**SCALED["fig13"])
    routed = runner.run_experiment("fig13", SCALED["fig13"], jobs=1)
    assert _jsonable(direct) == _jsonable(routed.result)


def test_cells_fallback_for_module_without_cells():
    """Experiments that expose no cells() degrade to a single cell."""
    cells = runner.experiment_cells("fig03", {"duration": 1.0})
    assert len(cells) == 1
    assert cells[0].experiment == "fig03"


def test_call_cell_resolves_local_and_colon_paths():
    from repro.devices import HDD, SSD

    local = runner.call_cell("repro.experiments.common", "make_device", {"kind": "hdd"})
    assert isinstance(local, HDD)
    remote = runner.call_cell(
        "repro.experiments.fig13_split_token_ext4",
        "repro.experiments.common:make_device",
        {"kind": "ssd"},
    )
    assert isinstance(remote, SSD)
