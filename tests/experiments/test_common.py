"""Tests for the experiment plumbing helpers."""

import pytest

from repro.devices import HDD, SSD
from repro.experiments.common import build_stack, drive, format_table, make_device, run_for
from repro.fs.xfs import XFS
from repro.schedulers import Noop
from repro.units import MB


def test_make_device_kinds():
    assert isinstance(make_device("hdd"), HDD)
    assert isinstance(make_device("ssd"), SSD)
    with pytest.raises(ValueError):
        make_device("nvme")


def test_build_stack_defaults():
    env, machine = build_stack(scheduler=Noop(), memory_bytes=64 * MB)
    assert machine.fs.name == "ext4"
    assert machine.cache.memory_bytes == 64 * MB


def test_build_stack_with_fs_class():
    env, machine = build_stack(scheduler=Noop(), fs_class=XFS, memory_bytes=64 * MB)
    assert machine.fs.name == "xfs"
    assert machine.fs.full_integration is False


def test_build_stack_writeback_toggle():
    env, machine = build_stack(scheduler=Noop(), writeback_enabled=False, memory_bytes=64 * MB)
    assert not machine.writeback.enabled


def test_drive_and_run_for():
    env, machine = build_stack(scheduler=Noop(), memory_bytes=64 * MB)
    machine.spawn("t")

    def proc():
        yield env.timeout(1.5)
        return "done"

    assert drive(env, proc()) == "done"
    run_for(env, 2.0)
    assert env.now == pytest.approx(3.5)


def test_format_table_alignment():
    table = format_table(["name", "value"], [["a", 1], ["longer", 22]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "------" in lines[1]
    assert lines[3].startswith("longer")


def test_build_stack_installs_and_clears_fault_plan():
    from repro.experiments import common
    from repro.faults import FaultPlan, FaultyDevice

    common.set_default_fault_plan(FaultPlan(read_error_prob=0.5), seed=3)
    try:
        env, machine = common.build_stack(scheduler=Noop(), memory_bytes=64 * MB)
        assert isinstance(machine.block_queue.device, FaultyDevice)
        summaries = common.drain_fault_summaries()
        assert len(summaries) == 1
        assert summaries[0]["device"].startswith("faulty-")
    finally:
        common.clear_default_fault_plan()
    env, machine = common.build_stack(scheduler=Noop(), memory_bytes=64 * MB)
    assert not isinstance(machine.block_queue.device, FaultyDevice)


def test_empty_fault_plan_is_not_installed():
    from repro.experiments import common
    from repro.faults import FaultPlan, FaultyDevice

    common.set_default_fault_plan(FaultPlan(), seed=1)  # empty: a no-op
    try:
        env, machine = common.build_stack(scheduler=Noop(), memory_bytes=64 * MB)
        assert not isinstance(machine.block_queue.device, FaultyDevice)
    finally:
        common.clear_default_fault_plan()
