"""Tiny-scale smoke tests: every experiment module runs end to end.

These use drastically reduced durations/sizes — they check plumbing
(the benchmarks check the paper's findings at full scale).
"""

import pytest

from repro.units import KB, MB


def test_fig01_smoke():
    from repro.experiments import fig01_write_burst

    result = fig01_write_burst.run(
        "cfq", duration=6.0, burst_bytes=4 * MB, burst_at=2.0,
        reader_file=16 * MB, memory_bytes=32 * MB,
    )
    assert result["reader_before_mbps"] > 0
    assert len(result["series_t"]) > 0


def test_fig03_smoke():
    from repro.experiments import fig03_cfq_writeback

    result = fig03_cfq_writeback.run(duration=4.0, memory_bytes=128 * MB)
    assert set(result["throughput_mbps"]) == set(range(8))
    assert abs(sum(result["submitter_priority_share"].values()) - 1.0) < 1e-6


def test_fig05_smoke():
    from repro.experiments import fig05_latency_dependency

    result = fig05_latency_dependency.run(sizes=(16 * KB, 256 * KB), duration=4.0, b_file=8 * MB)
    assert len(result["mean_ms"]) == 2
    assert all(m > 0 for m in result["mean_ms"])


def test_fig09_smoke():
    from repro.experiments import fig09_time_overhead

    result = fig09_time_overhead.run(thread_counts=(1, 4), duration=1.0)
    assert len(result["block_mbps"]) == 2
    assert all(rate > 0 for rate in result["block_mbps"])


def test_fig10_smoke():
    from repro.experiments import fig10_space_overhead

    result = fig10_space_overhead.run(dirty_ratios=(0.1, 0.3), duration=4.0,
                                      writers=2, memory_bytes=128 * MB)
    assert len(result["max_overhead_mb"]) == 2
    assert all(m > 0 for m in result["max_overhead_mb"])


@pytest.mark.parametrize("panel", ["read", "async_write", "memory"])
def test_fig11_smoke(panel):
    from repro.experiments import fig11_afq_priority

    result = fig11_afq_priority.run(panel, "afq", duration=2.0)
    assert result["total_mbps"] > 0


def test_fig12_smoke():
    from repro.experiments import fig12_fsync_isolation

    result = fig12_fsync_isolation.run("split", device="ssd", duration=4.0, b_file=8 * MB)
    assert result["a_count"] > 0
    assert result["a_mean_ms"] > 0


def test_isolation_cell_smoke():
    from repro.experiments.isolation import run_pair

    cell = run_pair("split", "write-mem", 1 * MB, duration=2.0,
                    a_file=8 * MB, b_file=16 * MB, memory_bytes=128 * MB)
    assert cell["a_mbps"] > 0
    assert cell["b_mbps"] > 0


def test_fig17_smoke():
    from repro.experiments import fig17_metadata

    cell = fig17_metadata.run_cell("ext4", sleep=0.01, duration=2.0)
    assert cell["a_mbps"] > 0


def test_fig18_smoke():
    from repro.experiments import fig18_sqlite

    cell = fig18_sqlite.run_cell("split", threshold=50, duration=4.0,
                                 table_bytes=8 * MB, device="ssd")
    assert cell["transactions"] > 0


def test_fig19_smoke():
    from repro.experiments import fig19_postgres

    result = fig19_postgres.run_config("block", duration=4.0, checkpoint_interval=2.0,
                                       table_bytes=8 * MB, workers=2, rate_per_worker=50)
    assert result["transactions"] > 0


def test_fig21_smoke():
    from repro.experiments import fig21_hdfs

    cell = fig21_hdfs.run_cell(4 * MB, block_size=8 * MB, duration=4.0,
                               workers=4, writers_per_group=1)
    assert cell["throttled_mbps"] >= 0
    assert cell["unthrottled_mbps"] > 0


def test_registry_modules_importable():
    import importlib

    from repro.experiments import EXPERIMENTS

    for key, (module_name, title) in EXPERIMENTS.items():
        module = importlib.import_module(module_name)
        assert hasattr(module, "run"), f"{key} lacks run()"
        assert title
