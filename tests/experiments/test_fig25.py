"""Figure 25 (file-API tenants under reprofs) at reduced scale.

Pins the figure's claim: when a parquet-style scan and a random-read
dataset loader — both ordinary file-API code running through the
reprofs frontend — contend on one disk, Split-Token's rate contract on
the loader preserves the scan's solo bandwidth while CFQ round-robins
it away.  Also pins the runner contract (cells fan out and merge back
to the in-process result).
"""

import pytest

from repro.experiments import fig25_reprofs_tenants as fig25
from repro.experiments import runner
from repro.units import KB, MB

#: Small enough for a unit-test budget, long enough (12 scan passes)
#: to span many CFQ time slices — one pass fits inside a single slice
#: and would make CFQ look accidentally isolating.
SCALED = dict(
    scan_bytes=8 * MB,
    row_groups=4,
    columns=4,
    selected_columns=2,
    shards=4,
    shard_bytes=4 * MB,
    loader_threads=3,
    loader_chunk=128 * KB,
    loader_rate=2 * MB,
    memory_bytes=16 * MB,
    scan_passes=12,
)


@pytest.fixture(scope="module")
def result():
    return fig25.run(**SCALED)


def test_split_token_retains_scan_bandwidth(result):
    retention = result["retention"]
    assert retention["split-token"] > 0.85, retention


def test_cfq_does_not_isolate(result):
    retention = result["retention"]
    assert retention["cfq"] < 0.7, retention
    assert retention["split-token"] > retention["cfq"] + 0.2


def test_loader_held_near_contract(result):
    by_sched = {p["scheduler"]: p for p in result["points"]}
    # CFQ gives the loader whatever it can grab; Split-Token holds it
    # around the 2 MB/s contract.
    assert by_sched["cfq"]["loader_mbps"] > 4.0
    assert by_sched["split-token"]["loader_mbps"] < 4.0


def test_cells_carry_serialized_configs():
    import json

    cells = fig25.cells(**SCALED)
    assert [label for label, _, _ in cells] == [
        "cfq/solo", "cfq/contended", "split-token/solo", "split-token/contended",
    ]
    for _label, func, kwargs in cells:
        assert func == "tenant_cell"
        assert isinstance(kwargs["config"], dict)  # to_dict payload, pool-safe
        json.dumps(kwargs["config"])  # must survive pickling boundaries


def test_serial_and_parallel_identical(result):
    # Worker processes rebuild stacks (and their reprofs tenants) from
    # serialized StackConfigs; the merged result must match in-process.
    parallel = runner.run_experiment("fig25", SCALED, jobs=2)
    assert parallel.result["retention"] == pytest.approx(result["retention"])
