"""Tests for the batch exporter."""

import json

import pytest

from repro.experiments.export import export_all, run_experiment


def test_run_experiment_unknown_key():
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_run_experiment_returns_payload():
    payload = run_experiment("fig09", {"thread_counts": [1], "duration": 0.5})
    assert payload["experiment"] == "fig09"
    assert payload["wall_seconds"] >= 0
    assert payload["result"]["threads"] == [1]


def test_export_all_writes_json_and_report(tmp_path):
    written = export_all(
        tmp_path,
        only=["fig09"],
        overrides={"fig09": {"thread_counts": [1], "duration": 0.5}},
        progress=lambda *_: None,
    )
    assert "fig09" in written
    data = json.loads((tmp_path / "fig09.json").read_text())
    assert data["title"].startswith("Figure 9")
    report = (tmp_path / "REPORT.md").read_text()
    assert "fig09" in report


def test_export_all_records_failures(tmp_path):
    written = export_all(
        tmp_path,
        only=["fig09"],
        overrides={"fig09": {"no_such_kwarg": 1}},
        progress=lambda *_: None,
    )
    assert written == {}
    assert "FAILED" in (tmp_path / "REPORT.md").read_text()
