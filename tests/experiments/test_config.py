"""StackConfig: validation, serialization round-trips, assembly."""

import pytest

from repro.cache.writeback import WritebackConfig
from repro.config import StackConfig
from repro.experiments.common import build_stack
from repro.faults import FaultPlan
from repro.faults.plan import FaultWindow, SlowWindow
from repro.fs import XFS, Ext4
from repro.schedulers import CFQ, SplitToken
from repro.units import MB


def test_defaults_round_trip():
    config = StackConfig()
    assert StackConfig.from_dict(config.to_dict()) == config


def test_full_round_trip_with_nested_objects():
    plan = FaultPlan(
        read_error_prob=0.01,
        write_error_prob=0.02,
        error_windows=[FaultWindow(1.0, 2.0)],
        slow_factor=3.0,
        slow_windows=[SlowWindow(4.0, 5.0, 2.0)],
        power_loss_at=9.5,
    )
    config = StackConfig(
        device="ssd",
        scheduler="split-token",
        memory_bytes=256 * MB,
        fs="xfs",
        writeback=WritebackConfig(dirty_ratio=0.5),
        cores=4,
        queue_depth=32,
        fault_plan=plan,
        fault_seed=7,
    )
    payload = config.to_dict()
    rebuilt = StackConfig.from_dict(payload)
    # Nested objects serialize to dicts, so compare semantically: the
    # rebuilt config must resolve to equivalent live objects.
    assert rebuilt.to_dict() == payload
    assert rebuilt.make_fs_class() is XFS
    assert rebuilt.make_writeback_config().dirty_ratio == 0.5
    rebuilt_plan = rebuilt.make_fault_plan()
    assert rebuilt_plan.read_error_prob == plan.read_error_prob
    assert rebuilt_plan.error_windows == [FaultWindow(1.0, 2.0)]
    assert rebuilt_plan.slow_windows == [SlowWindow(4.0, 5.0, 2.0)]
    assert rebuilt_plan.power_loss_at == 9.5


def test_to_dict_is_json_safe():
    import json

    config = StackConfig(
        scheduler="cfq", fs="ext4",
        writeback=WritebackConfig(), fault_plan=FaultPlan(stall_prob=0.1),
    )
    payload = json.loads(json.dumps(config.to_dict()))
    assert StackConfig.from_dict(payload).to_dict() == config.to_dict()


def test_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        StackConfig(queue_depth=0)
    with pytest.raises(ValueError):
        StackConfig(memory_bytes=0)
    with pytest.raises(ValueError):
        StackConfig(cores=0)
    with pytest.raises(ValueError):
        StackConfig(fs="zfs").to_dict()


def test_instance_fields_resolve_and_serialize():
    config = StackConfig(scheduler=CFQ(), fs=Ext4)
    assert config.scheduler_name() == "cfq"
    assert config.to_dict()["scheduler"] == "cfq"
    assert config.to_dict()["fs"] == "ext4"
    assert config.make_scheduler() is config.scheduler  # instances pass through
    assert isinstance(StackConfig(scheduler="split-token").make_scheduler(), SplitToken)


def test_unnameable_scheduler_fails_to_serialize():
    class Custom(CFQ):
        name = "custom-not-registered"

    config = StackConfig(scheduler=Custom())
    with pytest.raises(ValueError):
        config.to_dict()


def test_replace_returns_updated_copy():
    base = StackConfig(device="ssd")
    deep = base.replace(queue_depth=32)
    assert deep.queue_depth == 32 and base.queue_depth is None
    assert deep.device == "ssd"


def test_from_kwargs_accepts_legacy_spellings():
    config = StackConfig.from_kwargs(
        device="ssd", fs_class=XFS, writeback_config=WritebackConfig(dirty_ratio=0.4),
        memory_bytes=128 * MB,
    )
    assert config.fs is XFS
    assert config.writeback.dirty_ratio == 0.4
    assert config.memory_bytes == 128 * MB


def test_build_stack_consumes_config():
    config = StackConfig(device="ssd", scheduler="cfq", queue_depth=4,
                         memory_bytes=64 * MB)
    env, machine = build_stack(config)
    assert machine.block_queue.queue_depth == 4
    assert machine.block_queue.nslots == 4
    assert isinstance(machine.block_queue.scheduler, CFQ)
    assert machine.block_queue.device.name == "ssd"


def test_build_stack_rejects_config_plus_kwargs():
    with pytest.raises(TypeError):
        build_stack(StackConfig(), memory_bytes=64 * MB)


def test_build_stack_legacy_kwargs_still_work():
    env, machine = build_stack(memory_bytes=64 * MB, device="hdd")
    assert machine.block_queue.queue_depth == 1
    assert machine.block_queue.device.name == "hdd"
