"""Figure 22 (multi-queue dispatch sweep) at reduced scale.

Pins the two claims the figure makes — deeper tagged queuing scales
random-read throughput on the SSD, and Split-Token isolation is
depth-invariant — plus the runner contract that fanning the sweep's
cells (whose configs carry ``queue_depth > 1``) across worker
processes changes nothing.
"""

import json

import pytest

from repro.cli import _jsonable
from repro.experiments import fig22_queue_depth as fig22
from repro.experiments import runner

#: Small enough for a unit-test budget, big enough that depth 32 keeps
#: all ten SSD channels busy.
SCALED = dict(
    depths=[1, 32],
    threads=16,
    duration=0.3,
    isolation_duration=1.0,
)


@pytest.fixture(scope="module")
def result():
    return fig22.run(**SCALED)


def test_depth_scales_throughput(result):
    t1, t32 = result["throughput_mbps"]
    assert result["depths"] == [1, 32]
    assert result["nslots"] == [1, 10]  # 32 tags cap at 10 channels
    assert t32 > 1.5 * t1, f"depth 32 should scale well past depth 1 ({t1=} {t32=})"
    assert result["scaling"][0] == 1.0


def test_isolation_holds_at_every_depth(result):
    iso = result["isolation"]
    # The throttled writer's rate must not depend on dispatch depth:
    # depth-aware service_charge keeps token accounting exact when
    # service windows overlap.
    b1, b32 = iso["b_mbps"]
    assert b1 == pytest.approx(b32, rel=0.01)
    a1, a32 = iso["a_mbps"]
    assert a1 > iso["b_target_mbps"], "A must run far above B's cap"
    assert a32 == pytest.approx(a1, rel=0.01)


def test_serial_and_parallel_identical_at_depth():
    """Worker processes rebuild depth>1 stacks from serialized
    StackConfigs; the merged JSON must match a serial run byte for
    byte."""
    serial = runner.run_experiment("fig22", SCALED, jobs=1)
    parallel = runner.run_experiment("fig22", SCALED, jobs=2)
    fingerprint = lambda o: json.dumps(_jsonable(o.result), sort_keys=True)  # noqa: E731
    assert fingerprint(serial) == fingerprint(parallel)


def test_cells_carry_serialized_configs():
    cell_list = fig22.cells(**SCALED)
    assert len(cell_list) == 4  # throughput + isolation per depth
    for _label, _func, kwargs in cell_list:
        config = kwargs["config"]
        assert isinstance(config, dict)  # to_dict payload, pool-safe
        json.dumps(config)  # must survive pickling boundaries as JSON
    depths = [c[2]["config"]["queue_depth"] for c in cell_list]
    assert depths == [1, 32, 1, 32]
