"""Figure 23 (hedged dispatch under fail-slow) at reduced scale.

Pins the figure's three claims: hedging cuts fail-slow tail latency
hard at depth >= 4, it is provably inert at depth 1 (byte-identical
latencies, zero hedges), and Split-Token isolation holds whether the
device is healthy or fail-slow.
"""

import json

import pytest

from repro.cli import _jsonable
from repro.experiments import fig23_fail_slow as fig23
from repro.experiments import runner

#: Reduced sweep: the two severity extremes, depth 1 vs 4, a short
#: window.  Severity 32 on one of ten channels is the paper-style
#: "one sick flash channel" case fig23 plots.
SCALED = dict(
    severities=[1, 32],
    depths=[1, 4],
    threads=8,
    duration=1.0,
    isolation_duration=2.0,
)


@pytest.fixture(scope="module")
def result():
    return fig23.run(**SCALED)


def test_hedging_cuts_failslow_p99_at_depth(result):
    depth4 = result["latency"][4]
    unhedged_p99 = depth4["unhedged"]["p99"][1]  # severity 32
    hedged_p99 = depth4["hedged"]["p99"][1]
    assert hedged_p99 <= unhedged_p99 / 2.0, (
        f"hedging must at least halve fail-slow p99 at depth 4 "
        f"({unhedged_p99=} {hedged_p99=})"
    )
    assert depth4["hedged"]["hedge_wins"][1] > 0


def test_hedging_near_free_when_healthy(result):
    depth4 = result["latency"][4]
    unhedged_p99 = depth4["unhedged"]["p99"][0]  # severity 1
    hedged_p99 = depth4["hedged"]["p99"][0]
    assert hedged_p99 <= unhedged_p99 * 1.25, (
        "hedging on a healthy device must not cost meaningful p99"
    )


def test_depth1_hedge_is_byte_identical(result):
    depth1 = result["latency"][1]
    assert depth1["unhedged"]["p99"] == depth1["hedged"]["p99"]
    assert depth1["unhedged"]["p50"] == depth1["hedged"]["p50"]
    assert depth1["hedged"]["hedges_issued"] == [0, 0]


def test_monitor_reports_health_fields(result):
    """Hedged cells carry the monitor's verdict.  A fault present from
    t=0 yields degradation ~1.0 by design — the baseline learns the
    degraded mix, so there is no *onset* to flag — while the p95
    deadline (which drives the hedging itself) still exposes the slow
    tail; onset detection is pinned in tests/health/test_monitor.py."""
    sick = result["latency"][4]["hedged"]["cells"][1]
    assert sick["health_state"] in ("healthy", "degraded", "failed")
    assert sick["degradation"] >= 1.0
    assert sick["hedges_issued"] > 0
    healthy = result["latency"][4]["hedged"]["cells"][0]
    assert healthy["health_state"] == "healthy"


def test_isolation_immune_to_failslow(result):
    iso = result["isolation"]
    assert iso["failslow"]["b_mbps"] == pytest.approx(
        iso["healthy"]["b_mbps"], rel=0.01
    ), "Split-Token must re-price against degraded throughput, not collapse"


def test_serial_and_parallel_identical():
    scaled = dict(SCALED, threads=4, duration=0.5, isolation_duration=1.0)
    serial = runner.run_experiment("fig23", scaled, jobs=1)
    parallel = runner.run_experiment("fig23", scaled, jobs=2)
    fingerprint = lambda o: json.dumps(_jsonable(o.result), sort_keys=True)  # noqa: E731
    assert fingerprint(serial) == fingerprint(parallel)
