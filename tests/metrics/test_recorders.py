"""Tests for metric recorders and statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    LatencyRecorder,
    ThroughputTracker,
    TimeSeries,
    deviation_from_ideal,
    percentile,
)


def test_percentile_basic():
    data = [1, 2, 3, 4, 5]
    assert percentile(data, 0) == 1
    assert percentile(data, 50) == 3
    assert percentile(data, 100) == 5


def test_percentile_interpolates():
    assert percentile([0, 10], 25) == pytest.approx(2.5)


def test_percentile_validates():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
def test_percentile_bounded_by_min_max(data):
    for p in (0, 25, 50, 75, 99, 100):
        value = percentile(data, p)
        assert min(data) <= value <= max(data)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
def test_percentile_monotonic(data):
    values = [percentile(data, p) for p in (10, 50, 90, 99)]
    assert values == sorted(values)


def test_deviation_zero_for_perfect_match():
    ideal = {1: 8, 2: 4, 3: 2}
    actual = {1: 80, 2: 40, 3: 20}  # same shares, different scale
    assert deviation_from_ideal(actual, ideal) == pytest.approx(0)


def test_deviation_for_flat_allocation():
    """Equal shares against an 8..1 weighted ideal — the Figure 3 case."""
    ideal = {p: 8 - p for p in range(8)}
    actual = {p: 1.0 for p in range(8)}
    deviation = deviation_from_ideal(actual, ideal)
    assert 70 < deviation < 95  # the paper reports ~82% for CFQ


def test_deviation_requires_same_keys():
    with pytest.raises(ValueError):
        deviation_from_ideal({1: 1}, {1: 1, 2: 1})


def test_latency_recorder_stats():
    recorder = LatencyRecorder("x")
    for i, latency in enumerate([0.01, 0.02, 0.5]):
        recorder.record(float(i), latency)
    assert recorder.count == 3
    assert recorder.mean() == pytest.approx(0.53 / 3)
    assert recorder.max() == 0.5
    assert recorder.over(0.1) == pytest.approx(1 / 3)


def test_latency_recorder_empty():
    recorder = LatencyRecorder()
    assert recorder.over(1.0) == 0.0
    with pytest.raises(ValueError):
        recorder.mean()


def test_throughput_tracker_rate():
    tracker = ThroughputTracker()
    tracker.start(10.0)
    tracker.add(100, 11.0)
    tracker.add(100, 20.0)
    assert tracker.rate() == pytest.approx(200 / 10)
    assert tracker.rate(until=30.0) == pytest.approx(200 / 20)


def test_throughput_tracker_no_samples():
    assert ThroughputTracker().rate() == 0.0


def test_time_series_window_average():
    series = TimeSeries()
    for t in range(10):
        series.record(float(t), float(t * 10))
    assert series.window_average(0, 5) == pytest.approx(20)
    assert series.window_average(100, 200) == 0.0
    assert len(series) == 10


def test_fault_summary_reports_queue_and_injector_counters():
    from repro import Environment
    from repro.block import BlockQueue, BlockRequest
    from repro.block.request import WRITE
    from repro.devices import SSD
    from repro.faults import FaultInjector, FaultPlan, FaultyDevice
    from repro.metrics import fault_summary
    from repro.proc import ProcessTable
    from repro.schedulers.noop import Noop
    from repro.sim.rand import RandomStreams

    env = Environment()
    injector = FaultInjector(
        env, FaultPlan(write_error_prob=1.0), RandomStreams(0), stream_name="faults.ssd"
    )
    device = FaultyDevice(SSD(), injector)
    table = ProcessTable()
    queue = BlockQueue(env, device, Noop(), process_table=table)
    request = BlockRequest(WRITE, 0, 4, table.spawn("t"))
    queue.submit(request)
    env.run(until=request.done)

    summary = fault_summary(queue)
    assert summary["device"] == "faulty-ssd"
    assert summary["failed"] == 1
    assert summary["device_errors"] == 4  # 1 + max_retries attempts
    assert summary["retries"] == 3
    assert summary["injected"]["injected_write_errors"] == 4
    assert summary["injected"]["stream"] == "faults.ssd"


def test_fault_summary_on_plain_device_omits_injector():
    from repro import Environment
    from repro.block import BlockQueue
    from repro.devices import SSD
    from repro.metrics import fault_summary
    from repro.schedulers.noop import Noop

    queue = BlockQueue(Environment(), SSD(), Noop())
    summary = fault_summary(queue)
    assert summary["device"] == "ssd"
    assert "injected" not in summary
