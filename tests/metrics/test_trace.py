"""Tests for the block tracer and iostat sampler."""

import pytest

from repro import Environment, OS, SSD, HDD, KB, MB
from repro.metrics import BlockTracer, IOStat
from repro.schedulers import Noop
from repro.workloads import prefill_file, sequential_reader


def make_os(device=None):
    env = Environment()
    machine = OS(env, device=device or SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_tracer_records_completions():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    assert len(tracer) > 0
    writes = [r for r in tracer.records if r.op == "write"]
    assert writes
    assert all(r.latency >= r.queue_wait >= 0 for r in tracer.records)


def test_tracer_capacity_drops_extra():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue, capacity=1)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    assert len(tracer) == 1
    assert tracer.dropped > 0


def test_sequential_fraction_for_sequential_write():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        yield from prefill_file(machine, task, "/f", 8 * MB)

    drive(env, proc())
    data = [r for r in tracer.records if not r.metadata]
    assert tracer.sequential_fraction() >= 0.0
    assert len(data) >= 1


def test_bytes_by_cause_vs_submitter():
    """The tracer shows the split-tag view AND the block-level view."""
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    app = machine.spawn("app")
    from repro.block.request import BlockRequest, WRITE
    from repro.core.tags import CauseSet

    pdflush = machine.writeback.task

    def proc():
        request = BlockRequest(WRITE, 0, 4, pdflush, causes=CauseSet([app.pid]))
        yield machine.block_queue.submit(request)

    drive(env, proc())
    assert tracer.bytes_by_cause() == {app.pid: 4 * 4 * KB}
    assert tracer.bytes_by_submitter() == {"pdflush": 4 * 4 * KB}


def test_amplification_counts_journal_overhead():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)
        yield from handle.fsync()

    drive(env, proc())
    # One 4 KB data page + journal blocks: amplification > 1.
    assert tracer.amplification(4 * KB) > 1.0
    with pytest.raises(ValueError):
        tracer.amplification(0)


def test_mean_latency_filters_by_op():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()
        machine.cache.free_file(handle.inode.id)
        yield from handle.pread(0, 64 * KB)

    drive(env, proc())
    assert tracer.mean_latency("read") > 0
    with pytest.raises(ValueError):
        tracer.mean_latency("erase")


def test_iostat_measures_busy_device():
    env, machine = make_os(device=HDD())
    iostat = IOStat(machine.block_queue, interval=0.5)
    task = machine.spawn("t")

    def proc():
        yield from prefill_file(machine, task, "/f", 32 * MB)
        yield from sequential_reader(machine, task, "/f", 5.0, chunk=1 * MB, cold=True)

    drive(env, proc())
    assert iostat.mean_utilization(since=1.0) > 0.8  # disk-bound reader
    assert all(0.0 <= u <= 1.0 for u in iostat.utilization)


def test_iostat_idle_device_reads_zero():
    env, machine = make_os()
    iostat = IOStat(machine.block_queue, interval=0.5)
    env.run(until=3.0)
    assert iostat.mean_utilization() == 0.0


def test_tracer_ring_mode_keeps_last_records():
    from repro.experiments.common import reset_id_counters

    reset_id_counters()
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue, capacity=3, keep="last")
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        for _ in range(4):
            yield from handle.append(1 * MB)
            yield from handle.fsync()

    drive(env, proc())
    assert len(tracer) == 3
    assert tracer.dropped > 0
    # The ring retains the MOST RECENT completions: its last record is
    # the newest overall, and every retained record postdates the drop
    # horizon (an uncapped tracer's tail matches exactly).
    reset_id_counters()
    env2, machine2 = make_os()
    full = BlockTracer(machine2.block_queue)
    task2 = machine2.spawn("t")

    def proc2():
        handle = yield from machine2.creat(task2, "/f")
        for _ in range(4):
            yield from handle.append(1 * MB)
            yield from handle.fsync()

    drive(env2, proc2())
    assert tracer.records == full.records[-3:]
    assert tracer.dropped == len(full.records) - 3


def test_tracer_ring_mode_requires_capacity():
    env, machine = make_os()
    with pytest.raises(ValueError, match="capacity"):
        BlockTracer(machine.block_queue, keep="last")
    with pytest.raises(ValueError, match="keep"):
        BlockTracer(machine.block_queue, capacity=4, keep="newest")


def test_tracer_close_detaches():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    assert tracer in machine.block_queue.tracers
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()

    drive(env, proc())
    count = len(tracer)
    tracer.close()
    assert tracer not in machine.block_queue.tracers

    def proc2():
        handle = yield from machine.open(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()

    drive(env, proc2())
    assert len(tracer) == count


def test_fault_summary_surfaces_trace_drops():
    from repro.metrics import fault_summary

    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue, capacity=1)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    summary = fault_summary(machine.block_queue)
    assert summary["trace_records"] == 1
    assert summary["trace_dropped"] == tracer.dropped > 0


def test_fault_summary_without_tracer_omits_trace_keys():
    from repro.metrics import fault_summary

    env, machine = make_os()
    summary = fault_summary(machine.block_queue)
    assert "trace_records" not in summary
    assert "trace_dropped" not in summary


def test_tracer_summary_reports_retention():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue, capacity=2, keep="last")
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    summary = tracer.summary()
    assert summary["records"] == 2
    assert summary["dropped"] == tracer.dropped
    assert summary["keep"] == "last"
    assert summary["capacity"] == 2
