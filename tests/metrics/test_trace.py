"""Tests for the block tracer and iostat sampler."""

import pytest

from repro import Environment, OS, SSD, HDD, KB, MB
from repro.metrics import BlockTracer, IOStat
from repro.schedulers import Noop
from repro.workloads import prefill_file, sequential_reader


def make_os(device=None):
    env = Environment()
    machine = OS(env, device=device or SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_tracer_records_completions():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    assert len(tracer) > 0
    writes = [r for r in tracer.records if r.op == "write"]
    assert writes
    assert all(r.latency >= r.queue_wait >= 0 for r in tracer.records)


def test_tracer_capacity_drops_extra():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue, capacity=1)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    assert len(tracer) == 1
    assert tracer.dropped > 0


def test_sequential_fraction_for_sequential_write():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        yield from prefill_file(machine, task, "/f", 8 * MB)

    drive(env, proc())
    data = [r for r in tracer.records if not r.metadata]
    assert tracer.sequential_fraction() >= 0.0
    assert len(data) >= 1


def test_bytes_by_cause_vs_submitter():
    """The tracer shows the split-tag view AND the block-level view."""
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    app = machine.spawn("app")
    from repro.block.request import BlockRequest, WRITE
    from repro.core.tags import CauseSet

    pdflush = machine.writeback.task

    def proc():
        request = BlockRequest(WRITE, 0, 4, pdflush, causes=CauseSet([app.pid]))
        yield machine.block_queue.submit(request)

    drive(env, proc())
    assert tracer.bytes_by_cause() == {app.pid: 4 * 4 * KB}
    assert tracer.bytes_by_submitter() == {"pdflush": 4 * 4 * KB}


def test_amplification_counts_journal_overhead():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)
        yield from handle.fsync()

    drive(env, proc())
    # One 4 KB data page + journal blocks: amplification > 1.
    assert tracer.amplification(4 * KB) > 1.0
    with pytest.raises(ValueError):
        tracer.amplification(0)


def test_mean_latency_filters_by_op():
    env, machine = make_os()
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()
        machine.cache.free_file(handle.inode.id)
        yield from handle.pread(0, 64 * KB)

    drive(env, proc())
    assert tracer.mean_latency("read") > 0
    with pytest.raises(ValueError):
        tracer.mean_latency("erase")


def test_iostat_measures_busy_device():
    env, machine = make_os(device=HDD())
    iostat = IOStat(machine.block_queue, interval=0.5)
    task = machine.spawn("t")

    def proc():
        yield from prefill_file(machine, task, "/f", 32 * MB)
        yield from sequential_reader(machine, task, "/f", 5.0, chunk=1 * MB, cold=True)

    drive(env, proc())
    assert iostat.mean_utilization(since=1.0) > 0.8  # disk-bound reader
    assert all(0.0 <= u <= 1.0 for u in iostat.utilization)


def test_iostat_idle_device_reads_zero():
    env, machine = make_os()
    iostat = IOStat(machine.block_queue, interval=0.5)
    env.run(until=3.0)
    assert iostat.mean_utilization() == 0.0
