"""Tests for the HDD and SSD device models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices import HDD, SSD, DeviceError
from repro.units import MB, PAGE_SIZE


def test_device_rejects_zero_capacity():
    with pytest.raises(ValueError):
        HDD(capacity_blocks=0)


def test_request_bounds_checked():
    disk = HDD(capacity_blocks=100)
    with pytest.raises(DeviceError):
        disk.service_time("read", 99, 2)
    with pytest.raises(DeviceError):
        disk.service_time("read", -1, 1)
    with pytest.raises(DeviceError):
        disk.service_time("read", 0, 0)


def test_bounds_rejection_leaves_accounting_untouched():
    """A rejected request must not mutate counters or head position."""
    disk = HDD(capacity_blocks=100)
    disk.service_time("read", 0, 4)
    before = (disk.stats.reads, disk.stats.writes, disk.stats.bytes_read,
              disk.stats.bytes_written, disk.stats.busy_time, disk._last_block_end)
    with pytest.raises(DeviceError):
        disk.service_time("write", 99, 8)
    after = (disk.stats.reads, disk.stats.writes, disk.stats.bytes_read,
             disk.stats.bytes_written, disk.stats.busy_time, disk._last_block_end)
    assert before == after
    assert not DeviceError("x").retryable


def test_unknown_op_rejected():
    disk = SSD(capacity_blocks=100)
    with pytest.raises(ValueError):
        disk.service_time("erase", 0, 1)


def test_hdd_sequential_much_faster_than_random():
    """The ratio that drives every cost-estimation result in the paper."""
    disk = HDD()
    # Prime head position.
    disk.service_time("read", 0, 1)
    sequential = disk.service_time("read", 1, 1)
    far = disk.capacity_blocks // 2
    random = disk.service_time("read", far, 1)
    assert random / sequential > 50


def test_hdd_sequential_throughput_near_transfer_rate():
    disk = HDD()
    blocks = (100 * MB) // PAGE_SIZE
    duration = disk.service_time("read", 0, blocks)
    rate = 100 * MB / duration
    assert 0.8 * disk.transfer_rate <= rate <= disk.transfer_rate * 1.01


def test_hdd_seek_time_monotonic_in_distance():
    disk = HDD()
    near = disk.seek_time(0, 1000)
    far = disk.seek_time(0, disk.capacity_blocks - 1)
    assert 0 < near < far <= disk.max_seek_time


def test_hdd_tracks_head_position():
    disk = HDD()
    disk.service_time("write", 100, 10)
    assert disk.is_sequential(110)
    assert not disk.is_sequential(200)


def test_hdd_counts_seeks():
    disk = HDD()
    disk.service_time("read", 0, 1)
    disk.service_time("read", 1, 1)  # sequential: no seek
    disk.service_time("read", 50000, 1)  # seek
    assert disk.stats.seeks == 2  # initial positioning + the jump


def test_ssd_random_equals_sequential():
    ssd = SSD()
    ssd.service_time("read", 0, 1)
    sequential = ssd.service_time("read", 1, 1)
    random = ssd.service_time("read", ssd.capacity_blocks // 2, 1)
    assert random == pytest.approx(sequential)


def test_ssd_write_slower_than_read():
    ssd = SSD()
    read = ssd.service_time("read", 0, 256)
    write = ssd.service_time("write", 1000, 256)
    assert write > read


def test_ssd_faster_than_hdd_for_random():
    ssd, hdd = SSD(), HDD()
    ssd.service_time("read", 0, 1)
    hdd.service_time("read", 0, 1)
    assert ssd.service_time("read", 500000, 1) < hdd.service_time("read", 500000, 1) / 10


def test_stats_accumulate():
    disk = SSD()
    disk.service_time("read", 0, 4)
    disk.service_time("write", 4, 2)
    assert disk.stats.reads == 1
    assert disk.stats.writes == 1
    assert disk.stats.bytes_read == 4 * PAGE_SIZE
    assert disk.stats.bytes_written == 2 * PAGE_SIZE
    assert disk.stats.total_requests == 2
    assert disk.stats.busy_time > 0


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=256))
def test_hdd_service_time_always_positive(block, nblocks):
    disk = HDD(capacity_blocks=2 * 10**6)
    assert disk.service_time("read", block, nblocks) > 0


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=256))
def test_ssd_service_time_always_positive(block, nblocks):
    ssd = SSD(capacity_blocks=2 * 10**6)
    assert ssd.service_time("write", block, nblocks) > 0


def test_hdd_write_and_read_same_sequential_rate():
    disk = HDD()
    blocks = (16 * MB) // PAGE_SIZE
    t_read = disk.service_time("read", 0, blocks)
    disk2 = HDD()
    t_write = disk2.service_time("write", 0, blocks)
    assert t_read == pytest.approx(t_write)


def test_capacity_bytes_accessor():
    disk = HDD(capacity_blocks=1000)
    assert disk.capacity_bytes == 1000 * PAGE_SIZE
