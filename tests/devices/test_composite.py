"""Tests for RAID0 striping and jitter injection."""

import pytest

from repro.devices import HDD, JitteryDevice, RAID0, SSD, DeviceError
from repro.units import MB, PAGE_SIZE


def test_raid0_needs_members_and_stripe():
    with pytest.raises(ValueError):
        RAID0([])
    with pytest.raises(ValueError):
        RAID0([SSD()], stripe_blocks=0)


def test_raid0_capacity_is_members_sum():
    members = [SSD(capacity_blocks=1000), SSD(capacity_blocks=1200)]
    array = RAID0(members)
    assert array.capacity_blocks == 2000  # limited by the smaller member


def test_raid0_block_mapping_round_robins_stripes():
    array = RAID0([SSD(), SSD()], stripe_blocks=4)
    assert array._locate(0) == (0, 0)
    assert array._locate(4) == (1, 0)
    assert array._locate(8) == (0, 4)
    assert array._locate(5) == (1, 1)


def test_raid0_large_read_faster_than_single_disk():
    blocks = (64 * MB) // PAGE_SIZE
    single = HDD()
    t_single = single.service_time("read", 0, blocks)
    array = RAID0([HDD(), HDD(), HDD(), HDD()], stripe_blocks=256)
    t_array = array.service_time("read", 0, blocks)
    assert t_array < t_single / 2  # members transfer in parallel


def test_raid0_stats_accumulate_on_array():
    array = RAID0([SSD(), SSD()])
    array.service_time("write", 0, 64)
    assert array.stats.writes == 1
    assert array.stats.bytes_written == 64 * PAGE_SIZE


def test_raid0_bounds_checked():
    array = RAID0([SSD(capacity_blocks=100)], stripe_blocks=4)
    with pytest.raises(DeviceError):
        array.service_time("read", 99, 2)


def test_jittery_probability_validated():
    with pytest.raises(ValueError):
        JitteryDevice(SSD(), spike_probability=1.5)


def test_jittery_adds_spikes_deterministically():
    def run(seed):
        device = JitteryDevice(SSD(), spike_probability=0.5, spike_duration=1.0, seed=seed)
        return [round(device.service_time("read", i, 1), 6) for i in range(20)], device.spikes

    times_a, spikes_a = run(7)
    times_b, spikes_b = run(7)
    assert times_a == times_b
    assert spikes_a == spikes_b > 0


def test_jittery_zero_probability_matches_inner():
    inner = SSD()
    reference = SSD()
    device = JitteryDevice(inner, spike_probability=0.0)
    assert device.service_time("read", 0, 8) == reference.service_time("read", 0, 8)
    assert device.spikes == 0


def test_jittery_works_in_full_stack():
    from repro import Environment, OS
    from repro.schedulers import Noop

    env = Environment()
    device = JitteryDevice(SSD(), spike_probability=0.3, spike_duration=0.05, seed=1)
    machine = OS(env, device=device, scheduler=Noop(), memory_bytes=64 * MB)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    proc_handle = env.process(proc())
    env.run(until=proc_handle)
    assert device.stats.writes > 0
