"""Property-style tests: service_time_batch == looped service_time.

The batch API exists purely to amortise Python call overhead; it must
be element-wise *identical* (same floats, same stats, same internal
state) to pricing the same pattern through service_time one call at a
time, for every device model, op mix, and channel-contention state.
"""

import random

import pytest

from repro.devices import HDD, RAID0, SSD, JitteryDevice
from repro.faults import FaultInjector, FaultPlan, FaultyDevice, MediumError
from repro.sim import Environment
from repro.sim.rand import RandomStreams


def make_pattern(seed, length=200, capacity=100_000):
    """A seeded mix of sequential runs and random jumps, reads and writes."""
    rng = random.Random(seed)
    ops, blocks, nblocks = [], [], []
    block = 0
    for _ in range(length):
        if rng.random() < 0.5 and block < capacity - 256:
            pass  # sequential: continue from the previous end
        else:
            block = rng.randrange(0, capacity - 256)
        count = rng.choice([1, 4, 8, 32, 64])
        ops.append(rng.choice(["read", "write"]))
        blocks.append(block)
        nblocks.append(count)
        block += count
    return ops, blocks, nblocks


def faulty(inner, **plan_kwargs):
    env = Environment()
    injector = FaultInjector(env, FaultPlan(**plan_kwargs), RandomStreams(7))
    return FaultyDevice(inner, injector)


DEVICE_FACTORIES = {
    "hdd": lambda: HDD(capacity_blocks=100_000),
    "ssd": lambda: SSD(capacity_blocks=100_000),
    "raid0": lambda: RAID0(
        [HDD(capacity_blocks=100_000), SSD(capacity_blocks=100_000)],
        stripe_blocks=16,
    ),
    "jittery": lambda: JitteryDevice(
        SSD(capacity_blocks=100_000), spike_probability=0.2, seed=3
    ),
    "faulty-clean": lambda: faulty(HDD(capacity_blocks=100_000)),
    "faulty-slow": lambda: faulty(
        SSD(capacity_blocks=100_000),
        slow_factor=2.5,
        stall_prob=0.1,
        stall_duration=0.5,
    ),
}


def state_snapshot(device):
    stats = device.stats
    snap = {
        "last": device._last_block_end,
        "reads": stats.reads,
        "writes": stats.writes,
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "busy_time": stats.busy_time,
        "seeks": stats.seeks,
    }
    inner = getattr(device, "inner", None)
    if inner is not None:
        snap["inner"] = state_snapshot(inner)
    members = getattr(device, "members", None)
    if members is not None:
        snap["members"] = [state_snapshot(m) for m in members]
    return snap


@pytest.mark.parametrize("name", sorted(DEVICE_FACTORIES))
@pytest.mark.parametrize("active", [0, 1, 3, 10])
def test_batch_matches_scalar_loop(name, active):
    """Same pattern, same channel state: identical floats and stats."""
    scalar_dev = DEVICE_FACTORIES[name]()
    batch_dev = DEVICE_FACTORIES[name]()
    scalar_dev.active = batch_dev.active = active
    ops, blocks, nblocks = make_pattern(seed=active + 11)

    scalar = [
        scalar_dev.service_time(op, block, count)
        for op, block, count in zip(ops, blocks, nblocks)
    ]
    batch = batch_dev.service_time_batch(ops, blocks, nblocks)

    assert batch == scalar  # exact float equality, element-wise
    assert state_snapshot(batch_dev) == state_snapshot(scalar_dev)


def test_batch_interleaves_with_scalar_calls():
    """State left by a batch must be exactly the state a loop leaves."""
    a, b = HDD(capacity_blocks=100_000), HDD(capacity_blocks=100_000)
    ops, blocks, nblocks = make_pattern(seed=1, length=50)
    half = 25
    for op, block, count in zip(ops[:half], blocks[:half], nblocks[:half]):
        a.service_time(op, block, count)
    b.service_time_batch(ops[:half], blocks[:half], nblocks[:half])
    tail_a = [
        a.service_time(op, block, count)
        for op, block, count in zip(ops[half:], blocks[half:], nblocks[half:])
    ]
    tail_b = b.service_time_batch(ops[half:], blocks[half:], nblocks[half:])
    assert tail_a == tail_b


def test_faulty_batch_raises_like_the_loop():
    """An injected error surfaces at the same element, with the same
    prefix applied, as a scalar pricing loop."""
    scalar_dev = faulty(SSD(capacity_blocks=100_000), write_error_prob=0.3)
    batch_dev = faulty(SSD(capacity_blocks=100_000), write_error_prob=0.3)
    ops, blocks, nblocks = make_pattern(seed=5, length=60)
    ops = ["write"] * len(ops)

    scalar = []
    scalar_error = None
    for op, block, count in zip(ops, blocks, nblocks):
        try:
            scalar.append(scalar_dev.service_time(op, block, count))
        except MediumError as exc:
            scalar_error = exc
            break
    assert scalar_error is not None, "pattern should trip the injector"

    with pytest.raises(MediumError) as info:
        batch_dev.service_time_batch(ops, blocks, nblocks)
    assert str(info.value) == str(scalar_error)
    assert state_snapshot(batch_dev) == state_snapshot(scalar_dev)


def test_base_class_fallback_loops():
    """A device that only implements service_time still gets batch pricing."""
    from repro.devices.base import Device

    class Flat(Device):
        def service_time(self, op, block, nblocks):
            self._check_bounds(block, nblocks)
            duration = 0.001 * nblocks
            self._last_block_end = block + nblocks
            self._account(op, nblocks, duration)
            return duration

    dev = Flat(capacity_blocks=1000)
    assert dev.service_time_batch(
        ["read", "write"], [0, 10], [4, 8]
    ) == [0.004, 0.008]
    assert dev.stats.reads == 1 and dev.stats.writes == 1
