"""Unit tests for the fail-slow health monitor."""

import pytest

from repro.health import DEGRADED, FAILED, HEALTHY, HealthConfig, HealthMonitor, resolve_health
from repro.obs.bus import DeviceDone, HealthTransition, StackBus
from repro.sim import Environment


def make_monitor(**config_kwargs):
    env = Environment()
    bus = StackBus()
    config = HealthConfig(**config_kwargs) if config_kwargs else None
    return env, bus, HealthMonitor(env, "ssd", bus, config)


def feed(monitor, op, duration, n):
    for _ in range(n):
        monitor.observe(op, duration)


class TestHealthConfig:
    def test_defaults_valid(self):
        config = HealthConfig()
        assert config.degraded_exit < config.degraded_enter < config.failed_enter

    def test_round_trips_through_dict(self):
        config = HealthConfig(warmup=8, degraded_enter=2.0, degraded_exit=1.2)
        assert HealthConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"warmup": 0},
            {"degraded_enter": 2.0, "degraded_exit": 3.0},
            {"failed_enter": 2.0},
            {"hysteresis": 0},
            {"window": 1},
            {"deadline_percentile": 0.0},
            {"deadline_margin": 0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            HealthConfig(**kwargs)

    def test_resolve_health_forms(self):
        assert resolve_health(None) is None
        assert resolve_health(False) is False
        assert resolve_health(True) is True
        config = HealthConfig(warmup=4)
        assert resolve_health(config) is config
        assert resolve_health({"warmup": 4}) == config
        with pytest.raises(TypeError):
            resolve_health("yes")


class TestDetection:
    def test_starts_healthy_and_stays_healthy_on_steady_latency(self):
        _env, _bus, monitor = make_monitor()
        feed(monitor, "read", 1e-4, 200)
        assert monitor.state == HEALTHY
        assert monitor.degradation() == pytest.approx(1.0)
        assert monitor.transitions == []

    def test_no_judgement_before_warmup(self):
        _env, _bus, monitor = make_monitor(warmup=16)
        # Wildly degraded from the start, but too few samples to judge.
        feed(monitor, "read", 1.0, 15)
        assert monitor.degradation() == 1.0
        assert monitor.deadline("read") is None
        assert monitor.state == HEALTHY

    def test_sustained_slowdown_enters_degraded(self):
        _env, _bus, monitor = make_monitor(warmup=8, hysteresis=4)
        feed(monitor, "read", 1e-4, 50)
        feed(monitor, "read", 1e-3, 50)  # 10x: past degraded_enter=3
        assert monitor.state == DEGRADED
        assert monitor.degradation() > 3.0
        assert [(old, new) for _t, old, new, _r in monitor.transitions] == [
            (HEALTHY, DEGRADED)
        ]

    def test_extreme_slowdown_enters_failed(self):
        _env, _bus, monitor = make_monitor(warmup=8, hysteresis=2)
        feed(monitor, "read", 1e-4, 50)
        feed(monitor, "read", 1e-2, 80)  # 100x
        assert monitor.state == FAILED

    def test_recovery_returns_to_healthy(self):
        _env, _bus, monitor = make_monitor(warmup=8, hysteresis=2)
        feed(monitor, "read", 1e-4, 50)
        feed(monitor, "read", 1e-3, 50)
        assert monitor.state == DEGRADED
        feed(monitor, "read", 1e-4, 100)
        assert monitor.state == HEALTHY
        assert [(old, new) for _t, old, new, _r in monitor.transitions] == [
            (HEALTHY, DEGRADED),
            (DEGRADED, HEALTHY),
        ]

    def test_baseline_frozen_while_degraded(self):
        """A slow decline can't drag the baseline up and hide itself."""
        _env, _bus, monitor = make_monitor(warmup=8, hysteresis=2)
        feed(monitor, "read", 1e-4, 50)
        feed(monitor, "read", 1e-3, 10)
        assert monitor.state == DEGRADED
        baseline_at_transition = monitor._ops["read"].baseline
        # Hundreds more degraded samples: the reference must not move.
        feed(monitor, "read", 1e-3, 500)
        assert monitor._ops["read"].baseline == baseline_at_transition
        assert monitor.degradation() > 3.0

    def test_hysteresis_requires_consecutive_agreement(self):
        _env, _bus, monitor = make_monitor(warmup=4, hysteresis=3)
        feed(monitor, "read", 1e-4, 20)
        # Two degraded-looking samples: streak 2 < hysteresis 3.
        feed(monitor, "read", 1e-3, 2)
        assert monitor.state == HEALTHY and monitor.transitions == []
        # Recovery resets the streak before it commits...
        feed(monitor, "read", 1e-5, 30)
        assert monitor.state == HEALTHY and monitor.transitions == []
        # ...so two more degraded samples still aren't enough...
        feed(monitor, "read", 1e-3, 2)
        assert monitor.state == HEALTHY and monitor.transitions == []
        # ...but a third consecutive one commits the transition.
        feed(monitor, "read", 1e-3, 1)
        assert monitor.state == DEGRADED
        assert len(monitor.transitions) == 1

    def test_worst_op_drives_degradation(self):
        _env, _bus, monitor = make_monitor(warmup=8)
        feed(monitor, "read", 1e-4, 50)
        feed(monitor, "write", 1e-4, 50)
        feed(monitor, "write", 8e-4, 50)
        assert monitor.degradation() == pytest.approx(
            monitor._ops["write"].ewma / monitor._ops["write"].baseline
        )


class TestDeadline:
    def test_deadline_tracks_percentile_times_margin(self):
        _env, _bus, monitor = make_monitor(warmup=4, deadline_margin=3.0)
        feed(monitor, "read", 2e-4, 40)
        assert monitor.deadline("read") == pytest.approx(3.0 * 2e-4)

    def test_deadline_none_for_unknown_op(self):
        _env, _bus, monitor = make_monitor()
        assert monitor.deadline("write") is None

    def test_window_trims_old_samples(self):
        _env, _bus, monitor = make_monitor(warmup=4, window=16)
        feed(monitor, "read", 1.0, 30)
        feed(monitor, "read", 1e-4, 16)  # fills the whole window
        assert monitor.deadline("read") == pytest.approx(3.0 * 1e-4)


class TestBilling:
    def test_factor_is_one_while_healthy(self):
        _env, _bus, monitor = make_monitor(warmup=8)
        feed(monitor, "read", 1e-4, 50)
        assert monitor.billing_factor() == 1.0

    def test_factor_tracks_degradation_when_sick(self):
        _env, _bus, monitor = make_monitor(warmup=8, hysteresis=2)
        feed(monitor, "read", 1e-4, 50)
        feed(monitor, "read", 1e-3, 50)
        assert monitor.state == DEGRADED
        assert monitor.billing_factor() == pytest.approx(monitor.degradation())
        assert monitor.billing_factor() > 3.0


class TestBusIntegration:
    def test_consumes_matching_device_done_only(self):
        env, bus, monitor = make_monitor()
        bus.publish(DeviceDone(0.0, "ssd", "read", 1, 1e-4))
        bus.publish(DeviceDone(0.0, "other", "read", 1, 5.0))
        assert monitor.observed == 1

    def test_transition_published_on_bus(self):
        env, bus, monitor = make_monitor(warmup=4, hysteresis=2)
        seen = []
        bus.subscribe(HealthTransition, seen.append)
        feed(monitor, "read", 1e-4, 20)
        feed(monitor, "read", 1e-3, 20)
        assert monitor.state == DEGRADED
        assert len(seen) == 1
        assert seen[0].device == "ssd"
        assert (seen[0].old_state, seen[0].new_state) == (HEALTHY, DEGRADED)

    def test_close_unsubscribes(self):
        env, bus, monitor = make_monitor()
        monitor.close()
        bus.publish(DeviceDone(0.0, "ssd", "read", 1, 1e-4))
        assert monitor.observed == 0


class TestSummary:
    def test_summary_is_json_friendly(self):
        import json

        _env, _bus, monitor = make_monitor(warmup=4, hysteresis=2)
        feed(monitor, "read", 1e-4, 20)
        feed(monitor, "read", 1e-3, 20)
        summary = monitor.summary()
        json.dumps(summary)
        assert summary["device"] == "ssd"
        assert summary["state"] == DEGRADED
        assert summary["observed"] == 40
        assert summary["transitions"][0]["from"] == HEALTHY
        assert summary["ops"]["read"]["count"] == 40
