"""Property-based tests on page-cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import PageCache, PageKey
from repro.core.tags import TagManager
from repro.proc import Task
from repro.sim import Environment
from repro.units import PAGE_SIZE


class CacheMachine:
    """Drives a cache through random operations, checking invariants."""

    def __init__(self, capacity_pages=64):
        self.env = Environment()
        self.tags = TagManager()
        self.cache = PageCache(self.env, self.tags, memory_bytes=capacity_pages * PAGE_SIZE)
        self.tasks = [Task(f"t{i}") for i in range(3)]

    def apply(self, op):
        kind, inode_id, index, task_index = op
        key = PageKey(inode_id, index)
        if kind == 0:
            self.cache.mark_dirty(key, self.tasks[task_index])
        elif kind == 1:
            self.cache.insert_clean(key)
        elif kind == 2:
            self.cache.free(key)
        elif kind == 3:
            page = self.cache.lookup(key)
            if page is not None and page.dirty and not page.under_writeback:
                page.write_submitted()
                page.write_completed()

    def check_invariants(self):
        dirty_count = sum(
            1 for key in list(self.cache._dirty)
        )
        assert self.cache.dirty_bytes == dirty_count * PAGE_SIZE
        # Every dirty-index entry refers to a live, dirty page.
        for key in self.cache._dirty:
            page = self.cache._pages.get(key)
            assert page is not None and page.dirty
        # Per-inode index is consistent with the global one.
        per_inode = {
            key for index in self.cache._dirty_by_inode.values() for key in index
        }
        assert per_inode == set(self.cache._dirty)
        # Clean LRU never contains dirty pages.
        for key in self.cache._clean_lru:
            page = self.cache._pages.get(key)
            assert page is None or not page.dirty
        # Dirty pages are never evicted: cache may exceed capacity only
        # by the number of dirty pages.
        assert len(self.cache._pages) <= self.cache.capacity_pages + dirty_count


operations = st.tuples(
    st.integers(min_value=0, max_value=3),   # op kind
    st.integers(min_value=1, max_value=4),   # inode
    st.integers(min_value=0, max_value=100),  # page index
    st.integers(min_value=0, max_value=2),   # task
)


@settings(max_examples=60, deadline=None)
@given(st.lists(operations, min_size=1, max_size=200))
def test_cache_invariants_under_random_ops(ops):
    machine = CacheMachine()
    for op in ops:
        machine.apply(op)
        machine.check_invariants()


@settings(max_examples=30, deadline=None)
@given(st.lists(operations, min_size=1, max_size=100))
def test_tag_memory_never_negative(ops):
    machine = CacheMachine()
    for op in ops:
        machine.apply(op)
        assert machine.tags.bytes_allocated >= 0
        assert machine.tags.max_bytes_allocated >= machine.tags.bytes_allocated
