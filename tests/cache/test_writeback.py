"""Tests for the writeback daemon (pdflush) and dirty throttling."""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.cache.writeback import WritebackConfig
from repro.schedulers.noop import Noop


def make_os(memory=64 * MB, config=None, enabled=True):
    env = Environment()
    machine = OS(
        env,
        device=SSD(),
        scheduler=Noop(),
        memory_bytes=memory,
        writeback_config=config,
        writeback_enabled=enabled,
    )
    return env, machine


def test_config_validation():
    with pytest.raises(ValueError):
        WritebackConfig(dirty_background_ratio=0.5, dirty_ratio=0.2)
    with pytest.raises(ValueError):
        WritebackConfig(dirty_background_ratio=0.0)


def test_pdflush_runs_at_default_priority():
    """The root cause of Figure 3: pdflush is a priority-4 task."""
    env, machine = make_os()
    assert machine.writeback.task.priority == 4
    assert machine.writeback.task.kernel


def test_background_flush_over_watermark():
    config = WritebackConfig(dirty_background_ratio=0.1, dirty_ratio=0.4)
    env, machine = make_os(memory=16 * MB, config=config)
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * MB)  # 25% dirty: over background
        yield env.timeout(10)

    p = env.process(proc())
    env.run(until=p)
    assert machine.cache.dirty_fraction <= 0.1 + 0.01
    assert machine.writeback.pages_flushed > 0


def test_expired_pages_flushed_even_below_watermark():
    config = WritebackConfig(dirty_expire=2.0, wakeup_interval=1.0)
    env, machine = make_os(memory=1024 * MB, config=config)
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)  # tiny: never over watermark
        yield env.timeout(10)
        return machine.cache.dirty_bytes

    p = env.process(proc())
    env.run(until=p)
    assert p.value == 0  # age-based flush happened


def test_foreground_throttling_blocks_writer():
    """Writers crossing dirty_ratio stall in balance_dirty_pages."""
    config = WritebackConfig(dirty_background_ratio=0.05, dirty_ratio=0.1)
    env, machine = make_os(memory=16 * MB, config=config)
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        # Way more than dirty_ratio (1.6MB): must block on writeback.
        yield from handle.append(8 * MB)
        return env.now

    p = env.process(proc())
    env.run(until=p)
    assert p.value > 0  # took simulated time: writer was throttled
    assert machine.cache.dirty_fraction <= 0.15


def test_request_flush_reaches_explicit_target():
    env, machine = make_os(memory=64 * MB)
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * MB)  # under background ratio
        machine.writeback.request_flush(1 * MB)
        yield env.timeout(5)
        return machine.cache.dirty_bytes

    p = env.process(proc())
    env.run(until=p)
    assert p.value <= 1 * MB


def test_disabled_daemon_does_not_flush():
    env, machine = make_os(memory=1024 * MB, enabled=False)
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield env.timeout(60)
        return machine.cache.dirty_bytes

    p = env.process(proc())
    env.run(until=p)
    assert p.value == 1 * MB  # nothing flushed without pdflush


def test_writeback_submits_as_proxy_with_true_causes():
    """Delegated writes carry the original writers' tags (Figure 7)."""
    config = WritebackConfig(dirty_expire=1.0, wakeup_interval=0.5)
    env, machine = make_os(memory=256 * MB, config=config)
    a, b = machine.spawn("a"), machine.spawn("b")
    observed = []
    machine.block_queue.completion_listeners.append(
        lambda req: observed.append((req.submitter.name, set(req.causes)))
        if req.is_write and not req.metadata
        else None
    )

    def proc():
        fa = yield from machine.creat(a, "/fa")
        fb = yield from machine.creat(b, "/fb")
        yield from fa.append(64 * KB)
        yield from machine.write(b, fb.inode, 0, 64 * KB)
        yield env.timeout(10)

    p = env.process(proc())
    env.run(until=p)
    submitters = {name for name, _ in observed}
    assert "pdflush" in submitters
    all_causes = set().union(*(causes for _, causes in observed))
    assert a.pid in all_causes
    assert b.pid in all_causes
    assert machine.writeback.task.pid not in all_causes
