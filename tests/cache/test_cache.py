"""Tests for the page cache: dirtying, hooks, eviction, accounting."""

import pytest

from repro.cache import PageCache, PageKey
from repro.core.tags import CauseSet, TagManager
from repro.proc import Task
from repro.sim import Environment
from repro.units import MB, PAGE_SIZE


def make_cache(memory=16 * MB):
    env = Environment()
    tags = TagManager()
    return env, tags, PageCache(env, tags, memory_bytes=memory)


def test_cache_requires_a_page_of_memory():
    env = Environment()
    with pytest.raises(ValueError):
        PageCache(env, TagManager(), memory_bytes=100)


def test_mark_dirty_creates_tracked_page():
    env, tags, cache = make_cache()
    task = Task("w")
    page = cache.mark_dirty(PageKey(1, 0), task)
    assert page.dirty
    assert page.causes == CauseSet([task.pid])
    assert cache.dirty_bytes == PAGE_SIZE
    assert cache.dirty_pages == 1


def test_overwrite_merges_causes_and_counts():
    env, tags, cache = make_cache()
    a, b = Task("a"), Task("b")
    key = PageKey(1, 0)
    cache.mark_dirty(key, a)
    page = cache.mark_dirty(key, b)
    assert page.causes == CauseSet([a.pid, b.pid])
    assert cache.dirty_bytes == PAGE_SIZE  # still one dirty page
    assert cache.overwrites == 1


def test_proxy_dirtying_attributes_to_served_tasks():
    env, tags, cache = make_cache()
    app, pdflush = Task("app"), Task("pdflush", kernel=True)
    tags.set_proxy(pdflush, CauseSet([app.pid]))
    page = cache.mark_dirty(PageKey(2, 0), pdflush)
    assert page.causes == CauseSet([app.pid])


def test_buffer_dirty_hook_reports_old_causes():
    env, tags, cache = make_cache()
    a, b = Task("a"), Task("b")
    calls = []
    cache.buffer_dirty_hook = lambda page, old: calls.append((page.key, old))
    key = PageKey(1, 5)
    cache.mark_dirty(key, a)
    cache.mark_dirty(key, b)
    assert calls[0] == (key, CauseSet())
    assert calls[1] == (key, CauseSet([a.pid]))


def test_buffer_free_hook_fires_for_dirty_page_only():
    env, tags, cache = make_cache()
    task = Task("t")
    freed = []
    cache.buffer_free_hook = lambda page: freed.append(page.key)
    dirty_key, clean_key = PageKey(1, 0), PageKey(1, 1)
    cache.mark_dirty(dirty_key, task)
    cache.insert_clean(clean_key)
    cache.free(dirty_key)
    cache.free(clean_key)
    assert freed == [dirty_key]
    assert cache.dirty_bytes == 0


def test_page_cleaned_after_writeback():
    env, tags, cache = make_cache()
    task = Task("t")
    page = cache.mark_dirty(PageKey(1, 0), task)
    page.write_submitted()
    assert page.under_writeback
    page.write_completed()
    assert not page.dirty
    assert cache.dirty_bytes == 0


def test_redirty_during_writeback_stays_dirty():
    env, tags, cache = make_cache()
    task = Task("t")
    key = PageKey(1, 0)
    page = cache.mark_dirty(key, task)
    page.write_submitted()
    cache.mark_dirty(key, task)  # modified mid-flight
    page.write_completed()
    assert page.dirty
    assert cache.dirty_bytes == PAGE_SIZE


def test_dirty_pages_of_filters_by_inode_and_sorts():
    env, tags, cache = make_cache()
    task = Task("t")
    cache.mark_dirty(PageKey(7, 3), task)
    cache.mark_dirty(PageKey(7, 1), task)
    cache.mark_dirty(PageKey(8, 0), task)
    pages = cache.dirty_pages_of(7)
    assert [p.key.index for p in pages] == [1, 3]
    assert cache.dirty_bytes_of(7) == 2 * PAGE_SIZE


def test_dirty_pages_by_age_is_oldest_first():
    env, tags, cache = make_cache()
    task = Task("t")

    def proc():
        cache.mark_dirty(PageKey(1, 10), task)
        yield env.timeout(1)
        cache.mark_dirty(PageKey(1, 5), task)
        yield env.timeout(1)
        cache.mark_dirty(PageKey(2, 0), task)

    env.process(proc())
    env.run()
    ages = [p.key for p in cache.dirty_pages_by_age()]
    assert ages == [PageKey(1, 10), PageKey(1, 5), PageKey(2, 0)]
    assert [p.key for p in cache.dirty_pages_by_age(limit=1)] == [PageKey(1, 10)]


def test_eviction_drops_clean_lru_pages_only():
    env, tags, cache = make_cache(memory=4 * PAGE_SIZE)
    task = Task("t")
    cache.mark_dirty(PageKey(1, 0), task)
    for index in range(1, 8):
        cache.insert_clean(PageKey(1, index))
    assert len(cache) <= 4
    assert cache.contains(PageKey(1, 0))  # dirty page survived
    assert cache.evictions > 0


def test_free_file_drops_all_pages():
    env, tags, cache = make_cache()
    task = Task("t")
    for index in range(5):
        cache.mark_dirty(PageKey(3, index), task)
    cache.insert_clean(PageKey(4, 0))
    assert cache.free_file(3) == 5
    assert cache.dirty_bytes == 0
    assert cache.contains(PageKey(4, 0))


def test_tag_memory_tracked_for_dirty_pages():
    env, tags, cache = make_cache()
    task = Task("t")
    page = cache.mark_dirty(PageKey(1, 0), task)
    assert tags.bytes_allocated > 0
    page.write_submitted()
    page.write_completed()
    assert tags.bytes_allocated == 0
