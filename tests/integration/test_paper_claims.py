"""Scaled-down assertions of the paper's core claims.

The benchmark suite regenerates the figures at full scale; these are
fast (seconds-long) versions of the most important claims so plain
``pytest tests/`` already guards the reproduction.
"""


from repro import Environment, OS, HDD, KB, MB
from repro.metrics import LatencyRecorder, ThroughputTracker, deviation_from_ideal
from repro.schedulers import AFQ, BlockDeadline, CFQ, SplitDeadline, SplitToken
from repro.workloads import (
    fsync_appender,
    prefill_file,
    run_pattern_writer,
    sequential_reader,
    sequential_writer,
)

IDEAL = {p: 8 - p for p in range(8)}


def run_async_writers(scheduler, duration=8.0):
    env = Environment()
    machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=512 * MB)
    trackers = {}
    for prio in range(8):
        task = machine.spawn(f"w{prio}", priority=prio)
        tracker = trackers[prio] = ThroughputTracker()
        env.process(
            sequential_writer(machine, task, f"/f{prio}", duration, chunk=1 * MB, tracker=tracker)
        )
    env.run(until=duration)
    return {p: t.rate(until=duration) for p, t in trackers.items()}


def test_claim_cfq_priority_blind_for_buffered_writes():
    """§2.3.1 / Figure 3: write delegation blinds CFQ to priorities."""
    rates = run_async_writers(CFQ())
    assert deviation_from_ideal(rates, IDEAL) > 60


def test_claim_afq_respects_priorities_for_buffered_writes():
    """§5.1 / Figure 11b: AFQ's split tags + syscall pacing fix it."""
    rates = run_async_writers(AFQ())
    assert deviation_from_ideal(rates, IDEAL) < 15


def test_claim_fsync_latency_decoupled_by_split_deadline():
    """§5.2 / Figure 12 (miniature): A's fsync tail under B's floods."""

    def run(scheduler):
        env = Environment()
        machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=512 * MB)
        setup = machine.spawn("setup")

        def setup_proc():
            yield from prefill_file(machine, setup, "/log", 4 * KB)
            yield from prefill_file(machine, setup, "/db", 32 * MB)

        proc = env.process(setup_proc())
        env.run(until=proc)
        a = machine.spawn("A")
        b = machine.spawn("B")
        if isinstance(scheduler, SplitDeadline):
            scheduler.set_fsync_deadline(a, 0.1)
            scheduler.set_fsync_deadline(b, 5.0)
        recorder = LatencyRecorder()
        env.process(fsync_appender(machine, a, "/log", 10.0, recorder=recorder))

        def checkpointer():
            import random

            rng = random.Random(0)
            handle = yield from machine.open(b, "/db")
            size = handle.inode.size
            while env.now < 10.0:
                for _ in range(512):
                    offset = rng.randrange(0, size // (4 * KB)) * 4 * KB
                    yield from handle.pwrite(offset, 4 * KB)
                yield from handle.fsync()
                yield env.timeout(1.0)

        env.process(checkpointer())
        env.run(until=env.now + 10.0)
        return recorder

    block = run(BlockDeadline(read_deadline=0.05, write_deadline=0.02))
    split = run(SplitDeadline(read_deadline=0.05, fsync_deadline=0.1))
    assert split.max() < block.max() / 2  # the 4x tail claim, conservatively


def test_claim_split_token_bills_true_cost():
    """§5.3 / Figures 6 vs 13 (miniature): random writes are billed at
    their normalized disk cost, not their byte count."""
    env = Environment()
    scheduler = SplitToken()
    machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=512 * MB)
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", 32 * MB)
        yield from prefill_file(machine, setup, "/b", 64 * MB)

    proc = env.process(setup_proc())
    env.run(until=proc)
    a, b = machine.spawn("A"), machine.spawn("B")
    scheduler.set_limit(b, 2 * MB)
    a_tracker, b_tracker = ThroughputTracker(), ThroughputTracker()
    start = env.now
    env.process(sequential_reader(machine, a, "/a", 8.0, chunk=1 * MB, tracker=a_tracker, cold=True))
    env.process(run_pattern_writer(machine, b, "/b", 4 * KB, 8.0, tracker=b_tracker))
    env.run(until=start + 8.0)
    # B's *dirty* rate is an order below its nominal 2 MB/s budget
    # (random 4 KB writes carry a 10x prompt penalty)...
    assert b_tracker.rate(env.now) < 1 * MB
    # ...and A keeps nearly its solo throughput.
    assert a_tracker.rate(env.now) > 90 * MB
