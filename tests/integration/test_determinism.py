"""Determinism: identical runs produce identical results.

The whole evaluation depends on the simulation being reproducible —
seeded RNG streams, no wall-clock leakage, stable event ordering.
"""

from repro import Environment, OS, HDD, KB, MB
from repro.metrics import LatencyRecorder, ThroughputTracker
from repro.schedulers import AFQ, CFQ, SplitToken
from repro.workloads import fsync_appender, prefill_file, run_pattern_writer, sequential_reader


def run_mixed_workload(scheduler_factory):
    env = Environment()
    machine = OS(env, device=HDD(), scheduler=scheduler_factory(), memory_bytes=256 * MB)
    setup = machine.spawn("setup")

    def setup_proc():
        yield from prefill_file(machine, setup, "/a", 16 * MB)
        yield from prefill_file(machine, setup, "/b", 16 * MB)

    proc = env.process(setup_proc())
    env.run(until=proc)

    reader = machine.spawn("reader")
    writer = machine.spawn("writer")
    logger = machine.spawn("logger")
    tracker = ThroughputTracker()
    latency = LatencyRecorder()
    start = env.now
    env.process(sequential_reader(machine, reader, "/a", 3.0, chunk=256 * KB, tracker=tracker, cold=True))
    env.process(run_pattern_writer(machine, writer, "/b", 4 * KB, 3.0))
    env.process(fsync_appender(machine, logger, "/log", 3.0, recorder=latency))
    env.run(until=start + 3.0)
    return (
        tracker.bytes_total,
        latency.count,
        tuple(round(l, 9) for l in latency.latencies),
        machine.device.stats.reads,
        machine.device.stats.writes,
        round(machine.device.stats.busy_time, 9),
    )


def test_cfq_runs_are_bit_identical():
    assert run_mixed_workload(CFQ) == run_mixed_workload(CFQ)


def test_afq_runs_are_bit_identical():
    assert run_mixed_workload(AFQ) == run_mixed_workload(AFQ)


def test_split_token_runs_are_bit_identical():
    assert run_mixed_workload(SplitToken) == run_mixed_workload(SplitToken)


def test_different_schedulers_differ():
    """Sanity: the fingerprint actually captures scheduling decisions."""
    assert run_mixed_workload(CFQ) != run_mixed_workload(AFQ)
