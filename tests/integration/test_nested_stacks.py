"""Integration tests for nested (VM) stacks with guest-side schedulers."""


from repro import Environment, OS, HDD, SSD, KB, MB
from repro.apps.qemu import QemuVM
from repro.schedulers import CFQ, Noop, SplitToken


def test_guest_can_run_its_own_scheduler():
    """A guest running CFQ inside a host running Split-Token."""
    env = Environment()
    host_sched = SplitToken()
    host = OS(env, device=HDD(), scheduler=host_sched, memory_bytes=1024 * MB)
    vm = QemuVM(host, image_bytes=128 * MB, guest_memory=64 * MB,
                guest_scheduler=CFQ())
    boot = env.process(vm.boot())
    env.run(until=boot)
    assert isinstance(vm.guest.elevator, CFQ)

    high = vm.spawn("high", priority=0)
    low = vm.spawn("low", priority=7)
    done = []

    def guest_io(task, path):
        handle = yield from vm.guest.creat(task, path)
        yield from handle.append(256 * KB)
        yield from handle.fsync()
        done.append(task.name)

    env.process(guest_io(high, "/h"))
    env.process(guest_io(low, "/l"))
    env.run(until=env.now + 30.0)
    assert len(done) == 2


def test_two_vms_share_host_disk():
    env = Environment()
    host = OS(env, device=HDD(), scheduler=Noop(), memory_bytes=1024 * MB)
    vm_a = QemuVM(host, name="a", image_bytes=64 * MB, guest_memory=32 * MB)
    vm_b = QemuVM(host, name="b", image_bytes=64 * MB, guest_memory=32 * MB)

    def setup():
        yield from vm_a.boot()
        yield from vm_b.boot()

    proc = env.process(setup())
    env.run(until=proc)

    results = {}

    def guest_writer(vm, key):
        task = vm.spawn("w")
        handle = yield from vm.guest.creat(task, "/data")
        yield from handle.append(8 * MB)
        yield from handle.fsync()
        results[key] = env.now

    env.process(guest_writer(vm_a, "a"))
    env.process(guest_writer(vm_b, "b"))
    env.run(until=env.now + 60.0)
    assert set(results) == {"a", "b"}
    # Both VMs' data physically reached the one host disk.
    assert host.device.stats.bytes_written >= 16 * MB


def test_guest_direct_io_does_not_pollute_host_cache():
    env = Environment()
    host = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    vm = QemuVM(host, image_bytes=64 * MB, guest_memory=32 * MB)
    boot = env.process(vm.boot())
    env.run(until=boot)
    host_pages_before = len(host.cache)

    task = vm.spawn("reader")

    def guest_read():
        handle = yield from vm.guest.creat(task, "/data")
        yield from handle.append(8 * MB)
        yield from handle.fsync()
        vm.guest.cache.free_file(handle.inode.id)
        yield from handle.pread(0, 8 * MB)  # guest miss -> host O_DIRECT

    proc = env.process(guest_read())
    env.run(until=proc)
    # Host cache did not grow with the VM's 8 MB of image traffic.
    assert len(host.cache) <= host_pages_before + 4
