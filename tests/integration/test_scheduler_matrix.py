"""Cross-scheduler integration invariants.

Every scheduler — whatever its policy — must preserve the storage
stack's correctness contracts: syscalls terminate (no lost wakeups),
fsync means durable, and data written equals data accounted.  These
run the same mixed workload under all seven schedulers.
"""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.schedulers import (
    AFQ,
    BlockDeadline,
    CFQ,
    Noop,
    SCSToken,
    SplitDeadline,
    SplitNoop,
    SplitToken,
)

SCHEDULERS = {
    "noop": Noop,
    "split-noop": SplitNoop,
    "cfq": CFQ,
    "block-deadline": BlockDeadline,
    "scs-token": SCSToken,
    "afq": AFQ,
    "split-deadline": SplitDeadline,
    "split-token": SplitToken,
}


def make_os(name):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=SCHEDULERS[name](), memory_bytes=256 * MB)
    return env, machine


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_mixed_workload_terminates(name):
    """Writers, readers, and fsyncers all finish — no deadlock."""
    env, machine = make_os(name)
    done = []

    def writer(task, path):
        handle = yield from machine.creat(task, path)
        for _ in range(8):
            yield from handle.append(64 * KB)
        yield from handle.fsync()
        done.append(task.name)

    def reader(task, path):
        yield env.timeout(0.2)
        handle = yield from machine.open(task, path)
        total = 0
        while total < handle.inode.size:
            n = yield from handle.pread(total, 64 * KB)
            if n == 0:
                break
            total += n
        done.append(task.name)

    for i in range(3):
        task = machine.spawn(f"w{i}", priority=i * 2)
        env.process(writer(task, f"/f{i}"))
    for i in range(3):
        task = machine.spawn(f"r{i}")
        env.process(reader(task, f"/f{i}"))
    env.run(until=60.0)
    assert len(done) == 6, f"{name}: stuck tasks, finished only {done}"


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_fsync_means_durable(name):
    """After fsync returns, none of the file's pages are dirty."""
    env, machine = make_os(name)
    task = machine.spawn("app")
    result = {}

    def proc():
        handle = yield from machine.creat(task, "/data")
        yield from handle.append(1 * MB)
        yield from handle.fsync()
        result["dirty"] = machine.cache.dirty_bytes_of(handle.inode.id)
        result["allocated"] = len(handle.inode.block_map)

    env.process(proc())
    env.run(until=60.0)
    assert result, f"{name}: fsync never completed"
    assert result["dirty"] == 0
    assert result["allocated"] == 256


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_device_received_at_least_payload(name):
    """Bytes on the device cover the payload (plus journal overhead)."""
    env, machine = make_os(name)
    task = machine.spawn("app")
    payload = 2 * MB

    def proc():
        handle = yield from machine.creat(task, "/data")
        yield from handle.append(payload)
        yield from handle.fsync()

    env.process(proc())
    env.run(until=60.0)
    assert machine.device.stats.bytes_written >= payload


@pytest.mark.parametrize("name", ["afq", "split-deadline", "split-token", "split-noop"])
def test_split_schedulers_see_true_causes(name):
    """For every split scheduler, delegated writeback carries app tags."""
    env, machine = make_os(name)
    app = machine.spawn("app")
    observed = []
    machine.block_queue.completion_listeners.append(
        lambda req: observed.append(set(req.causes)) if req.is_write and not req.metadata else None
    )

    def proc():
        handle = yield from machine.creat(app, "/data")
        yield from handle.append(256 * KB)
        machine.writeback.request_flush(0)
        yield env.timeout(10.0)

    env.process(proc())
    env.run(until=30.0)
    assert observed, f"{name}: no data writes observed"
    assert all(app.pid in causes for causes in observed)
