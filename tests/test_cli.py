"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _jsonable, _parse_override, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ("fig01", "fig13", "fig21", "tab1"):
        assert key in out


def test_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_with_overrides_emits_json(capsys):
    code = main([
        "run", "fig09",
        "--set", "thread_counts=[1]",
        "--set", "duration=0.5",
    ])
    assert code == 0
    result = json.loads(capsys.readouterr().out)
    assert result["threads"] == [1]
    assert len(result["block_mbps"]) == 1


def test_parse_override_json_and_string():
    assert _parse_override("x=3") == ("x", 3)
    assert _parse_override("x=[1,2]") == ("x", [1, 2])
    assert _parse_override("x=hello") == ("x", "hello")
    with pytest.raises(Exception):
        _parse_override("novalue")


def test_jsonable_handles_odd_values():
    class Odd:
        def __repr__(self):
            return "<odd>"

    out = _jsonable({"a": (1, 2.5), "b": Odd(), 3: None})
    assert out == {"a": [1, 2.5], "b": "<odd>", "3": None}


def test_export_subcommand(tmp_path, capsys, monkeypatch):
    # Point the exporter at a tiny fake experiment to keep this fast.
    import repro.experiments.export as export_mod

    monkeypatch.setitem(
        export_mod.EXPERIMENTS, "figtest",
        ("repro.experiments.fig09_time_overhead", "Figure T: test"),
    )
    monkeypatch.setattr(
        export_mod, "run_experiment",
        lambda key, overrides=None, jobs=1: {
            "experiment": key, "title": "Figure T", "wall_seconds": 0.0,
            "result": {"ok": True},
        },
    )
    code = main(["export", str(tmp_path), "--only", "figtest"])
    assert code == 0
    assert (tmp_path / "figtest.json").exists()
    assert "figtest" in (tmp_path / "REPORT.md").read_text()


def test_lint_clean_path_exits_zero(tmp_path, capsys):
    ok = tmp_path / "ok.py"
    ok.write_text("def f(env):\n    return env.now\n")
    assert main(["lint", str(ok)]) == 0
    assert "simlint: clean" in capsys.readouterr().out


def test_lint_violation_exits_nonzero_with_location_and_fixit(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(items, env, entry):\n"
        "    for x in set(items):\n"
        "        env._queue.append(entry)\n"
    )
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:2:" in out and "SIM002" in out
    assert f"{bad}:3:" in out and "SIM005" in out
    assert "fix:" in out


def test_lint_json_format_and_select(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(items, env, entry):\n"
        "    for x in set(items):\n"
        "        env._queue.append(entry)\n"
    )
    assert main(["lint", str(bad), "--format", "json",
                 "--select", "SIM005"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [v["rule"] for v in payload] == ["SIM005"]


def test_lint_rejects_unknown_rule(tmp_path, capsys):
    assert main(["lint", str(tmp_path), "--select", "SIM999"]) == 2
    assert "unknown rules" in capsys.readouterr().err


def test_fs_demo_runs_a_reprofs_session(capsys):
    assert main(["fs-demo"]) == 0
    out = capsys.readouterr().out
    assert "reprofs demo" in out
    assert "/data/report.bin" in out
    assert "pump episodes" in out


def test_fs_demo_accepts_scheduler_and_device(capsys):
    assert main(["fs-demo", "--device", "hdd", "--scheduler", "split-token"]) == 0
    out = capsys.readouterr().out
    assert "device=hdd" in out
