"""Tests for the block allocator (delayed-allocation substrate)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fs.alloc import AllocationError, Allocator


def test_allocator_needs_blocks():
    with pytest.raises(ValueError):
        Allocator(0, 0)


def test_allocate_positive_only():
    alloc = Allocator(0, 100)
    with pytest.raises(ValueError):
        alloc.allocate(1, 0)


def test_sequential_allocations_for_one_file_are_contiguous():
    alloc = Allocator(100, 1000)
    first = alloc.allocate(1, 10)
    second = alloc.allocate(1, 10)
    assert second == first + 10


def test_interleaved_files_fragment_layout():
    """Two files flushed alternately end up interleaved on disk."""
    alloc = Allocator(0, 1000)
    a1 = alloc.allocate(1, 4)
    b1 = alloc.allocate(2, 4)
    a2 = alloc.allocate(1, 4)
    assert b1 == a1 + 4
    assert a2 == b1 + 4  # file 1's second extent is NOT adjacent to its first


def test_free_list_reuse():
    alloc = Allocator(0, 20)
    start = alloc.allocate(1, 10)
    alloc.allocate(2, 10)  # exhaust the bump region
    alloc.free(start, 10)
    reused = alloc.allocate(3, 5)
    assert reused == start
    # Remainder of the freed extent still available.
    again = alloc.allocate(4, 5)
    assert again == start + 5


def test_exhaustion_raises():
    alloc = Allocator(0, 10)
    alloc.allocate(1, 10)
    with pytest.raises(AllocationError):
        alloc.allocate(2, 1)


def test_free_blocks_accounting():
    alloc = Allocator(0, 100)
    alloc.allocate(1, 30)
    assert alloc.free_blocks == 70
    alloc.free(0, 30)
    assert alloc.free_blocks == 100
    assert alloc.allocated == 0


@given(st.lists(st.tuples(st.integers(1, 20), st.integers(1, 16)), min_size=1, max_size=50))
def test_allocations_never_overlap(requests):
    """Property: extents handed out are pairwise disjoint."""
    alloc = Allocator(0, 4096)
    taken = []
    for inode_id, nblocks in requests:
        try:
            start = alloc.allocate(inode_id, nblocks)
        except AllocationError:
            break
        for other_start, other_len in taken:
            assert start + nblocks <= other_start or other_start + other_len <= start
        taken.append((start, nblocks))
