"""Property tests on filesystem invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Environment, OS, SSD, KB, MB
from repro.schedulers import Noop
from repro.units import PAGE_SIZE


def build():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=128 * MB)
    return env, machine


operation = st.tuples(
    st.sampled_from(["write", "read", "fsync", "truncate"]),
    st.integers(min_value=0, max_value=255),   # page offset
    st.integers(min_value=1, max_value=64),    # pages
)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=30))
def test_block_map_never_double_assigns(ops):
    """No two file pages ever share a disk block."""
    env, machine = build()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        inode = handle.inode
        for kind, page, pages in ops:
            offset, nbytes = page * PAGE_SIZE, pages * PAGE_SIZE
            if kind == "write":
                yield from handle.pwrite(offset, nbytes)
            elif kind == "read":
                yield from handle.pread(offset, nbytes)
            elif kind == "fsync":
                yield from handle.fsync()
            elif kind == "truncate":
                yield from machine.truncate(task, inode, offset)
            blocks = list(inode.block_map.values())
            assert len(blocks) == len(set(blocks)), "duplicate disk block"
        return inode

    p = env.process(proc())
    env.run(until=p)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(operation, min_size=1, max_size=25))
def test_fsync_always_leaves_file_clean(ops):
    env, machine = build()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        for kind, page, pages in ops:
            offset, nbytes = page * PAGE_SIZE, pages * PAGE_SIZE
            if kind == "truncate":
                yield from machine.truncate(task, handle.inode, offset)
            elif kind == "read":
                yield from handle.pread(offset, nbytes)
            else:
                yield from handle.pwrite(offset, nbytes)
        yield from handle.fsync()
        return machine.cache.dirty_bytes_of(handle.inode.id)

    p = env.process(proc())
    env.run(until=p)
    assert p.value == 0


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=512 * KB), min_size=1, max_size=10)
)
def test_file_size_equals_sum_of_appends(sizes):
    env, machine = build()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        for nbytes in sizes:
            yield from handle.append(nbytes)
        return handle.inode.size

    p = env.process(proc())
    env.run(until=p)
    assert p.value == sum(sizes)
