"""Tests for the O_DIRECT read/write paths."""


from repro import Environment, OS, SSD, KB, MB
from repro.cache.page import PageKey
from repro.schedulers import Noop


def make_os():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_direct_write_is_synchronous_and_uncached():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        writes_before = machine.device.stats.writes
        n = yield from machine.write(task, handle.inode, 0, 64 * KB, direct=True)
        return n, machine.device.stats.writes - writes_before, handle.inode

    n, writes, inode = drive(env, proc())
    assert n == 64 * KB
    assert writes >= 1  # hit the device before returning
    assert machine.cache.dirty_bytes_of(inode.id) == 0
    assert not machine.cache.contains(PageKey(inode.id, 0))


def test_direct_write_allocates_immediately():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from machine.write(task, handle.inode, 0, 16 * KB, direct=True)
        return len(handle.inode.block_map)

    assert drive(env, proc()) == 4  # no delayed allocation without a cache


def test_direct_read_bypasses_cache():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from machine.write(task, handle.inode, 0, 64 * KB, direct=True)
        reads_before = machine.device.stats.reads
        n = yield from machine.read(task, handle.inode, 0, 64 * KB, direct=True)
        reads_mid = machine.device.stats.reads
        # Reading again goes to the device AGAIN: nothing was cached.
        yield from machine.read(task, handle.inode, 0, 64 * KB, direct=True)
        return n, reads_mid - reads_before, machine.device.stats.reads - reads_mid

    n, first, second = drive(env, proc())
    assert n == 64 * KB
    assert first >= 1
    assert second >= 1
    assert len(machine.cache) == 0


def test_direct_write_overwrites_existing_blocks():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from machine.write(task, handle.inode, 0, 16 * KB, direct=True)
        blocks_first = dict(handle.inode.block_map)
        yield from machine.write(task, handle.inode, 0, 16 * KB, direct=True)
        return blocks_first, dict(handle.inode.block_map)

    first, second = drive(env, proc())
    assert first == second  # same blocks reused, no re-allocation


def test_direct_read_of_unwritten_range_is_free():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        handle.inode.size = 1 * MB  # sparse file
        reads_before = machine.device.stats.reads
        n = yield from machine.read(task, handle.inode, 0, 64 * KB, direct=True)
        return n, machine.device.stats.reads - reads_before

    n, reads = drive(env, proc())
    assert n == 64 * KB
    assert reads == 0
