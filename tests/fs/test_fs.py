"""Integration tests for the filesystem: write/read/fsync/journal."""

import pytest

from repro import Environment, OS, HDD, SSD, KB, MB
from repro.cache.page import PageKey
from repro.fs.xfs import XFS
from repro.schedulers.noop import Noop
from repro.units import PAGE_SIZE


def make_os(**kwargs):
    env = Environment()
    kwargs.setdefault("device", SSD())
    kwargs.setdefault("scheduler", Noop())
    return env, OS(env, **kwargs)


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_create_and_lookup():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.creat(task, "/a")
        return machine.fs.lookup("/a")

    inode = drive(env, proc())
    assert inode is not None
    assert inode.path == "/a"


def test_create_duplicate_rejected():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.creat(task, "/a")
        with pytest.raises(FileExistsError):
            yield from machine.creat(task, "/a")

    drive(env, proc())


def test_create_in_missing_directory_rejected():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        with pytest.raises(FileNotFoundError):
            yield from machine.creat(task, "/no/such/file")
        yield env.timeout(0)

    drive(env, proc())


def test_write_extends_size_and_dirties_pages():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(10 * KB)
        return handle.inode

    inode = drive(env, proc())
    assert inode.size == 10 * KB
    assert machine.cache.dirty_bytes_of(inode.id) == 3 * PAGE_SIZE


def test_write_is_buffered_not_synchronous():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        before = machine.device.stats.writes
        yield from handle.append(1 * MB)
        return machine.device.stats.writes - before

    writes_during = drive(env, proc())
    assert writes_during == 0  # nothing reached the disk yet


def test_read_back_from_cache():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        n = yield from handle.pread(0, 64 * KB)
        return n

    assert drive(env, proc()) == 64 * KB
    assert machine.cache.misses == 0


def test_read_beyond_eof_truncated():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(10 * KB)
        n = yield from handle.pread(8 * KB, 100 * KB)
        return n

    assert drive(env, proc()) == 2 * KB


def test_fsync_persists_and_allocates():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()
        return handle.inode

    inode = drive(env, proc())
    assert machine.cache.dirty_bytes_of(inode.id) == 0
    assert len(inode.block_map) == 256  # all pages allocated
    assert machine.device.stats.writes > 0
    assert machine.fs.journal.commits >= 1


def test_delayed_allocation_until_flush():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        unallocated = len(handle.inode.block_map)
        yield from handle.fsync()
        return unallocated, len(handle.inode.block_map)

    before, after = drive(env, proc())
    assert before == 0  # locations unknown while buffered
    assert after == 16


def test_sequential_file_allocated_contiguously():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()
        return handle.inode

    inode = drive(env, proc())
    blocks = [inode.block_map[i] for i in range(256)]
    assert blocks == list(range(blocks[0], blocks[0] + 256))


def test_cold_read_goes_to_disk():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(256 * KB)
        yield from handle.fsync()
        machine.cache.free_file(handle.inode.id)
        before = machine.device.stats.reads
        n = yield from handle.pread(0, 256 * KB)
        return n, machine.device.stats.reads - before

    n, reads = drive(env, proc())
    assert n == 256 * KB
    assert reads >= 1


def test_sparse_read_returns_zero_fill_without_io():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.pwrite(1 * MB, 4 * KB)  # sparse tail write
        before = machine.device.stats.reads
        n = yield from handle.pread(0, 64 * KB)  # the hole
        return n, machine.device.stats.reads - before

    n, reads = drive(env, proc())
    assert n == 64 * KB
    assert reads == 0


def test_unlink_discards_dirty_buffers():
    env, machine = make_os()
    task = machine.spawn("t")
    freed = []
    machine.cache.buffer_free_hook = lambda page: freed.append(page.key)

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from machine.close(handle)  # no live handles: free is immediate
        yield from machine.unlink(task, "/f")

    drive(env, proc())
    assert len(freed) == 16
    assert machine.cache.dirty_bytes == 0
    assert machine.fs.lookup("/f") is None


def test_journal_entanglement_fsync_commits_other_files_data():
    """Ordered mode: committing A's metadata flushes B's ordered data."""
    env, machine = make_os()
    a, b = machine.spawn("a"), machine.spawn("b")

    def proc():
        fa = yield from machine.creat(a, "/a")
        fb = yield from machine.creat(b, "/b")
        # B buffers data whose delayed allocation will join the running
        # transaction once writeback begins; force that by starting an
        # fsync from B concurrently with A's.
        yield from fb.append(1 * MB)
        # B's writepages runs first (alloc joins txn), A commits after.
        pages = machine.cache.dirty_pages_of(fb.inode.id)
        machine.fs.writepages(b, fb.inode, pages)
        yield from fa.append(4 * KB)
        yield from fa.fsync()
        return machine.cache.dirty_bytes_of(fb.inode.id)

    b_dirty_after = drive(env, proc())
    # A's fsync committed the shared transaction; B's ordered data had
    # to reach the disk first even though A never touched /b.
    assert b_dirty_after == 0


def test_mtime_updates_join_running_transaction():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)
        txn = machine.fs.journal.running
        return handle.inode.metadata_block in txn.metadata_blocks

    assert drive(env, proc())


def test_xfs_partial_integration_mislabels_journal_writes():
    """Figure 17's cause: XFS journal I/O is tagged with the journal
    task, not the application that caused it."""
    env_e, ext4_machine = make_os()
    env_x, xfs_machine = make_os(fs_class=XFS)

    results = {}
    for name, env, machine in (("ext4", env_e, ext4_machine), ("xfs", env_x, xfs_machine)):
        task = machine.spawn("app")
        journal_causes = []
        machine.block_queue.completion_listeners.append(
            lambda req, acc=journal_causes: acc.append((req.metadata, req.causes))
        )

        def proc(machine=machine, task=task):
            handle = yield from machine.creat(task, "/f")
            yield from handle.append(4 * KB)
            yield from handle.fsync()
            return task

        task_out = drive(env, proc())
        meta = [causes for is_meta, causes in journal_causes if is_meta]
        assert meta, f"{name}: no journal writes observed"
        results[name] = (task_out, meta)

    ext4_task, ext4_meta = results["ext4"]
    xfs_task, xfs_meta = results["xfs"]
    assert any(ext4_task.pid in causes for causes in ext4_meta)
    assert not any(xfs_task.pid in causes for causes in xfs_meta)


def test_fsync_on_hdd_slower_than_ssd():
    def measure(device):
        env = Environment()
        machine = OS(env, device=device, scheduler=Noop())
        task = machine.spawn("t")

        def proc():
            handle = yield from machine.creat(task, "/f")
            yield from handle.append(4 * KB)
            start = env.now
            yield from handle.fsync()
            return env.now - start

        return drive(env, proc())

    assert measure(HDD()) > measure(SSD())


def test_readahead_prefetches_on_sequential_reads():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(2 * MB)
        yield from handle.fsync()
        machine.cache.free_file(handle.inode.id)
        # Two sequential 4 KB reads: the second triggers readahead.
        yield from handle.pread(0, 4 * KB)
        yield from handle.pread(4 * KB, 4 * KB)
        requests_before = machine.device.stats.reads
        # The next reads inside the readahead window are cache hits.
        yield from handle.pread(8 * KB, 4 * KB)
        yield from handle.pread(12 * KB, 4 * KB)
        return machine.device.stats.reads - requests_before

    assert drive(env, proc()) == 0


def test_readahead_not_triggered_by_random_reads():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(2 * MB)
        yield from handle.fsync()
        machine.cache.free_file(handle.inode.id)
        yield from handle.pread(1 * MB, 4 * KB)   # jump
        yield from handle.pread(0, 4 * KB)        # jump
        from repro.cache.page import PageKey
        # No prefetch beyond the touched pages.
        return machine.cache.contains(PageKey(handle.inode.id, 1))

    assert drive(env, proc()) is False


def test_readahead_can_be_disabled():
    env, machine = make_os()
    machine.fs.readahead_pages = 0
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()
        machine.cache.free_file(handle.inode.id)
        yield from handle.pread(0, 4 * KB)
        yield from handle.pread(4 * KB, 4 * KB)
        from repro.cache.page import PageKey
        return machine.cache.contains(PageKey(handle.inode.id, 5))

    assert drive(env, proc()) is False


def test_truncate_shrinks_and_frees_blocks():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()
        free_before = machine.fs.allocator.free_blocks
        yield from machine.truncate(task, handle.inode, 256 * KB)
        return handle.inode, machine.fs.allocator.free_blocks - free_before

    inode, blocks_freed = drive(env, proc())
    assert inode.size == 256 * KB
    assert blocks_freed == (1 * MB - 256 * KB) // PAGE_SIZE
    assert len(inode.block_map) == 64


def test_truncate_discards_dirty_tail_with_hook():
    env, machine = make_os()
    task = machine.spawn("t")
    freed = []
    machine.cache.buffer_free_hook = lambda page: freed.append(page.key.index)

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)  # dirty, never flushed
        yield from machine.truncate(task, handle.inode, 0)
        return machine.cache.dirty_bytes_of(handle.inode.id)

    assert drive(env, proc()) == 0
    assert sorted(freed) == list(range(16))


def test_truncate_rejects_negative():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        with pytest.raises(ValueError):
            yield from machine.truncate(task, handle.inode, -1)

    drive(env, proc())


def test_truncate_sparse_extend():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from machine.truncate(task, handle.inode, 1 * MB)
        n = yield from handle.pread(0, 64 * KB)  # zero-fill, no I/O
        return handle.inode.size, n

    size, n = drive(env, proc())
    assert size == 1 * MB
    assert n == 64 * KB
