"""Tests for the journal: transactions, ordered mode, proxy tagging."""


from repro import Environment, OS, SSD, KB, MB
from repro.fs.journal import Transaction
from repro.schedulers.noop import Noop


def make_os(**kwargs):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=512 * MB, **kwargs)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_metadata_joins_running_transaction():
    env, machine = make_os()
    task = machine.spawn("t")
    journal = machine.fs.journal
    txn = journal.add_metadata(task, 42)
    assert txn is journal.running
    assert 42 in txn.metadata_blocks
    assert task.pid in txn.joiners


def test_joiners_accumulate_across_tasks():
    env, machine = make_os()
    a, b = machine.spawn("a"), machine.spawn("b")
    journal = machine.fs.journal
    journal.add_metadata(a, 1)
    journal.add_metadata(b, 2)
    assert a.pid in journal.running.joiners
    assert b.pid in journal.running.joiners


def test_commit_rotates_running_transaction():
    env, machine = make_os()
    task = machine.spawn("t")
    journal = machine.fs.journal
    old = journal.add_metadata(task, 7)

    def proc():
        yield from journal.commit_running()

    drive(env, proc())
    assert old.state == Transaction.COMMITTED
    assert journal.running is not old
    assert journal.commits == 1


def test_commit_of_empty_transaction_is_noop():
    env, machine = make_os()
    journal = machine.fs.journal

    def proc():
        yield from journal.commit_running()
        return journal.commits

    assert drive(env, proc()) == 0


def test_ensure_committed_waits_for_in_flight_commit():
    env, machine = make_os()
    task = machine.spawn("t")
    journal = machine.fs.journal
    txn = journal.add_metadata(task, 9)

    def committer():
        yield from journal.commit_running()

    def waiter():
        yield env.timeout(0)  # let the committer start first
        yield from journal.ensure_committed(txn)
        return txn.state

    env.process(committer())
    p = env.process(waiter())
    env.run(until=p)
    assert p.value == Transaction.COMMITTED


def test_periodic_commit_timer():
    env, machine = make_os(fs_kwargs={"commit_interval": 1.0})
    task = machine.spawn("t")
    machine.fs.journal.add_metadata(task, 3)
    env.run(until=3.0)
    assert machine.fs.journal.commits >= 1


def test_commit_writes_go_to_journal_area():
    env, machine = make_os()
    task = machine.spawn("t")
    journal = machine.fs.journal
    journal_writes = []
    machine.block_queue.completion_listeners.append(
        lambda req: journal_writes.append(req.block) if req.metadata else None
    )
    journal.add_metadata(task, 5)

    def proc():
        yield from journal.commit_running()

    drive(env, proc())
    assert journal_writes
    for block in journal_writes:
        assert journal.area_start <= block < journal.area_start + journal.area_blocks


def test_journal_head_wraps():
    env, machine = make_os(fs_kwargs={"journal_blocks": 16})
    journal = machine.fs.journal
    first = journal._advance_journal_head(10)
    second = journal._advance_journal_head(10)  # must wrap
    assert first == journal.area_start
    assert second == journal.area_start


def test_transaction_of_finds_membership():
    env, machine = make_os()
    task = machine.spawn("t")
    journal = machine.fs.journal
    journal.add_metadata(task, 11, ordered_inode=77)
    assert journal.transaction_of(77, None) is journal.running
    assert journal.transaction_of(0, 11) is journal.running
    assert journal.transaction_of(0, 999) is None


def test_full_integration_tags_joiners_on_journal_writes():
    env, machine = make_os()
    task = machine.spawn("app")
    journal = machine.fs.journal
    txn = journal.add_metadata(task, 13)
    causes = journal.journal_write_causes(txn)
    assert task.pid in causes


def test_one_commit_at_a_time_serializes():
    env, machine = make_os()
    a, b = machine.spawn("a"), machine.spawn("b")
    journal = machine.fs.journal
    txn1 = journal.add_metadata(a, 1)
    finish_order = []

    def commit1():
        yield from journal.ensure_committed(txn1)
        finish_order.append("txn1")

    def commit2():
        yield env.timeout(0)  # arrive while txn1 commits
        txn2 = journal.add_metadata(b, 2)
        yield from journal.ensure_committed(txn2)
        finish_order.append("txn2")

    env.process(commit1())
    p = env.process(commit2())
    env.run(until=p)
    assert finish_order == ["txn1", "txn2"]


def test_checkpointer_writes_metadata_in_place():
    """Committed metadata is eventually checkpointed outside the journal."""
    env, machine = make_os(
        fs_kwargs={"commit_interval": 0.5, "checkpoint_delay": 1.0}
    )
    task = machine.spawn("t")
    in_place = []
    journal = machine.fs.journal
    machine.block_queue.completion_listeners.append(
        lambda req: in_place.append(req.block)
        if req.metadata and req.block < journal.area_start
        else None
    )
    journal.add_metadata(task, 3)

    def proc():
        yield from journal.commit_running()
        yield env.timeout(5.0)

    drive(env, proc())
    assert 3 in in_place  # the metadata block was written at its home


def test_writeback_proxy_not_set_for_partial_integration():
    """XFS (partial): delayed allocation during writeback is attributed
    to the writeback task, not the apps — the fig 17 leak."""
    from repro.fs.xfs import XFS

    env, machine = make_os(fs_class=XFS)
    app = machine.spawn("app")

    def proc():
        handle = yield from machine.creat(app, "/f")
        yield from handle.append(64 * KB)
        pages = machine.cache.dirty_pages_of(handle.inode.id)
        machine.fs.writepages(machine.writeback.task, handle.inode, pages)
        txn = machine.fs.journal.running
        # The allocation joined the txn under the *pdflush* identity.
        return machine.writeback.task.pid in txn.joiners, app.pid in txn.joiners

    proxy_blamed, app_blamed = drive(env, proc())
    assert proxy_blamed
    # app joined earlier via its own mtime update, so it may appear too;
    # the essential defect is that the proxy shows up at all.


def test_ext4_writeback_proxy_attributes_to_apps():
    env, machine = make_os()
    app = machine.spawn("app")

    def proc():
        handle = yield from machine.creat(app, "/f")
        yield from handle.append(64 * KB)
        pages = machine.cache.dirty_pages_of(handle.inode.id)
        machine.fs.writepages(machine.writeback.task, handle.inode, pages)
        txn = machine.fs.journal.running
        return machine.writeback.task.pid in txn.joiners

    assert drive(env, proc()) is False  # full integration: proxy tagged


def test_logical_journal_commits_are_compact():
    """XFS logical logging: many metadata records pack per log block."""
    from repro.fs.journal import LogicalJournal, Transaction as Txn

    env, machine = make_os()
    journal = machine.fs.journal  # physical (jbd2)
    txn = Txn(env)
    for block in range(40):
        txn.metadata_blocks.add(block)
    physical = journal.commit_size(txn)

    from repro.fs.xfs import XFS

    env2, machine2 = make_os(fs_class=XFS)
    logical = machine2.fs.journal.commit_size(txn)
    assert isinstance(machine2.fs.journal, LogicalJournal)
    assert physical == 42          # descriptor + 40 buffers + commit
    assert logical == 4            # ceil(40/16) records + commit
    assert logical < physical / 5


def test_logical_journal_minimum_one_record_block():
    from repro.fs.journal import LogicalJournal, Transaction as Txn
    from repro.fs.xfs import XFS

    env, machine = make_os(fs_class=XFS)
    txn = Txn(env)
    txn.metadata_blocks.add(1)
    assert machine.fs.journal.commit_size(txn) == 2
