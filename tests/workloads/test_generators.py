"""Tests for the workload generators."""

import pytest

from repro import Environment, OS, SSD, KB, MB, PAGE_SIZE
from repro.metrics import LatencyRecorder, ThroughputTracker
from repro.schedulers import Noop
from repro.workloads import (
    fsync_appender,
    prefill_file,
    random_write_burst,
    random_writer_fsync,
    run_pattern_reader,
    sequential_overwriter,
    sequential_reader,
    sequential_writer,
    spin_loop,
)


def make_os(**kwargs):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(),
                 memory_bytes=kwargs.pop("memory_bytes", 256 * MB), **kwargs)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_prefill_creates_flushed_cold_file():
    env, machine = make_os()
    task = machine.spawn("t")
    handle = drive(env, prefill_file(machine, task, "/f", 8 * MB))
    assert handle.inode.size == 8 * MB
    assert machine.cache.dirty_bytes_of(handle.inode.id) == 0
    assert not machine.cache.contains(  # dropped: readers start cold
        __import__("repro.cache.page", fromlist=["PageKey"]).PageKey(handle.inode.id, 0)
    )


def test_prefill_keep_cached():
    env, machine = make_os()
    task = machine.spawn("t")
    handle = drive(env, prefill_file(machine, task, "/f", 1 * MB, drop=False))
    from repro.cache.page import PageKey

    assert machine.cache.contains(PageKey(handle.inode.id, 0))


def test_sequential_reader_counts_bytes():
    env, machine = make_os()
    task = machine.spawn("t")
    drive(env, prefill_file(machine, task, "/f", 4 * MB, drop=False))
    tracker = ThroughputTracker()
    total = drive(env, sequential_reader(machine, task, "/f", 0.5, chunk=256 * KB, tracker=tracker))
    assert total == tracker.bytes_total > 0


def test_sequential_reader_cold_mode_hits_disk():
    env, machine = make_os()
    task = machine.spawn("t")
    drive(env, prefill_file(machine, task, "/f", 2 * MB))
    reads_before = machine.device.stats.reads
    drive(env, sequential_reader(machine, task, "/f", 0.2, chunk=256 * KB, cold=True))
    assert machine.device.stats.reads > reads_before


def test_sequential_writer_grows_file():
    env, machine = make_os()
    task = machine.spawn("t")
    total = drive(env, sequential_writer(machine, task, "/w", 0.1, chunk=64 * KB))
    assert total > 0
    assert machine.fs.lookup("/w").size == total


def test_overwriter_stays_within_region():
    env, machine = make_os()
    task = machine.spawn("t")
    drive(env, sequential_overwriter(machine, task, "/o", 0.1, region=1 * MB, chunk=64 * KB))
    assert machine.fs.lookup("/o").size == 1 * MB  # never grows past region


def test_fsync_appender_records_latencies():
    env, machine = make_os()
    task = machine.spawn("t")
    recorder = LatencyRecorder()
    count = drive(env, fsync_appender(machine, task, "/log", 0.5, recorder=recorder))
    assert count == recorder.count > 0


def test_random_write_burst_dirties_exact_total():
    env, machine = make_os()
    task = machine.spawn("t")
    written = drive(env, random_write_burst(machine, task, "/v", 1 * MB, file_size=8 * MB))
    assert written == 1 * MB


def test_random_writer_fsync_durable_each_iteration():
    env, machine = make_os()
    task = machine.spawn("t")
    tracker = ThroughputTracker()
    drive(env, random_writer_fsync(machine, task, "/rw", 0.3, file_size=4 * MB, tracker=tracker))
    assert tracker.bytes_total > 0
    assert machine.fs.fsyncs > 1


def test_run_pattern_reader_respects_duration():
    env, machine = make_os()
    task = machine.spawn("t")
    drive(env, prefill_file(machine, task, "/f", 8 * MB))
    start = env.now
    drive(env, run_pattern_reader(machine, task, "/f", 256 * KB, 0.5))
    assert env.now - start == pytest.approx(0.5, abs=0.1)


def test_spin_loop_consumes_cpu_only():
    env, machine = make_os()
    task = machine.spawn("t")
    io_before = machine.device.stats.total_requests
    drive(env, spin_loop(machine, task, 0.25))
    assert machine.cpu.busy_time >= 0.2
    assert machine.device.stats.total_requests == io_before


def test_prefill_region_extends_and_flushes():
    from repro.workloads.generators import prefill_region

    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from prefill_region(machine, handle, 1 * MB)
        return handle.inode.size, machine.cache.dirty_bytes_of(handle.inode.id)

    size, dirty = drive(env, proc())
    assert size == 1 * MB
    assert dirty == 0


def test_run_pattern_writer_stays_in_file():
    from repro.workloads import run_pattern_writer

    env, machine = make_os()
    task = machine.spawn("t")
    drive(env, prefill_file(machine, task, "/f", 4 * MB))
    size_before = machine.fs.lookup("/f").size
    drive(env, run_pattern_writer(machine, task, "/f", 256 * KB, 0.3))
    # Overwrites of an existing file never grow it beyond one run.
    assert machine.fs.lookup("/f").size <= size_before + 256 * KB + PAGE_SIZE


def test_fsync_appender_think_time_paces():
    env, machine = make_os()
    task = machine.spawn("t")
    fast = drive(env, fsync_appender(machine, task, "/a", 0.5, recorder=None, think=0.0))
    env2, machine2 = make_os()
    task2 = machine2.spawn("t")
    slow = drive(env2, fsync_appender(machine2, task2, "/a", 0.5, recorder=None, think=0.05))
    assert slow < fast
