"""Tests for unit helpers."""

import pytest

from repro.units import GB, KB, MB, PAGE_SIZE, align_down, align_up, pages_for


def test_constants_are_consistent():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert PAGE_SIZE == 4 * KB


def test_pages_for_exact():
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(10 * PAGE_SIZE) == 10


def test_pages_for_rounds_up():
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE + 1) == 2


def test_pages_for_zero():
    assert pages_for(0) == 0


def test_pages_for_negative_rejected():
    with pytest.raises(ValueError):
        pages_for(-1)


def test_align_down_up():
    assert align_down(PAGE_SIZE + 5) == PAGE_SIZE
    assert align_up(PAGE_SIZE + 5) == 2 * PAGE_SIZE
    assert align_down(0) == 0
    assert align_up(0) == 0
