"""Tests for the metadata system calls: mkdir, unlink, nested paths."""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.schedulers import Noop


def make_os():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=128 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_mkdir_then_create_inside():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/data")
        handle = yield from machine.creat(task, "/data/file")
        return handle.inode.path

    assert drive(env, proc()) == "/data/file"


def test_mkdir_marks_directory():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        inode = yield from machine.mkdir(task, "/d")
        return inode.is_dir

    assert drive(env, proc()) is True


def test_unlink_missing_raises():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        with pytest.raises(FileNotFoundError):
            yield from machine.unlink(task, "/nope")
        yield env.timeout(0)

    drive(env, proc())


def test_unlink_frees_disk_blocks_for_reuse():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(256 * KB)
        yield from handle.fsync()
        yield from machine.close(handle)  # last handle gone: unlink frees now
        free_before = machine.fs.allocator.free_blocks
        yield from machine.unlink(task, "/f")
        return machine.fs.allocator.free_blocks - free_before

    assert drive(env, proc()) == 64


def test_metadata_calls_join_journal():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/d")
        return machine.fs.journal.running.empty

    assert drive(env, proc()) is False


def test_metadata_calls_pass_through_scheduler_hooks():
    from repro.core.hooks import SchedulerHooks

    seen = []

    class Spy(SchedulerHooks):
        def syscall_entry(self, task, call, info):
            seen.append(call)
            return None

    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Spy(), memory_bytes=64 * MB)
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/d")
        handle = yield from machine.creat(task, "/d/f")
        yield from handle.append(4 * KB)
        yield from machine.truncate(task, handle.inode, 0)
        yield from machine.unlink(task, "/d/f")

    drive(env, proc())
    for call in ("mkdir", "creat", "write", "truncate", "unlink"):
        assert call in seen
