"""Tests for the CPU model."""

import pytest

from repro.proc import Task
from repro.sim import Environment
from repro.syscall.cpu import COPY_BANDWIDTH, CPU, SYSCALL_OVERHEAD
from repro.units import MB


def test_cores_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        CPU(env, cores=0)


def test_syscall_cost_scales_with_bytes():
    env = Environment()
    cpu = CPU(env)
    small = cpu.syscall_cost(0)
    big = cpu.syscall_cost(1 * MB)
    assert small == SYSCALL_OVERHEAD
    assert big == pytest.approx(SYSCALL_OVERHEAD + 1 * MB / COPY_BANDWIDTH)


def test_consume_zero_is_free():
    env = Environment()
    cpu = CPU(env, cores=1)
    task = Task("t")

    def proc():
        yield from cpu.consume(task, 0.0)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0.0
    assert cpu.busy_time == 0.0


def test_parallelism_up_to_core_count():
    env = Environment()
    cpu = CPU(env, cores=4)
    finish = []

    def burn(task):
        yield from cpu.consume(task, 1.0)
        finish.append(env.now)

    for i in range(8):
        env.process(burn(Task(f"t{i}")))
    env.run()
    # 8 jobs of 1 s on 4 cores: two waves.
    assert finish == [1.0] * 4 + [2.0] * 4
    assert cpu.busy_time == pytest.approx(8.0)
