"""Tests for the OS facade: stack assembly, syscalls, hook dispatch."""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.core.hooks import SchedulerHooks
from repro.schedulers import CFQ, SplitNoop
from repro.syscall.cpu import CPU


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_stack_assembly_defaults():
    env = Environment()
    machine = OS(env)
    assert machine.device is not None
    assert machine.fs.name == "ext4"
    assert machine.writeback.enabled


def test_block_scheduler_installs_as_elevator_without_hooks():
    env = Environment()
    cfq = CFQ()
    machine = OS(env, scheduler=cfq)
    assert machine.elevator is cfq
    assert machine.scheduler is None  # no syscall/memory hooks
    assert machine.cache.buffer_dirty_hook is None


def test_split_scheduler_wires_all_layers():
    env = Environment()
    split = SplitNoop()
    machine = OS(env, scheduler=split)
    assert machine.elevator is split
    assert machine.scheduler is split
    assert machine.cache.buffer_dirty_hook is not None
    assert split.os is machine


def test_unsupported_scheduler_rejected():
    env = Environment()
    with pytest.raises(ValueError, match="valid choices"):
        OS(env, scheduler="fifo")
    with pytest.raises(TypeError):
        OS(env, scheduler=object())


def test_double_install_rejected():
    env = Environment()
    machine = OS(env, scheduler=SplitNoop())
    with pytest.raises(RuntimeError):
        machine.framework.install(SplitNoop())


def test_open_missing_file_raises():
    env = Environment()
    machine = OS(env, device=SSD())
    task = machine.spawn("t")

    def proc():
        with pytest.raises(FileNotFoundError):
            yield from machine.open(task, "/nope")
        yield env.timeout(0)

    drive(env, proc())


def test_open_create_flag():
    env = Environment()
    machine = OS(env, device=SSD())
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.open(task, "/new", create=True)
        return handle.inode.path

    assert drive(env, proc()) == "/new"


def test_file_handle_cursor_semantics():
    env = Environment()
    machine = OS(env, device=SSD())
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(10 * KB)
        assert handle.pos == 10 * KB
        handle.seek(0)
        n = yield from handle.read(4 * KB)
        assert handle.pos == 4 * KB
        return n

    assert drive(env, proc()) == 4 * KB


def test_syscalls_cost_cpu_time():
    env = Environment()
    machine = OS(env, device=SSD(), cores=1)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        return machine.cpu.busy_time

    assert drive(env, proc()) > 0


def test_cpu_cores_limit_concurrency():
    env = Environment()
    cpu = CPU(env, cores=1)
    from repro.proc import Task

    t1, t2 = Task("a"), Task("b")
    finish = []

    def burn(task):
        yield from cpu.consume(task, 1.0)
        finish.append(env.now)

    env.process(burn(t1))
    env.process(burn(t2))
    env.run()
    assert finish == [1.0, 2.0]  # serialized on the single core


def test_hook_entry_can_delay_syscall():
    class Delayer(SchedulerHooks):
        def syscall_entry(self, task, call, info):
            if call == "write":
                return self._delay()

        def _delay(self):
            yield self.os.env.timeout(5.0)

    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Delayer())
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        start = env.now
        yield from handle.append(4 * KB)
        return env.now - start

    assert drive(env, proc()) >= 5.0


def test_hook_return_invoked_with_result():
    seen = []

    class Observer(SchedulerHooks):
        def syscall_return(self, task, call, info):
            seen.append((call, info.get("result")))

    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Observer())
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)
        yield from handle.pread(0, 4 * KB)

    drive(env, proc())
    calls = [call for call, _ in seen]
    assert "creat" in calls
    assert ("write", 4 * KB) in seen
    assert ("read", 4 * KB) in seen
