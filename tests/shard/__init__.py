"""Tests for the shard-aware simulation core (repro.sim.shard)."""
