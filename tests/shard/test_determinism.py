"""Serial-vs-sharded equivalence: the determinism guarantee.

The same ClusterConfig + streams must produce identical tenant
metrics no matter how the fleet is partitioned (1 shard vs K) or which
vehicle executes the shards (inline stepping vs worker processes).
"""

import json

import pytest

from repro.config import ClusterConfig, TenantContract
from repro.sim.shard import ShardedRun, StreamSpec, partition_nodes, run_cluster
from repro.units import MB


def _cluster():
    return ClusterConfig(
        nodes=5,
        replication=2,
        block_size=4 * MB,
        chunk=1 * MB,
        tenants=(
            TenantContract("throttled", rate_per_node=8 * MB),
            TenantContract("free"),
        ),
        seed=11,
    )


def _streams():
    return [
        StreamSpec(0, "throttled", 0, 64 * MB),
        StreamSpec(1, "free", 1, 64 * MB),
        StreamSpec(2, "throttled", 2, 64 * MB),
        StreamSpec(3, "free", 3, 64 * MB),
        StreamSpec(4, "free", 4, 64 * MB),
    ]


def _comparable(result):
    """The layout-independent portion of a run result, JSON-normalized."""
    return json.dumps(
        {key: value for key, value in result.items() if key != "meta"},
        sort_keys=True,
    )


def test_one_vs_many_shards_identical_inline():
    results = [
        run_cluster(_cluster(), _streams(), duration=0.1, shards=shards, processes=False)
        for shards in (1, 2, 5)
    ]
    assert results[0]["tenants"]["free"]["bytes"] > 0
    reference = _comparable(results[0])
    for result in results[1:]:
        assert _comparable(result) == reference


def test_worker_processes_match_inline():
    inline = run_cluster(_cluster(), _streams(), duration=0.1, shards=3, processes=False)
    procs = run_cluster(_cluster(), _streams(), duration=0.1, shards=3, processes=True)
    assert procs["meta"]["processes"] is True
    assert _comparable(procs) == _comparable(inline)


def test_drain_mode_is_also_layout_independent():
    one = run_cluster(_cluster(), _streams(), duration=0.05, shards=1, drain=True)
    many = run_cluster(_cluster(), _streams(), duration=0.05, shards=4,
                       processes=False, drain=True)
    assert _comparable(one) == _comparable(many)
    conservation = one["conservation"]
    assert conservation["submitted"] == conservation["completed"] + conservation["failed"]
    assert conservation["inflight"] == 0


def test_single_node_shards_match_at_fleet_scale_config():
    """Regression: the fig24 fleet config diverged at 1 node per shard.

    With every node in its own shard, a replica's handler processes are
    spawned into an otherwise-quiet Environment whose front slot is
    free, which (before the cohort front-slot fix in sim.core) let a
    process start slip behind same-instant deliveries and shift ack
    ordering by one syscall.  Longer horizon and heavier fan-in than
    the small cases above — this config is what actually caught it.
    """
    cluster = ClusterConfig(
        nodes=4,
        replication=3,
        block_size=16 * MB,
        tenants=tuple(
            TenantContract(f"t{i:02d}", rate_per_node=2 * MB) for i in range(4)
        ),
        seed=0,
    )
    specs = [
        StreamSpec(t * 4 + j, f"t{t:02d}", (t + j * 4) % 4, 16 * MB)
        for t in range(4)
        for j in range(4)
    ]
    one = run_cluster(cluster, specs, duration=0.5, shards=1)
    four = run_cluster(cluster, specs, duration=0.5, shards=4, processes=False)
    assert _comparable(one) == _comparable(four)


def test_partition_nodes_contiguous_and_balanced():
    parts = partition_nodes(10, 3)
    assert [len(p) for p in parts] == [4, 3, 3]
    assert [n for part in parts for n in part] == list(range(10))
    # More shards than nodes clamps to one node per shard.
    assert partition_nodes(2, 8) == [[0], [1]]


def test_sharded_run_validates_inputs():
    with pytest.raises(ValueError):
        ShardedRun(_cluster(), [StreamSpec(0, "nope", 0, MB)], duration=0.1)
    with pytest.raises(ValueError):
        ShardedRun(_cluster(), [StreamSpec(0, "free", 99, MB)], duration=0.1)
    with pytest.raises(ValueError):
        ShardedRun(_cluster(), _streams(), duration=0.0)


def test_session_default_shards_apply():
    from repro.experiments import common

    common.set_default_shards(2)
    try:
        run = ShardedRun(_cluster(), _streams(), duration=0.1)
        assert run.shards == 2
    finally:
        common.set_default_shards(1)
